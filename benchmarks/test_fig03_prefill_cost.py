"""Figure 3 — prefill cost overtakes generation as history grows."""

from repro.experiments.fig03 import format_fig03, run_fig03

from benchmarks.conftest import run_once


def test_fig03_prefill_vs_generation(benchmark):
    rows = run_once(benchmark, run_fig03)
    print("\n" + format_fig03(rows))

    # Claim 1: stateless prefill grows (roughly linearly) with history.
    stateless = [r["prefill_with_history_s"] for r in rows]
    assert stateless == sorted(stateless)
    assert stateless[-1] > 5 * stateless[0]

    # Claim 2: with no history, 200 generation steps dominate prefill...
    assert rows[0]["prefill_with_history_s"] < rows[0]["generation_s"]

    # Claim 3: ...but with a long history, recomputation makes prefill the
    # dominant phase (the Figure 3 crossover).
    assert rows[-1]["prefill_with_history_s"] > rows[-1]["generation_s"]

    # Claim 4: a stateful engine's prompt-only prefill stays cheap at every
    # history size (the motivation for Pensieve).
    for row in rows:
        assert row["prefill_prompt_only_s"] < row["generation_s"]
        assert row["prefill_prompt_only_s"] <= row["prefill_with_history_s"]
