"""Figure 15 — impact of average user think time.

The paper (§6.7): longer think times cause cached KV-tokens to age out
before the user returns, so Pensieve's throughput falls and its advantage
over vLLM narrows — but never disappears.

At benchmark scale the simulated window is 400 s, so the think-time sweep
uses 30/120/400 s (the full-scale EXPERIMENTS.md run uses the paper's
60-600 s); the CPU tier is shrunk so cache pressure appears in-window.
"""

from repro.experiments.common import throughput_at_latency
from repro.experiments.fig15 import format_fig15, run_fig15

from benchmarks.conftest import run_once

CPU_TOKENS = 60_000  # ~12 GB of Llama-2-13B KV-tokens
THINKS = (30.0, 120.0, 400.0)
TARGET = 0.120


def test_fig15_think_time(benchmark):
    curves = run_once(
        benchmark,
        run_fig15,
        rates=(8.0, 14.0, 20.0),
        think_times=THINKS,
        duration=400.0,
        cpu_cache_tokens=CPU_TOKENS,
    )
    print("\n" + format_fig15(curves))

    pensieve = {
        think: throughput_at_latency(curves[f"Pensieve think={think:g}s"], TARGET)
        for think in THINKS
    }
    vllm_lo = throughput_at_latency(curves[f"vLLM think={THINKS[0]:g}s"], TARGET)
    vllm_hi = throughput_at_latency(curves[f"vLLM think={THINKS[-1]:g}s"], TARGET)
    print(f"\nPensieve thr@{TARGET * 1e3:.0f}ms by think time: {pensieve}")
    print(f"vLLM thr@{TARGET * 1e3:.0f}ms: think {THINKS[0]:g}s -> {vllm_lo:.2f}, "
          f"think {THINKS[-1]:g}s -> {vllm_hi:.2f}")

    # Claim 1: Pensieve's throughput decreases as think time increases.
    thr = [pensieve[t] for t in THINKS]
    assert thr == sorted(thr, reverse=True)

    # Claim 2: even at the longest think time, Pensieve is not worse than
    # vLLM at the same think time...
    assert pensieve[THINKS[-1]] >= 0.97 * vllm_hi
    # ...and its per-rate latency stays at-or-below vLLM's.
    p_pts = {p.request_rate: p for p in curves[f"Pensieve think={THINKS[-1]:g}s"]}
    v_pts = {p.request_rate: p for p in curves[f"vLLM think={THINKS[-1]:g}s"]}
    assert all(
        p_pts[r].mean_norm_latency <= v_pts[r].mean_norm_latency for r in p_pts
    )

    # Claim 3: the Pensieve/vLLM gap narrows as think time grows.
    gap_short = pensieve[THINKS[0]] / vllm_lo
    gap_long = pensieve[THINKS[-1]] / vllm_hi
    print(f"gap at think {THINKS[0]:g}s: {gap_short:.2f}x, "
          f"at {THINKS[-1]:g}s: {gap_long:.2f}x")
    assert gap_short > gap_long
