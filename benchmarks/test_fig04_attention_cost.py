"""Figure 4 — attention cost of a 32-token chunk grows linearly with
context size (the basis of evict-from-the-front)."""

import pytest

from repro.experiments.fig04 import format_fig04, run_fig04

from benchmarks.conftest import run_once


def test_fig04_attention_linear_in_context(benchmark):
    rows = run_once(benchmark, run_fig04)
    print("\n" + format_fig04(rows))

    normalized = {r["context_tokens"]: r["normalized"] for r in rows}

    # Claim 1: cost grows linearly with context (constant marginal cost).
    g1 = normalized[4096] - normalized[2048]
    g2 = normalized[8192] - normalized[4096]
    assert g2 == pytest.approx(2 * g1, rel=0.2)

    # Claim 2: attention is negligible at small contexts but crosses the
    # non-attention cost within the supported context range.
    assert normalized[32] < 0.1
    assert normalized[16384] > 1.0

    # Claim 3: leading tokens are cheaper to recompute than trailing ones
    # — a chunk attending 1K context costs a fraction of one at 16K.
    assert normalized[1024] < 0.25 * normalized[16384]
