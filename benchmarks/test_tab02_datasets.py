"""Table 2 — generated corpus statistics vs the paper's datasets."""

import pytest

from repro.experiments.tab02 import format_tab02, run_tab02

from benchmarks.conftest import run_once


def test_tab02_dataset_statistics(benchmark):
    rows = run_once(benchmark, run_tab02, num_conversations=5000, seed=0)
    print("\n" + format_tab02(rows))

    by_name = {r["dataset"]: r for r in rows}

    for name in ("ShareGPT", "UltraChat"):
        row = by_name[name]
        assert row["mean_turns"] == pytest.approx(row["paper_mean_turns"], rel=0.08)
        assert row["mean_input_len"] == pytest.approx(
            row["paper_mean_input_len"], rel=0.08
        )
        assert row["mean_output_len"] == pytest.approx(
            row["paper_mean_output_len"], rel=0.08
        )
        assert row["max_context"] <= 16384

    # The structural contrast the paper leans on (§6.2): ShareGPT has more
    # turns (better for caching), UltraChat longer requests.
    assert by_name["ShareGPT"]["mean_turns"] > by_name["UltraChat"]["mean_turns"]
    assert (
        by_name["UltraChat"]["mean_output_len"]
        > by_name["ShareGPT"]["mean_output_len"]
    )
