"""Wall-clock guard for the disabled SLO layer (not part of tier-1).

The deterministic companion (``tests/obs/test_null_overhead.py``) proves
the unarmed hot loop never calls into the null sinks; this benchmark
bounds the end-to-end consequence: an unarmed decode-loop run must not
be slower than the same run with histograms + flight recorder armed
(best-of-N, with generous slack for scheduler noise).
"""

import time

import pytest

from repro.core.engine import PensieveEngine
from repro.experiments.common import run_serving_once
from repro.obs import FlightRecorder, HistogramSet, SloConfig

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity

pytestmark = pytest.mark.slow

REPEATS = 3


def _workload():
    """Decode-heavy conversations under GPU-tier pressure."""
    return [
        scripted_conversation(i, [(24, 48), (16, 48)], start=0.05 * i, think=0.2)
        for i in range(8)
    ]


def _factory(loop):
    return PensieveEngine(
        loop, TINY, spec_with_capacity(256), chunk_size=16, policy="lru"
    )


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_unarmed_decode_loop_not_slower_than_armed():
    def unarmed():
        run_serving_once(_factory, _workload(), until=60.0)

    def armed():
        run_serving_once(
            _factory,
            _workload(),
            until=60.0,
            slo=SloConfig(ttft=0.5, tbt=0.2),
            hist=HistogramSet(),
            flight=FlightRecorder(),
        )

    unarmed()  # warm caches/JIT-able paths before timing either variant
    t_unarmed = _best_of(unarmed)
    t_armed = _best_of(armed)
    # The armed run does strictly more work; the unarmed run must not
    # lose to it beyond timer noise.  1.25x + 50ms absorbs CI jitter
    # while still catching an accidentally always-on recording path.
    assert t_unarmed <= t_armed * 1.25 + 0.05, (
        f"disabled SLO layer slowed the decode loop: "
        f"unarmed={t_unarmed:.4f}s armed={t_armed:.4f}s"
    )
