"""Smoke test for the benchmark harness (not part of tier-1).

Runs the quick suite once with a single repeat and asserts the
structural guarantees CI relies on: every scenario family present,
every scenario numerically equivalent, and the JSON artifact written
with a stable schema.
"""

import json

import pytest

from repro.bench import TOLERANCE, format_table, run_all, write_json
from repro.bench.harness import SCHEMA_VERSION, summarize

pytestmark = pytest.mark.slow


def test_quick_suite_equivalent_and_schema_stable(tmp_path):
    results = run_all(quick=True, seed=0, repeats=1)

    families = {x.family for x in results}
    assert families == {
        "decode", "prefill", "mixed", "e2e", "storage", "swap", "disk", "idle",
        "packing", "decode_sched", "backend",
    }
    assert all(x.equivalent for x in results), format_table(results)
    assert all(x.max_abs_diff <= TOLERANCE for x in results)
    assert all(x.optimized_s > 0 and x.reference_s > 0 for x in results)

    # The ragged kernel and the coalesced swap path are represented and
    # bit-exact where exactness is promised (swap moves bytes verbatim).
    ragged = [x for x in results if x.optimized == "ragged_multi_token_attention"]
    assert ragged and any(x.family == "prefill" for x in ragged)
    assert any(x.family == "mixed" for x in ragged)
    swap = [x for x in results if x.family == "swap"]
    assert swap and all(x.max_abs_diff == 0.0 for x in swap)
    disk = [x for x in results if x.family == "disk"]
    assert disk and all(x.max_abs_diff == 0.0 for x in disk)
    # The long-idle-user scenario restores parked conversations from the
    # third tier bit-identically to the recompute baseline.
    idle = [x for x in results if x.family == "idle"]
    assert idle and all(x.max_abs_diff == 0.0 for x in idle)
    # The packing cache is bit-exact against the per-step rebuild, and
    # the page-aware server A/B produces token-identical transcripts.
    packing = [x for x in results if x.family == "packing"]
    assert packing and all(x.max_abs_diff == 0.0 for x in packing)
    sched = [x for x in results if x.family == "decode_sched"]
    assert sched and all(x.max_abs_diff == 0.0 for x in sched)
    # Both non-default backends appear: the paged-ring A/B and the
    # contiguous-allocator coverage row, each oracle-checked in-run.
    backend = [x for x in results if x.family == "backend"]
    assert any(x.name.startswith("backend/paged-ring/") for x in backend)
    assert any(x.name.startswith("backend/contiguous/") for x in backend)

    summary = summarize(results)
    assert summary["all_equivalent"] is True

    out = tmp_path / "BENCH_kernels.json"
    write_json(results, str(out), quick=True, seed=0)
    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["tolerance"] == TOLERANCE
    assert len(payload["results"]) == len(results)
    assert {x["name"] for x in payload["results"]} == {x.name for x in results}
    assert len(payload["history"]) == 1
    assert payload["history"][0]["summary"] == summary

    # A second write to the same path appends to the run history rather
    # than overwriting it.
    write_json(results, str(out), quick=True, seed=0)
    payload = json.loads(out.read_text())
    assert len(payload["history"]) == 2
    assert [e["summary"] for e in payload["history"]] == [summary, summary]


def test_scenario_list_is_deterministic():
    a = [x.name for x in run_all(quick=True, seed=0, repeats=1)]
    b = [x.name for x in run_all(quick=True, seed=0, repeats=1)]
    assert a == b
