"""Figure 12 — multi-token attention kernel vs straw-men.

Two reproductions: the A100-scale cost model (matching the paper's batch
32 / query 8 setup) and a wall-clock measurement of the real numpy kernels
(small scale; same qualitative ordering).
"""

import pytest

from repro.experiments.fig12 import (
    format_fig12,
    run_fig12,
    run_fig12_measured,
)

from benchmarks.conftest import run_once


def test_fig12_cost_model(benchmark):
    rows = run_once(benchmark, run_fig12)
    print("\n" + format_fig12(rows))

    for row in rows:
        # Claim 1: Pensieve's kernel matches (slightly beats) the ideal
        # contiguous kernel (§6.4).
        assert row["pensieve_s"] <= row["ideal_s"]
        assert row["pensieve_s"] > 0.9 * row["ideal_s"]
        if row["past_kv_tokens"] > 0:
            # Claim 2: both straw-men add significant overhead.
            assert row["copyout_s"] > 1.2 * row["ideal_s"]
            assert row["multiround_s"] > 2.0 * row["ideal_s"]

    # Claim 3: copy-out overhead is proportional to past KV-tokens.
    small = next(r for r in rows if r["past_kv_tokens"] == 1024)
    large = next(r for r in rows if r["past_kv_tokens"] == 16384)
    copy_small = small["copyout_s"] - small["ideal_s"]
    copy_large = large["copyout_s"] - large["ideal_s"]
    assert copy_large == pytest.approx(16 * copy_small, rel=0.25)


def test_fig12_measured_numpy_kernels(benchmark):
    rows = run_once(
        benchmark,
        run_fig12_measured,
        batch_size=4,
        query_tokens=16,
        context_sizes=(512, 2048),
        repeats=5,
    )
    print("\n" + format_fig12(rows))
    # The structural gap — multi-round gives up the query-token
    # parallelism, paying one context pass per query token — dominates at
    # large contexts; at tiny ones numpy's per-call overhead hides it.
    # (Margins are wide: wall clock on a busy CI box is noisy.)
    big = rows[-1]
    assert big["multiround_s"] > 1.5 * big["pensieve_s"]
    for row in rows:
        assert row["pensieve_s"] < 6 * row["ideal_s"]
