"""Figure 10 — single-GPU end-to-end serving performance.

Reduced-scale sweeps (shorter simulated duration, fewer rates than the
full EXPERIMENTS.md run) asserting the paper's qualitative claims:

- Pensieve achieves the best throughput at the paper's latency targets;
- TensorRT-LLM beats vLLM (compiled kernels) but not Pensieve;
- Pensieve (GPU cache) sits between the baselines and full Pensieve;
- the GQA model (Llama 2-13B) benefits more than OPT-13B;
- ShareGPT (more turns) benefits more than UltraChat.
"""

import pytest

from repro.experiments.common import throughput_at_latency
from repro.experiments.fig10 import (
    PAPER_LATENCY_TARGETS,
    format_fig10,
    headline_ratios,
    run_fig10,
)
from repro.model import LLAMA2_13B, OPT_13B
from repro.workload import SHAREGPT, ULTRACHAT

from benchmarks.conftest import run_once

DURATION = 400.0


def test_fig10a_opt13b_sharegpt(benchmark):
    curves = run_once(
        benchmark, run_fig10, OPT_13B, SHAREGPT,
        rates=(2.0, 5.0, 8.0, 11.0), duration=DURATION,
    )
    print("\n" + format_fig10(curves, OPT_13B, SHAREGPT))
    target = PAPER_LATENCY_TARGETS[("OPT-13B", "ShareGPT")]
    ratios = headline_ratios(curves, target)
    # Paper: 1.36x vLLM, 1.14x TensorRT-LLM at 120 ms/token.
    assert ratios["vLLM"] > 1.15
    assert ratios["TensorRT-LLM"] > 1.05
    assert ratios["Pensieve (GPU cache)"] > 1.0
    # TensorRT-LLM consistently outperforms vLLM (§6.2).
    assert throughput_at_latency(
        curves["TensorRT-LLM"], target
    ) > throughput_at_latency(curves["vLLM"], target)


def test_fig10b_llama13b_sharegpt(benchmark):
    curves = run_once(
        benchmark, run_fig10, LLAMA2_13B, SHAREGPT,
        rates=(6.0, 12.0, 18.0, 24.0), duration=DURATION,
    )
    print("\n" + format_fig10(curves, LLAMA2_13B, SHAREGPT))
    target = PAPER_LATENCY_TARGETS[("Llama 2-13B", "ShareGPT")]
    ratios = headline_ratios(curves, target)
    # Paper: 1.70x vLLM, 1.58x TensorRT-LLM at 180 ms/token; GQA gives
    # Pensieve more cacheable tokens, so gains exceed the OPT-13B panel.
    assert ratios["vLLM"] > 1.3
    assert ratios["TensorRT-LLM"] > 1.15


def test_fig10c_opt13b_ultrachat(benchmark):
    curves = run_once(
        benchmark, run_fig10, OPT_13B, ULTRACHAT,
        rates=(2.0, 4.0, 6.0, 8.0), duration=DURATION,
    )
    print("\n" + format_fig10(curves, OPT_13B, ULTRACHAT))
    target = PAPER_LATENCY_TARGETS[("OPT-13B", "UltraChat")]
    ratios = headline_ratios(curves, target)
    # Paper: 1.17x vLLM at 120 ms/token — smaller than ShareGPT because
    # UltraChat has fewer turns.
    assert ratios["vLLM"] > 1.02


def test_fig10_sharegpt_beats_ultrachat_in_gains(benchmark):
    # A short think time lets conversations get through all their turns
    # inside the benchmark window, so the datasets' turn-count difference
    # (5.56 vs 3.86) — the mechanism behind the paper's §6.2 contrast —
    # is fully expressed at reduced scale.
    def both():
        share = run_fig10(
            OPT_13B, SHAREGPT, rates=(5.0, 8.0, 11.0), duration=DURATION,
            systems=("vLLM", "Pensieve"), think_time_mean=20.0,
        )
        ultra = run_fig10(
            OPT_13B, ULTRACHAT, rates=(3.0, 5.0, 7.0), duration=DURATION,
            systems=("vLLM", "Pensieve"), think_time_mean=20.0,
        )
        return share, ultra

    share, ultra = run_once(benchmark, both)
    target = 0.120
    share_ratio = headline_ratios(share, target)["vLLM"]
    ultra_ratio = headline_ratios(ultra, target)["vLLM"]
    print(f"\nGain on ShareGPT {share_ratio:.2f}x vs UltraChat {ultra_ratio:.2f}x")
    # §6.2: more conversation turns -> more benefit from saved KV-tokens.
    assert share_ratio > ultra_ratio
