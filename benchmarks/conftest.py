"""Benchmark-suite configuration.

Every benchmark regenerates one figure/table of the paper at reduced scale
(shorter simulated durations, fewer sweep points) and asserts the paper's
*qualitative* claims: who wins, by roughly what factor, where crossovers
fall.  The printed tables are the reduced-scale counterparts of the
figures; ``EXPERIMENTS.md`` records a full-scale run.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    Serving sweeps take tens of seconds of wall time; statistical timing
    over many rounds is meaningless for them (they are deterministic), so
    one round is both honest and affordable.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
