"""Figure 14 — retention-value eviction vs classic LRU.

The paper (§6.6): the policies match at light load; past ~3 req/s the
retention-value policy pulls ahead — its CPU cache hit rate is up to 4.4
percentage points higher and it recomputes up to 14.6 % fewer KV-tokens.

The CPU tier is shrunk for the benchmark run so that eviction pressure
(the mechanism under test) appears within the reduced simulated duration.
"""

from repro.experiments.common import throughput_at_latency
from repro.experiments.fig14 import format_fig14, run_fig14

from benchmarks.conftest import run_once

#: ~16 GB of OPT-13B KV-tokens: small enough to force CPU-tier drops.
CPU_TOKENS = 20_000


def test_fig14_eviction_policy(benchmark):
    curves = run_once(
        benchmark,
        run_fig14,
        rates=(1.0, 4.0, 7.0, 10.0),
        duration=300.0,
        cpu_cache_tokens=CPU_TOKENS,
    )
    print("\n" + format_fig14(curves))

    retention = {p.request_rate: p for p in curves["retention-value"]}
    lru = {p.request_rate: p for p in curves["lru"]}

    # Claim 1: similar performance at light load.
    low = 1.0
    assert retention[low].mean_norm_latency <= 1.2 * lru[low].mean_norm_latency

    # Claim 2: under pressure, the retention-value policy recomputes
    # fewer tokens and achieves an equal-or-better hit rate.
    high_rates = [r for r in retention if r >= 4.0]
    rec_recomputed = sum(retention[r].extras["recomputed_tokens"] for r in high_rates)
    lru_recomputed = sum(lru[r].extras["recomputed_tokens"] for r in high_rates)
    assert rec_recomputed < lru_recomputed
    saving = 1.0 - rec_recomputed / max(1.0, lru_recomputed)
    print(f"\nrecomputed-token reduction at >=4 req/s: {saving * 100:.1f}%")

    mean_hit_gain = sum(
        retention[r].extras["hit_rate"] - lru[r].extras["hit_rate"]
        for r in high_rates
    ) / len(high_rates)
    print(f"mean hit-rate gain: {mean_hit_gain * 100:.2f} percentage points")
    assert mean_hit_gain > -0.01  # never meaningfully worse

    # Claim 3: better end-to-end throughput at the latency knee.
    assert throughput_at_latency(
        curves["retention-value"], 0.120
    ) >= throughput_at_latency(curves["lru"], 0.120)
