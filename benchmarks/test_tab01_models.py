"""Table 1 — model hyper-parameters and their derived KV/compute sizes."""

import pytest

from repro.model import LLAMA2_13B, LLAMA2_70B, OPT_13B, OPT_66B, PAPER_MODELS

from benchmarks.conftest import run_once


def collect_rows():
    rows = []
    for cfg in PAPER_MODELS.values():
        rows.append(
            {
                "model": cfg.name,
                "layers": cfg.num_layers,
                "hidden": cfg.hidden_size,
                "heads": cfg.num_heads,
                "kv_heads": cfg.num_kv_heads,
                "head_dim": cfg.head_dim,
                "gpus": cfg.num_gpus,
                "kv_mb_per_token": cfg.kv_bytes_per_token / 2**20,
                "params_b": cfg.param_count / 1e9,
            }
        )
    return rows


def test_tab01_model_table(benchmark):
    rows = run_once(benchmark, collect_rows)
    print("\nTable 1 — model hyper-parameters")
    header = f"{'model':>12} {'L':>3} {'hidden':>6} {'Q/KV heads':>10} {'gpus':>4} {'KV MB/tok':>9} {'params(B)':>9}"
    print(header)
    for r in rows:
        print(
            f"{r['model']:>12} {r['layers']:>3} {r['hidden']:>6} "
            f"{r['heads']:>5}/{r['kv_heads']:<4} {r['gpus']:>4} "
            f"{r['kv_mb_per_token']:>9.3f} {r['params_b']:>9.1f}"
        )

    # The paper's §3.2 headline number: 0.78 MB per KV-token for a 13B
    # GPT-3-class model.
    assert OPT_13B.kv_bytes_per_token / 2**20 == pytest.approx(0.78, abs=0.01)
    # GQA savings: 4x for Llama 2-13B (group 4), 8x-per-hidden for 70B.
    assert OPT_13B.kv_bytes_per_token / LLAMA2_13B.kv_bytes_per_token == 4.0
    assert LLAMA2_70B.gqa_group_size == 8
    # §6.3: OPT-66B compute grows >5x over OPT-13B while KV grows 2.88x.
    assert OPT_66B.kv_bytes_per_token / OPT_13B.kv_bytes_per_token == pytest.approx(
        2.88, abs=0.01
    )
    assert (
        OPT_66B.linear_flops_per_token() / OPT_13B.linear_flops_per_token() > 4.5
    )
