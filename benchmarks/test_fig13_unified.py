"""Figure 13 — unified vs separate prefill/generation scheduling."""

from repro.experiments.common import throughput_at_latency
from repro.experiments.fig13 import format_fig13, run_fig13

from benchmarks.conftest import run_once


def test_fig13_unified_scheduling_wins(benchmark):
    curves = run_once(
        benchmark, run_fig13, rates=(8.0, 14.0, 20.0, 26.0), duration=300.0
    )
    print("\n" + format_fig13(curves))

    # Claim: unified batching achieves better throughput at any latency
    # target (it avoids running prefills as separate small batches, §6.5).
    for target in (0.05, 0.1, 0.2):
        unified = throughput_at_latency(curves["unified"], target)
        separate = throughput_at_latency(curves["separate"], target)
        assert unified >= separate

    # And strictly better at the saturation knee.
    assert throughput_at_latency(curves["unified"], 0.1) > 1.05 * (
        throughput_at_latency(curves["separate"], 0.1)
    )

    # Latency is also better (or equal) at every common rate.
    by_rate_u = {p.request_rate: p for p in curves["unified"]}
    by_rate_s = {p.request_rate: p for p in curves["separate"]}
    better = sum(
        by_rate_u[r].mean_norm_latency <= by_rate_s[r].mean_norm_latency
        for r in by_rate_u
    )
    assert better >= len(by_rate_u) - 1
