"""Figure 11 — 4-GPU serving performance (OPT-66B, Llama 2-70B).

Larger models amplify Pensieve's advantage (§6.3): compute grows faster
than KV-token size, and per-GPU CPU memory scales with GPU count, so
relatively more context fits in cache.  Paper: 2.04x vLLM for OPT-66B at
200 ms/token; 3.0x vLLM for Llama 2-70B at 400 ms/token.
"""

from repro.experiments.common import throughput_at_latency
from repro.experiments.fig10 import headline_ratios, run_fig10
from repro.experiments.fig11 import (
    PAPER_LATENCY_TARGETS,
    format_fig11,
    run_fig11,
)
from repro.model import LLAMA2_70B, OPT_13B, OPT_66B
from repro.workload import SHAREGPT

from benchmarks.conftest import run_once

DURATION = 400.0


def test_fig11a_opt66b(benchmark):
    curves = run_once(
        benchmark, run_fig11, OPT_66B,
        rates=(4.0, 8.0, 12.0, 16.0), duration=DURATION,
    )
    print("\n" + format_fig11(curves, OPT_66B))
    target = PAPER_LATENCY_TARGETS["OPT-66B"]
    ratios = headline_ratios(curves, target)
    # Paper: 2.04x vLLM, 1.64x TensorRT-LLM.
    assert ratios["vLLM"] > 1.35
    assert ratios["TensorRT-LLM"] > 1.15


def test_fig11b_llama70b(benchmark):
    curves = run_once(
        benchmark, run_fig11, LLAMA2_70B,
        rates=(8.0, 14.0, 20.0, 26.0), duration=DURATION,
    )
    print("\n" + format_fig11(curves, LLAMA2_70B))
    target = PAPER_LATENCY_TARGETS["Llama 2-70B"]
    ratios = headline_ratios(curves, target)
    # Paper: 3.0x vLLM, 2.47x TensorRT-LLM — GQA group 8 shrinks the KV
    # footprint 8x, so even the GPU-cache variant gains substantially.
    assert ratios["vLLM"] > 1.5
    assert ratios["TensorRT-LLM"] > 1.35
    gpu_cache = throughput_at_latency(curves["Pensieve (GPU cache)"], target)
    vllm = throughput_at_latency(curves["vLLM"], target)
    assert gpu_cache > vllm


def test_fig11_large_models_amplify_gains(benchmark):
    """§6.3: the 66B model's Pensieve/vLLM ratio exceeds the 13B model's."""

    def both():
        small = run_fig10(
            OPT_13B, SHAREGPT, rates=(5.0, 8.0, 11.0), duration=DURATION,
            systems=("vLLM", "Pensieve"),
        )
        large = run_fig11(
            OPT_66B, rates=(6.0, 10.0, 14.0), duration=DURATION,
            systems=("vLLM", "Pensieve"),
        )
        return small, large

    small, large = run_once(benchmark, both)
    ratio_13b = headline_ratios(small, 0.120)["vLLM"]
    ratio_66b = headline_ratios(large, 0.200)["vLLM"]
    print(f"\nOPT-13B gain {ratio_13b:.2f}x vs OPT-66B gain {ratio_66b:.2f}x")
    assert ratio_66b > ratio_13b
