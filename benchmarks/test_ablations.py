"""Ablations of Pensieve's design choices (DESIGN.md §4).

Not a paper figure: these benches probe the sensitivity of the design
parameters the paper fixes by fiat (chunk size 32, 25 % swap-out
threshold, 10 % generation reserve, pipelined swap-in, retrieval-first
PCIe scheduling) so downstream users know which knobs matter.
"""

import pytest

from repro.core import PensieveEngine
from repro.experiments.common import run_rate_sweep, throughput_at_latency
from repro.gpu import A100_80GB
from repro.model import OPT_13B
from repro.serving import BatchConfig
from repro.workload import SHAREGPT

from benchmarks.conftest import run_once

RATES = (5.0, 8.0, 11.0)
DURATION = 250.0
TARGET = 0.120


def sweep(**engine_kwargs):
    factory = lambda loop: PensieveEngine(loop, OPT_13B, A100_80GB, **engine_kwargs)
    return run_rate_sweep(factory, SHAREGPT, RATES, duration=DURATION)


def test_ablation_chunk_size(benchmark):
    """Chunk sizes 8-128 all work; 32 is a good middle (small chunks cost
    eviction-decision overhead only in the real system, large chunks
    waste cache on partially-needed data)."""

    def run():
        return {
            size: throughput_at_latency(sweep(chunk_size=size), TARGET)
            for size in (8, 32, 128)
        }

    results = run_once(benchmark, run)
    print(f"\nchunk-size ablation (thr@120ms): {results}")
    best = max(results.values())
    assert all(thr > 0.8 * best for thr in results.values())


def test_ablation_swap_threshold(benchmark):
    """Ahead-of-time swapping must not be disabled: a 0 % threshold makes
    every admission wait for demand copies."""

    def run():
        out = {}
        for threshold in (0.0, 0.10, 0.25, 0.50):
            cfg = BatchConfig(swap_out_threshold=threshold)
            out[threshold] = throughput_at_latency(
                sweep(batch_config=cfg), TARGET
            )
        return out

    results = run_once(benchmark, run)
    print(f"\nswap-threshold ablation (thr@120ms): {results}")
    assert results[0.25] >= 0.95 * max(results.values())
    assert results[0.0] <= results[0.25]


def test_ablation_generation_reserve(benchmark):
    """The 10 % reserve trades a little admission throughput for far fewer
    suspensions."""

    def run():
        out = {}
        for reserve in (0.0, 0.10, 0.25):
            cfg = BatchConfig(generation_reserve=reserve)
            points = run_rate_sweep(
                lambda loop: PensieveEngine(
                    loop, OPT_13B, A100_80GB, batch_config=cfg
                ),
                SHAREGPT,
                RATES,
                duration=DURATION,
                extras_fn=lambda e: {"suspensions": e.suspensions},
            )
            out[reserve] = (
                throughput_at_latency(points, TARGET),
                sum(p.extras["suspensions"] for p in points),
            )
        return out

    results = run_once(benchmark, run)
    print(f"\nreserve ablation (thr@120ms, suspensions): {results}")
    # Reserving more slots never increases suspensions.
    assert results[0.25][1] <= results[0.0][1]
    # And the default does not sacrifice much throughput vs no reserve.
    assert results[0.10][0] > 0.85 * results[0.0][0]


def test_ablation_pipelined_swap_in(benchmark):
    """§4.3.3: pipelining the per-layer transfer hides swap-in latency."""

    def run():
        pipelined = throughput_at_latency(sweep(pipelined_swap_in=True), TARGET)
        blocking = throughput_at_latency(sweep(pipelined_swap_in=False), TARGET)
        return pipelined, blocking

    pipelined, blocking = run_once(benchmark, run)
    print(f"\npipelined={pipelined:.2f} vs blocking={blocking:.2f} req/s @120ms")
    assert pipelined >= blocking


def test_ablation_retrieval_priority(benchmark):
    """§5: waiting with evictions while retrievals are in flight must not
    hurt (and typically helps latency)."""

    def run():
        on = sweep(prioritize_retrieval=True)
        off = sweep(prioritize_retrieval=False)
        return (
            throughput_at_latency(on, TARGET),
            throughput_at_latency(off, TARGET),
        )

    on, off = run_once(benchmark, run)
    print(f"\nretrieval-priority on={on:.2f} vs off={off:.2f} req/s @120ms")
    assert on >= 0.95 * off


def test_ablation_eviction_granularity(benchmark):
    """Table 3 contrast: Pensieve's token-chunk eviction vs
    CachedAttention-style whole-conversation eviction.  Coarse eviction
    overshoots (it throws away trailing tokens that were about to be
    reused), so chunk granularity should never lose."""

    def run():
        chunk = throughput_at_latency(
            sweep(whole_conversation_eviction=False), TARGET
        )
        whole = throughput_at_latency(
            sweep(whole_conversation_eviction=True), TARGET
        )
        return chunk, whole

    chunk, whole = run_once(benchmark, run)
    print(f"\nchunk-granularity={chunk:.2f} vs whole-conversation={whole:.2f} "
          f"req/s @120ms")
    assert chunk >= 0.98 * whole
