"""End-to-end tracing & telemetry (``repro.obs``).

The observability layer gives every run an attributed timeline: which
tokens were saved, what crossed the PCIe link, when eviction fired and at
what retention score, how deep the queues ran, and how each request's
lifecycle decomposed into prefill/decode/swap/recompute work.

Three pieces:

- :class:`Tracer` / :class:`NullTracer` — hierarchical spans stamped with
  simulated *and* wall-clock time, plus typed counters and gauges.  The
  null tracer is the default everywhere; its methods are allocation-free
  no-ops and hot loops additionally guard on :attr:`NullTracer.enabled`,
  so a disabled run executes the exact pre-instrumentation code path.
- Exporters (:mod:`repro.obs.export`) — JSONL event log, Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``), and a
  human-readable text report with per-stage and per-conversation rollups.
- SLO metrics (:mod:`repro.obs.histogram` / :mod:`repro.obs.flight`) —
  log-bucketed mergeable latency :class:`Histogram` sets (TTFT, TBT,
  queue wait, per-tier swap, recompute), a bounded per-request
  :class:`FlightRecorder` of lifecycle events with slow/failed-request
  capture, and exporters: Prometheus text snapshots
  (:func:`prometheus_snapshot`, self-reconciling against
  :func:`ledger_counters`) plus a sim-clock :class:`MetricsSampler`
  JSONL stream.
- CLI surface — ``repro trace <experiment>`` / ``repro metrics`` and the
  ``--trace-out`` / ``--slo-ttft`` / ``--slo-tbt`` / ``--metrics-out``
  flags on ``simulate`` / ``sweep`` / ``chat`` (see :mod:`repro.cli`).
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.walltime import StageTimings
from repro.obs.histogram import (
    NULL_HISTOGRAM,
    NULL_HISTOGRAMS,
    Histogram,
    HistogramSet,
    NullHistogram,
    NullHistogramSet,
)
from repro.obs.flight import (
    NULL_FLIGHT,
    FlightEvent,
    FlightRecorder,
    NullFlightRecorder,
    SloConfig,
)
from repro.obs.export import (
    MetricsSampler,
    ledger_counters,
    parse_prometheus,
    prometheus_snapshot,
    read_jsonl,
    span_summary,
    text_report,
    tier_attribution_table,
    to_chrome_trace,
    to_jsonl,
    write_trace_artifacts,
)

__all__ = [
    "NULL_FLIGHT",
    "NULL_HISTOGRAM",
    "NULL_HISTOGRAMS",
    "NULL_TRACER",
    "FlightEvent",
    "FlightRecorder",
    "Histogram",
    "HistogramSet",
    "MetricsSampler",
    "NullFlightRecorder",
    "NullHistogram",
    "NullHistogramSet",
    "NullTracer",
    "SloConfig",
    "Span",
    "StageTimings",
    "Tracer",
    "ledger_counters",
    "parse_prometheus",
    "prometheus_snapshot",
    "read_jsonl",
    "span_summary",
    "text_report",
    "tier_attribution_table",
    "to_chrome_trace",
    "to_jsonl",
    "write_trace_artifacts",
]
