"""End-to-end tracing & telemetry (``repro.obs``).

The observability layer gives every run an attributed timeline: which
tokens were saved, what crossed the PCIe link, when eviction fired and at
what retention score, how deep the queues ran, and how each request's
lifecycle decomposed into prefill/decode/swap/recompute work.

Three pieces:

- :class:`Tracer` / :class:`NullTracer` — hierarchical spans stamped with
  simulated *and* wall-clock time, plus typed counters and gauges.  The
  null tracer is the default everywhere; its methods are allocation-free
  no-ops and hot loops additionally guard on :attr:`NullTracer.enabled`,
  so a disabled run executes the exact pre-instrumentation code path.
- Exporters (:mod:`repro.obs.export`) — JSONL event log, Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``), and a
  human-readable text report with per-stage and per-conversation rollups.
- CLI surface — ``repro trace <experiment>`` and ``--trace-out`` flags on
  ``simulate`` / ``bench`` (see :mod:`repro.cli`).
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.export import (
    read_jsonl,
    text_report,
    to_chrome_trace,
    to_jsonl,
    write_trace_artifacts,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "read_jsonl",
    "text_report",
    "to_chrome_trace",
    "to_jsonl",
    "write_trace_artifacts",
]
