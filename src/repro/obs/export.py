"""Trace exporters: JSONL event log, Chrome trace-event JSON, text report.

All exporters read a finished :class:`~repro.obs.tracer.Tracer`; none of
them mutate it, so a run can be exported to every format.

- **JSONL** — one JSON object per line, ``type`` discriminated
  (``meta`` / ``span`` / ``event`` / ``gauge`` / ``counter``).  This is
  the machine-readable ground truth: counters in the log reconcile
  exactly with the cost/transfer models' own totals (asserted by
  ``tests/obs/test_instrumentation.py``).
- **Chrome trace-event JSON** — the ``traceEvents`` array format consumed
  by Perfetto and ``chrome://tracing``.  Spans become complete (``"X"``)
  events, instants become ``"i"`` events, gauge samples become counter
  (``"C"``) tracks.  Timestamps are microseconds on the chosen clock.
- **Text report** — per-stage (span name) and per-conversation rollups
  plus counter totals and gauge min/mean/max, for reading in a terminal.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Union

from repro.obs.tracer import Tracer

#: Schema version stamped into the JSONL meta line and chrome metadata.
SCHEMA_VERSION = 1

_PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _jsonable(value: Any) -> Any:
    """Coerce payload values to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _span_record(span) -> Dict[str, Any]:
    return {
        "type": "span",
        "id": span.id,
        "parent": span.parent,
        "name": span.name,
        "t0": span.t0,
        "t1": span.t1,
        "wall0": round(span.wall0, 9),
        "wall1": None if span.wall1 is None else round(span.wall1, 9),
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
    }


def to_jsonl(tracer: Tracer, target: _PathOrFile) -> int:
    """Write the full trace as JSON Lines; returns the line count."""
    records: List[Dict[str, Any]] = [
        {"type": "meta", "version": SCHEMA_VERSION, "format": "repro-trace-jsonl"}
    ]
    records.extend(_span_record(s) for s in tracer.spans)
    for name, t, wall, parent, attrs in tracer.instants:
        records.append(
            {
                "type": "event",
                "name": name,
                "t": t,
                "wall": round(wall, 9),
                "parent": parent,
                "attrs": {k: _jsonable(v) for k, v in attrs.items()},
            }
        )
    for name, t, wall, value in tracer.gauge_samples:
        records.append(
            {"type": "gauge", "name": name, "t": t, "wall": round(wall, 9),
             "value": value}
        )
    for name in sorted(tracer.counters):
        records.append(
            {"type": "counter", "name": name, "total": tracer.counters[name]}
        )
    if hasattr(target, "write"):
        for record in records:
            target.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        with open(target, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: _PathOrFile) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into record dicts (round-trip support)."""
    if hasattr(path, "read"):
        lines = path.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def _track_of(span_or_attrs: Dict[str, Any]) -> str:
    return str(span_or_attrs.get("track", "main"))


def to_chrome_trace(
    tracer: Tracer,
    target: _PathOrFile,
    time_axis: str = "sim",
    pid: int = 1,
) -> Dict[str, Any]:
    """Write a Chrome trace-event JSON file; returns the document.

    Args:
        tracer: finished tracer.
        time_axis: ``"sim"`` (primary clock, default) or ``"wall"``.
        pid: process id stamped on every event.

    Spans carrying a ``track`` attribute are grouped onto one named
    thread-track each (Perfetto renders them as labelled rows); everything
    else lands on the ``main`` track.
    """
    if time_axis not in ("sim", "wall"):
        raise ValueError(f"time_axis must be 'sim' or 'wall', got {time_axis!r}")

    def us(t_sim: float, t_wall: float) -> float:
        return round((t_sim if time_axis == "sim" else t_wall) * 1e6, 3)

    tracks: Dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tracks:
            tracks[track] = len(tracks) + 1
        return tracks[track]

    events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        t1 = span.t0 if span.t1 is None else span.t1
        wall1 = span.wall0 if span.wall1 is None else span.wall1
        start = us(span.t0, span.wall0)
        events.append(
            {
                "name": span.name,
                "cat": _track_of(span.attrs),
                "ph": "X",
                "ts": start,
                "dur": max(0.0, us(t1, wall1) - start),
                "pid": pid,
                "tid": tid(_track_of(span.attrs)),
                "args": {k: _jsonable(v) for k, v in span.attrs.items()
                         if k != "track"},
            }
        )
    for name, t, wall, _parent, attrs in tracer.instants:
        events.append(
            {
                "name": name,
                "cat": _track_of(attrs),
                "ph": "i",
                "s": "t",
                "ts": us(t, wall),
                "pid": pid,
                "tid": tid(_track_of(attrs)),
                "args": {k: _jsonable(v) for k, v in attrs.items() if k != "track"},
            }
        )
    for name, t, wall, value in tracer.gauge_samples:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": us(t, wall),
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    # Counter totals ride along as metadata so the chrome file is
    # self-contained even without the JSONL sibling.
    for track, track_tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": track_tid,
                "args": {"name": track},
            }
        )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-trace-chrome",
            "version": SCHEMA_VERSION,
            "timeAxis": time_axis,
            "counters": {k: tracer.counters[k] for k in sorted(tracer.counters)},
        },
    }
    if hasattr(target, "write"):
        json.dump(document, target, sort_keys=True)
    else:
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(document, fh, sort_keys=True)
    return document


def text_report(tracer: Tracer) -> str:
    """Human-readable rollups: per-stage, per-conversation, counters, gauges."""
    lines: List[str] = ["== trace report =="]

    # Per-stage (span-name) rollup on the primary clock.
    by_name: Dict[str, List[float]] = {}
    wall_by_name: Dict[str, float] = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span.duration)
        wall_by_name[span.name] = wall_by_name.get(span.name, 0.0) + span.wall_duration
    if by_name:
        lines.append("")
        lines.append("-- stages --")
        lines.append(
            f"{'stage':<24} {'count':>7} {'total_t':>12} {'mean_t':>12} {'wall_s':>10}"
        )
        for name in sorted(by_name):
            durations = by_name[name]
            total = sum(durations)
            lines.append(
                f"{name:<24} {len(durations):>7} {total:>12.6f} "
                f"{total / len(durations):>12.6f} {wall_by_name[name]:>10.4f}"
            )

    # Per-conversation rollup over request spans.
    by_conv: Dict[Any, List[float]] = {}
    for span in tracer.spans_named("request"):
        conv = span.attrs.get("conv_id")
        if conv is not None:
            by_conv.setdefault(conv, []).append(span.duration)
    if by_conv:
        lines.append("")
        lines.append("-- conversations (request spans) --")
        lines.append(f"{'conv_id':>8} {'turns':>6} {'total_t':>12} {'mean_t':>12}")
        for conv in sorted(by_conv, key=str):
            durations = by_conv[conv]
            total = sum(durations)
            lines.append(
                f"{str(conv):>8} {len(durations):>6} {total:>12.6f} "
                f"{total / len(durations):>12.6f}"
            )

    counters = tracer.counters
    if counters:
        lines.append("")
        lines.append("-- counters --")
        for name in sorted(counters):
            lines.append(f"{name:<40} {counters[name]:>16.1f}")

    by_gauge: Dict[str, List[float]] = {}
    for name, _t, _wall, value in tracer.gauge_samples:
        by_gauge.setdefault(name, []).append(value)
    if by_gauge:
        lines.append("")
        lines.append("-- gauges --")
        lines.append(
            f"{'gauge':<28} {'samples':>8} {'min':>12} {'mean':>12} {'max':>12}"
        )
        for name in sorted(by_gauge):
            values = by_gauge[name]
            lines.append(
                f"{name:<28} {len(values):>8} {min(values):>12.1f} "
                f"{sum(values) / len(values):>12.1f} {max(values):>12.1f}"
            )
    lines.append("")
    return "\n".join(lines)


def write_trace_artifacts(
    tracer: Tracer,
    outdir: Union[str, "os.PathLike[str]"],
    prefix: str = "trace",
    time_axis: str = "sim",
    close_at: Optional[float] = None,
) -> Dict[str, str]:
    """Write all three artifacts into ``outdir``; returns format->path.

    ``close_at`` closes spans still open (requests in flight at the
    simulation horizon) before exporting.
    """
    tracer.close_open(t=close_at)
    os.makedirs(outdir, exist_ok=True)
    paths = {
        "jsonl": os.path.join(outdir, f"{prefix}.jsonl"),
        "chrome": os.path.join(outdir, f"{prefix}.chrome.json"),
        "report": os.path.join(outdir, f"{prefix}.txt"),
    }
    to_jsonl(tracer, paths["jsonl"])
    to_chrome_trace(tracer, paths["chrome"], time_axis=time_axis)
    with open(paths["report"], "w", encoding="utf-8") as fh:
        fh.write(text_report(tracer))
    return paths
