"""Trace & metrics exporters: JSONL, Chrome trace JSON, text, Prometheus.

All exporters read a finished :class:`~repro.obs.tracer.Tracer`; none of
them mutate it, so a run can be exported to every format.

- **JSONL** — one JSON object per line, ``type`` discriminated
  (``meta`` / ``span`` / ``event`` / ``gauge`` / ``counter``).  This is
  the machine-readable ground truth: counters in the log reconcile
  exactly with the cost/transfer models' own totals (asserted by
  ``tests/obs/test_instrumentation.py``).
- **Chrome trace-event JSON** — the ``traceEvents`` array format consumed
  by Perfetto and ``chrome://tracing``.  Spans become complete (``"X"``)
  events, instants become ``"i"`` events, gauge samples become counter
  (``"C"``) tracks.  Timestamps are microseconds on the chosen clock.
- **Text report** — per-stage (span name) and per-conversation rollups
  plus counter totals and gauge min/mean/max, for reading in a terminal.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.obs.tracer import Tracer

#: Schema version stamped into the JSONL meta line and chrome metadata.
SCHEMA_VERSION = 1

_PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _jsonable(value: Any) -> Any:
    """Coerce payload values to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _span_record(span) -> Dict[str, Any]:
    return {
        "type": "span",
        "id": span.id,
        "parent": span.parent,
        "name": span.name,
        "t0": span.t0,
        "t1": span.t1,
        "wall0": round(span.wall0, 9),
        "wall1": None if span.wall1 is None else round(span.wall1, 9),
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
    }


def to_jsonl(tracer: Tracer, target: _PathOrFile) -> int:
    """Write the full trace as JSON Lines; returns the line count."""
    records: List[Dict[str, Any]] = [
        {"type": "meta", "version": SCHEMA_VERSION, "format": "repro-trace-jsonl"}
    ]
    records.extend(_span_record(s) for s in tracer.spans)
    for name, t, wall, parent, attrs in tracer.instants:
        records.append(
            {
                "type": "event",
                "name": name,
                "t": t,
                "wall": round(wall, 9),
                "parent": parent,
                "attrs": {k: _jsonable(v) for k, v in attrs.items()},
            }
        )
    for name, t, wall, value in tracer.gauge_samples:
        records.append(
            {"type": "gauge", "name": name, "t": t, "wall": round(wall, 9),
             "value": value}
        )
    for name in sorted(tracer.counters):
        records.append(
            {"type": "counter", "name": name, "total": tracer.counters[name]}
        )
    if hasattr(target, "write"):
        for record in records:
            target.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        with open(target, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: _PathOrFile) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into record dicts (round-trip support)."""
    if hasattr(path, "read"):
        lines = path.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def _track_of(span_or_attrs: Dict[str, Any]) -> str:
    return str(span_or_attrs.get("track", "main"))


def to_chrome_trace(
    tracer: Tracer,
    target: _PathOrFile,
    time_axis: str = "sim",
    pid: int = 1,
) -> Dict[str, Any]:
    """Write a Chrome trace-event JSON file; returns the document.

    Args:
        tracer: finished tracer.
        time_axis: ``"sim"`` (primary clock, default) or ``"wall"``.
        pid: process id stamped on every event.

    Spans carrying a ``track`` attribute are grouped onto one named
    thread-track each (Perfetto renders them as labelled rows); everything
    else lands on the ``main`` track.

    Robustness guarantees (round-trip tested):

    - spans still open at export time are closed *on export* at the latest
      timestamp observed anywhere in the trace (``args.truncated`` marks
      them) without mutating the tracer;
    - every ``ts`` is non-negative and the emitted event array is
      **strictly monotonic** in ``ts`` (ties and out-of-order records are
      nudged forward by a sub-microsecond epsilon), which some trace
      viewers require;
    - the document is always valid JSON, open spans or not.
    """
    if time_axis not in ("sim", "wall"):
        raise ValueError(f"time_axis must be 'sim' or 'wall', got {time_axis!r}")

    def us(t_sim: float, t_wall: float) -> float:
        return round((t_sim if time_axis == "sim" else t_wall) * 1e6, 3)

    tracks: Dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tracks:
            tracks[track] = len(tracks) + 1
        return tracks[track]

    # Close-on-export horizon: the latest timestamp seen anywhere.
    spans = tracer.spans
    instants = tracer.instants
    gauges = tracer.gauge_samples
    horizon_sim = 0.0
    horizon_wall = 0.0
    for span in spans:
        horizon_sim = max(horizon_sim, span.t0 if span.t1 is None else span.t1)
        horizon_wall = max(
            horizon_wall, span.wall0 if span.wall1 is None else span.wall1
        )
    for _name, t, wall, _parent, _attrs in instants:
        horizon_sim = max(horizon_sim, t)
        horizon_wall = max(horizon_wall, wall)
    for _name, t, wall, _value in gauges:
        horizon_sim = max(horizon_sim, t)
        horizon_wall = max(horizon_wall, wall)

    events: List[Dict[str, Any]] = []
    for span in spans:
        truncated = span.t1 is None
        t1 = horizon_sim if truncated else span.t1
        wall1 = horizon_wall if truncated else span.wall1
        start = us(span.t0, span.wall0)
        args = {k: _jsonable(v) for k, v in span.attrs.items() if k != "track"}
        if truncated:
            args["truncated"] = True
        events.append(
            {
                "name": span.name,
                "cat": _track_of(span.attrs),
                "ph": "X",
                "ts": start,
                "dur": max(0.0, us(t1, wall1) - start),
                "pid": pid,
                "tid": tid(_track_of(span.attrs)),
                "args": args,
            }
        )
    for name, t, wall, _parent, attrs in instants:
        events.append(
            {
                "name": name,
                "cat": _track_of(attrs),
                "ph": "i",
                "s": "t",
                "ts": us(t, wall),
                "pid": pid,
                "tid": tid(_track_of(attrs)),
                "args": {k: _jsonable(v) for k, v in attrs.items() if k != "track"},
            }
        )
    for name, t, wall, value in tracer.gauge_samples:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": us(t, wall),
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    # Thread-name metadata leads the array; real events follow sorted by
    # timestamp, then every ts is clamped non-negative and nudged to be
    # strictly increasing across the whole array.
    meta_events: List[Dict[str, Any]] = []
    for track, track_tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        meta_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": track_tid,
                "args": {"name": track},
            }
        )
    events.sort(key=lambda e: e["ts"])
    events = meta_events + events
    epsilon = 0.001  # microseconds; below any modelled duration
    prev = -epsilon
    for event in events:
        ts = max(0.0, float(event["ts"]))
        if ts <= prev:
            ts = round(prev + epsilon, 3)
        event["ts"] = ts
        prev = ts
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-trace-chrome",
            "version": SCHEMA_VERSION,
            "timeAxis": time_axis,
            "counters": {k: tracer.counters[k] for k in sorted(tracer.counters)},
        },
    }
    if hasattr(target, "write"):
        json.dump(document, target, sort_keys=True)
    else:
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(document, fh, sort_keys=True)
    return document


def text_report(tracer: Tracer) -> str:
    """Human-readable rollups: per-stage, per-conversation, counters, gauges."""
    lines: List[str] = ["== trace report =="]

    # Per-stage (span-name) rollup on the primary clock.
    by_name: Dict[str, List[float]] = {}
    wall_by_name: Dict[str, float] = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span.duration)
        wall_by_name[span.name] = wall_by_name.get(span.name, 0.0) + span.wall_duration
    if by_name:
        lines.append("")
        lines.append("-- stages --")
        lines.append(
            f"{'stage':<24} {'count':>7} {'total_t':>12} {'mean_t':>12} {'wall_s':>10}"
        )
        for name in sorted(by_name):
            durations = by_name[name]
            total = sum(durations)
            lines.append(
                f"{name:<24} {len(durations):>7} {total:>12.6f} "
                f"{total / len(durations):>12.6f} {wall_by_name[name]:>10.4f}"
            )

    # Per-conversation rollup over request spans.
    by_conv: Dict[Any, List[float]] = {}
    for span in tracer.spans_named("request"):
        conv = span.attrs.get("conv_id")
        if conv is not None:
            by_conv.setdefault(conv, []).append(span.duration)
    if by_conv:
        lines.append("")
        lines.append("-- conversations (request spans) --")
        lines.append(f"{'conv_id':>8} {'turns':>6} {'total_t':>12} {'mean_t':>12}")
        for conv in sorted(by_conv, key=str):
            durations = by_conv[conv]
            total = sum(durations)
            lines.append(
                f"{str(conv):>8} {len(durations):>6} {total:>12.6f} "
                f"{total / len(durations):>12.6f}"
            )

    counters = tracer.counters
    if counters:
        lines.append("")
        lines.append("-- counters --")
        for name in sorted(counters):
            lines.append(f"{name:<40} {counters[name]:>16.1f}")

    by_gauge: Dict[str, List[float]] = {}
    for name, _t, _wall, value in tracer.gauge_samples:
        by_gauge.setdefault(name, []).append(value)
    if by_gauge:
        lines.append("")
        lines.append("-- gauges --")
        lines.append(
            f"{'gauge':<28} {'samples':>8} {'min':>12} {'mean':>12} {'max':>12}"
        )
        for name in sorted(by_gauge):
            values = by_gauge[name]
            lines.append(
                f"{name:<28} {len(values):>8} {min(values):>12.1f} "
                f"{sum(values) / len(values):>12.1f} {max(values):>12.1f}"
            )
    lines.append("")
    return "\n".join(lines)


def write_trace_artifacts(
    tracer: Tracer,
    outdir: Union[str, "os.PathLike[str]"],
    prefix: str = "trace",
    time_axis: str = "sim",
    close_at: Optional[float] = None,
) -> Dict[str, str]:
    """Write all three artifacts into ``outdir``; returns format->path.

    ``close_at`` closes spans still open (requests in flight at the
    simulation horizon) before exporting.
    """
    tracer.close_open(t=close_at)
    os.makedirs(outdir, exist_ok=True)
    paths = {
        "jsonl": os.path.join(outdir, f"{prefix}.jsonl"),
        "chrome": os.path.join(outdir, f"{prefix}.chrome.json"),
        "report": os.path.join(outdir, f"{prefix}.txt"),
    }
    to_jsonl(tracer, paths["jsonl"])
    to_chrome_trace(tracer, paths["chrome"], time_axis=time_axis)
    with open(paths["report"], "w", encoding="utf-8") as fh:
        fh.write(text_report(tracer))
    return paths


# ---------------------------------------------------------------------------
# Span summary (``repro trace --summary``)
# ---------------------------------------------------------------------------


def span_summary(tracer: Tracer, top: int = 10) -> str:
    """Per-span-name aggregates plus the top-N slowest individual spans.

    Makes a finished trace inspectable without loading Chrome: one table
    of count/total/mean/max per span name with an ASCII bar chart of
    where simulated time went, and the N slowest spans with their
    attribution attributes.
    """
    from repro.analysis.ascii_plot import bar_chart

    lines: List[str] = ["== span summary =="]
    spans = [s for s in tracer.spans if s.t1 is not None]
    open_spans = len(tracer.spans) - len(spans)
    if not spans:
        lines.append("(no closed spans)")
        return "\n".join(lines)

    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    lines.append("")
    lines.append("-- per-span-name aggregate --")
    lines.append(
        f"{'span':<20} {'count':>7} {'total_t':>12} {'mean_t':>12} {'max_t':>12}"
    )
    totals: List[Tuple[str, float]] = []
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durations = by_name[name]
        total = sum(durations)
        totals.append((name, total))
        lines.append(
            f"{name:<20} {len(durations):>7} {total:>12.6f} "
            f"{total / len(durations):>12.6f} {max(durations):>12.6f}"
        )
    if open_spans:
        lines.append(f"(+{open_spans} spans still open, excluded)")

    lines.append("")
    lines.append(bar_chart(totals, title="-- total simulated seconds --"))

    slowest = sorted(spans, key=lambda s: -s.duration)[: max(0, top)]
    if slowest:
        lines.append("")
        lines.append(f"-- top {len(slowest)} slowest spans --")
        lines.append(f"{'span':<20} {'t0':>12} {'dur_t':>12}  attrs")
        for span in slowest:
            attrs = ", ".join(
                f"{k}={span.attrs[k]}"
                for k in ("request_id", "conv_id", "tokens", "batch_size")
                if k in span.attrs
            )
            lines.append(
                f"{span.name:<20} {span.t0:>12.6f} {span.duration:>12.6f}  {attrs}"
            )
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus text-format snapshot
# ---------------------------------------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)$"
)
_PROM_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def _prom_name(name: str) -> str:
    return _PROM_NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".9g")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_snapshot(
    collector: Any = None,
    hists: Any = None,
    counters: Optional[Dict[str, float]] = None,
    gauges: Optional[Dict[str, float]] = None,
    namespace: str = "repro",
) -> str:
    """Render an SLO metrics snapshot in Prometheus text exposition format.

    Args:
        collector: a ``MetricsCollector`` with the SLO layer armed —
            contributes its histograms, flight-recorder event counters,
            request/failure totals and SLO violation counts.
        hists: a :class:`~repro.obs.histogram.HistogramSet` used instead
            of (or in addition to) ``collector``'s.
        counters: extra monotonic counters — pass the engine/PCIe/NVMe
            **ledger totals** here so the snapshot is self-reconciling
            (histogram totals and ledger counters live in one artifact).
        gauges: extra point-in-time values.
        namespace: metric-name prefix.

    The exposition is parseable by :func:`parse_prometheus` (used by the
    CI metrics-smoke job) and by any Prometheus scraper.
    """
    out: List[str] = []
    counter_lines: Dict[str, float] = dict(counters or {})
    gauge_lines: Dict[str, float] = dict(gauges or {})

    hist_sets: List[Any] = []
    if hists is not None and getattr(hists, "enabled", False):
        hist_sets.append(hists)
    if collector is not None:
        coll_h = getattr(collector, "hist", None)
        if coll_h is not None and coll_h.enabled and coll_h not in hist_sets:
            hist_sets.append(coll_h)
        counter_lines["requests_completed"] = float(len(collector.records))
        counter_lines["requests_failed"] = float(len(collector.failures))
        flight = getattr(collector, "flight", None)
        if flight is not None and flight.enabled:
            for key, value in sorted(flight.event_counts.items()):
                counter_lines[f"flight_events.{key}"] = float(value)
        for kind, value in sorted(collector.slo_violations.items()):
            counter_lines[f"slo_violations.{kind}"] = float(value)
        slo = getattr(collector, "slo", None)
        if slo is not None:
            if slo.ttft is not None:
                gauge_lines["slo_ttft_seconds"] = slo.ttft
            if slo.tbt is not None:
                gauge_lines["slo_tbt_seconds"] = slo.tbt

    seen_names: set = set()
    for hist_set in hist_sets:
        for hist in hist_set.all():
            metric = f"{namespace}_{_prom_name(hist.name)}"
            if metric not in seen_names:
                seen_names.add(metric)
                out.append(
                    f"# HELP {metric} repro histogram "
                    f"({hist.clock} clock, log-bucketed)"
                )
                out.append(f"# TYPE {metric} histogram")
            labels = dict(hist.labels)
            for upper, cumulative in hist.cumulative_buckets():
                bucket_labels = dict(labels)
                bucket_labels["le"] = format(upper, ".9g")
                out.append(
                    f"{metric}_bucket{_prom_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            out.append(f"{metric}_bucket{_prom_labels(inf_labels)} {hist.count}")
            out.append(
                f"{metric}_sum{_prom_labels(labels)} {_prom_value(hist.sum)}"
            )
            out.append(f"{metric}_count{_prom_labels(labels)} {hist.count}")

    for name in sorted(counter_lines):
        metric = f"{namespace}_{_prom_name(name)}_total"
        out.append(f"# TYPE {metric} counter")
        out.append(f"{metric} {_prom_value(counter_lines[name])}")
    for name in sorted(gauge_lines):
        metric = f"{namespace}_{_prom_name(name)}"
        out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric} {_prom_value(gauge_lines[name])}")
    return "\n".join(out) + "\n"


def ledger_counters(engine: Any) -> Dict[str, float]:
    """Ground-truth ledger totals from an engine's transfer/cache models.

    Duck-typed (no serving imports): reads whichever of ``pcie`` /
    ``nvme`` / ``manager`` / ``metrics.faults`` the engine exposes.  Pass
    the result as ``counters=`` to :func:`prometheus_snapshot` so one
    artifact carries both the histogram totals and the independent
    ledgers they must reconcile with (the ``ledger.*`` prefix keeps the
    two families apart in the exposition).
    """
    counters: Dict[str, float] = {}
    pcie = getattr(engine, "pcie", None)
    if pcie is not None:
        by_dir: Dict[str, int] = {}
        for record in pcie.history:
            key = record.direction.value
            by_dir[key] = by_dir.get(key, 0) + 1
        for direction in ("h2d", "d2h"):
            counters[f"ledger.pcie.{direction}_transfers"] = float(
                by_dir.get(direction, 0)
            )
        for direction, moved in pcie.bytes_moved.items():
            counters[f"ledger.pcie.{direction.value}_bytes"] = float(moved)
    nvme = getattr(engine, "nvme", None)
    if nvme is not None:
        by_dir = {}
        for record in nvme.history:
            key = record.direction.value
            by_dir[key] = by_dir.get(key, 0) + 1
        for direction in ("read", "write"):
            counters[f"ledger.nvme.{direction}_transfers"] = float(
                by_dir.get(direction, 0)
            )
        for direction, moved in nvme.bytes_moved.items():
            counters[f"ledger.nvme.{direction.value}_bytes"] = float(moved)
    manager = getattr(engine, "manager", None)
    if manager is not None:
        for key, value in getattr(manager, "stats", {}).items():
            counters[f"ledger.cache.{key}"] = float(value)
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        for key, value in metrics.faults.as_dict().items():
            counters[f"ledger.faults.{key}"] = float(value)
    return counters


def parse_prometheus(
    text: str,
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse Prometheus text exposition back into nested dicts.

    Returns ``{metric_name: {((label, value), ...): sample_value}}``; an
    unlabelled sample uses the empty tuple key.  Raises ``ValueError`` on
    a malformed sample line, making it usable as a validity check in CI.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed prometheus line: {line!r}")
        labels_src = match.group("labels") or ""
        labels = tuple(
            sorted(
                (m.group("key"), m.group("value"))
                for m in _PROM_LABEL_RE.finditer(labels_src)
            )
        )
        value_src = match.group("value")
        value = float("inf") if value_src == "+Inf" else float(value_src)
        out.setdefault(match.group("name"), {})[labels] = value
    return out


def tier_attribution_table(hists: Any, title: str = "") -> str:
    """Per-tier tail-latency attribution table over a histogram set.

    One row per ``(metric, labels)`` pair — swap-in/out split by tier,
    queue wait, TTFT/TBT, recompute — with exact counts and streaming
    p50/p90/p99/max.  Empty string when nothing was recorded (so report
    code can append it unconditionally).
    """
    if hists is None or not getattr(hists, "enabled", False):
        return ""
    rows = [h for h in hists.all() if h.count > 0]
    if not rows:
        return ""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'metric':<34} {'count':>8} {'p50':>11} {'p90':>11} "
        f"{'p99':>11} {'max':>11} {'sum':>12}"
    )
    for hist in rows:
        label = hist.name
        if hist.labels:
            label += (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(hist.labels.items()))
                + "}"
            )
        lines.append(
            f"{label:<34} {hist.count:>8} {hist.p50:>11.6f} {hist.p90:>11.6f} "
            f"{hist.p99:>11.6f} {hist.max:>11.6f} {hist.sum:>12.6f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Periodic JSONL metrics sampler (sim-clock driven)
# ---------------------------------------------------------------------------


class MetricsSampler:
    """Samples engine/queue/cache state on the simulated clock.

    Attach before the run; every ``interval`` simulated seconds it appends
    one row (queue depths, completion counts, KV gauges, streaming tail
    percentiles) until ``horizon``.  Rows export as JSONL with a leading
    ``meta`` line.

    Args:
        interval: simulated seconds between samples.
        horizon: last simulated time to sample (required to stop the
            self-rescheduling event chain on loops run without ``until``).
    """

    def __init__(self, interval: float = 1.0, horizon: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.horizon = horizon
        self.rows: List[Dict[str, Any]] = []
        self._loop = None
        self._engine = None

    def attach(self, loop: Any, engine: Any) -> "MetricsSampler":
        """Arm the sampler on ``loop``, observing ``engine``."""
        self._loop = loop
        self._engine = engine
        loop.schedule(loop.now, self._sample)
        return self

    def _sample(self) -> None:
        loop, engine = self._loop, self._engine
        now = loop.now
        row: Dict[str, Any] = {
            "type": "sample",
            "t": round(now, 6),
            "waiting": engine.num_waiting,
            "running": engine.num_running,
            "finished": len(engine.metrics),
            "failed": len(engine.metrics.failures),
            "iterations": engine.iterations,
        }
        manager = getattr(engine, "manager", None)
        if manager is not None:
            row["kv_gpu_resident_tokens"] = manager.gpu_resident_tokens
            row["kv_cpu_used_tokens"] = manager.cpu_used_tokens
            if manager.disk_capacity_tokens > 0:
                row["kv_disk_used_tokens"] = manager.disk_used_tokens
        hist = engine.metrics.hist
        if hist.enabled:
            for name in ("ttft_seconds", "tbt_seconds", "queue_wait_seconds"):
                found = hist.get(name)
                if found is not None and found.count:
                    row[f"{name}_p99"] = round(found.p99, 9)
                    row[f"{name}_count"] = found.count
        self.rows.append(row)
        next_t = now + self.interval
        if self.horizon is None or next_t <= self.horizon:
            loop.schedule(next_t, self._sample)

    def write_jsonl(self, target: _PathOrFile) -> int:
        """Write sampled rows as JSON Lines; returns the line count."""
        records: List[Dict[str, Any]] = [
            {
                "type": "meta",
                "version": SCHEMA_VERSION,
                "format": "repro-metrics-jsonl",
                "interval": self.interval,
                "horizon": self.horizon,
            }
        ]
        records.extend(self.rows)
        if hasattr(target, "write"):
            for record in records:
                target.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            with open(target, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)
