"""Wall-clock stage accounting (``repro.obs.walltime``).

:class:`StageTimings` measures *real* elapsed seconds with
``time.perf_counter`` — unlike everything in the simulation layers, which
runs on the modeled clock.  It therefore lives in ``repro.obs``: the
observability and bench layers are the only packages permitted to touch
the wall clock (``repro lint`` rule RPR001 enforces that the ``sim`` /
``core`` / ``serving`` / ``kvcache`` / ``gpu`` trees stay wall-clock
pure, which is what keeps seeded runs bit-reproducible).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["StageTimings"]


@dataclass
class StageTimings:
    """Wall-clock accumulator for named serving stages.

    Used by the performance harness (``repro bench``) to attribute real
    elapsed time to pipeline stages (``prefill``, ``decode``, ``swap``,
    ...) across repeated runs.  Unlike the simulation metrics, these are
    measured seconds, not modelled ones.

    Usage::

        timings = StageTimings()
        with timings.stage("decode"):
            model.forward(batch)
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def stage(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Mean seconds per recorded occurrence of ``name``.

        A stage that was never recorded has spent no time: returns 0.0
        rather than raising on the missing key, so report code can probe
        optional stages (``swap``, ``recompute``) unconditionally.
        """
        count = self.counts.get(name, 0)
        if count == 0:
            return 0.0
        return self.totals[name] / count

    def as_dict(self) -> Dict[str, float]:
        """Total seconds per stage, stage names sorted."""
        return {name: self.totals[name] for name in sorted(self.totals)}


class _StageContext:
    def __init__(self, timings: StageTimings, name: str) -> None:
        self._timings = timings
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timings.add(self._name, time.perf_counter() - self._start)
