"""Per-request flight recorder + SLO capture policy (``repro.obs.flight``).

Tail outliers must be *explainable*, not just countable: the flight
recorder keeps a bounded ring of lifecycle events per in-flight request
(``admit``, ``batch_join``, ``suspend``, ``swap_out``/``swap_in`` with a
``tier`` attribute, ``recompute``, ``retry``, ``fault``, ``abort``,
``finish``).  When a request completes, its ring is popped; if the
request violated a configured TTFT/TBT SLO — or failed — the full event
timeline is captured for the slow-request dump.

Accounting is exact even though the rings are bounded: a separate
monotonic ``event_counts`` ledger is bumped on every record, so flight
totals reconcile assert-equal with the engine/PCIe/NVMe counters
(``tests/obs/test_slo_reconciliation.py``), regardless of ring evictions.

The :class:`NullFlightRecorder` singleton mirrors the null-tracer
contract: allocation-free no-ops, with call sites guarding on
:attr:`NullFlightRecorder.enabled`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, IO, List, Optional, Tuple, Union

__all__ = [
    "FlightEvent",
    "FlightRecorder",
    "NULL_FLIGHT",
    "NullFlightRecorder",
    "SloConfig",
]

_PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


@dataclass(frozen=True)
class SloConfig:
    """Service-level objectives evaluated at request completion.

    Attributes:
        ttft: max acceptable time-to-first-token in seconds (``None``
            disables the TTFT check).
        tbt: max acceptable *mean* time-between-tokens in seconds
            (``None`` disables the TBT check).
    """

    ttft: Optional[float] = None
    tbt: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ttft is not None and self.ttft <= 0:
            raise ValueError(f"slo ttft must be positive, got {self.ttft}")
        if self.tbt is not None and self.tbt <= 0:
            raise ValueError(f"slo tbt must be positive, got {self.tbt}")

    @property
    def armed(self) -> bool:
        return self.ttft is not None or self.tbt is not None

    def violations(self, ttft: float, mean_tbt: float) -> List[str]:
        """Names of the objectives ``(ttft, mean_tbt)`` violates."""
        out: List[str] = []
        if self.ttft is not None and ttft > self.ttft:
            out.append("ttft")
        if self.tbt is not None and mean_tbt > self.tbt:
            out.append("tbt")
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {"ttft": self.ttft, "tbt": self.tbt}


class FlightEvent:
    """One lifecycle event: ``(t, event, attrs)``; immutable by contract."""

    __slots__ = ("t", "event", "attrs")

    def __init__(self, t: float, event: str, attrs: Dict[str, Any]) -> None:
        self.t = t
        self.event = event
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t": round(self.t, 9), "event": self.event}
        if self.attrs:
            out.update(self.attrs)
        return out

    def __repr__(self) -> str:
        return f"FlightEvent({self.t:.6f}, {self.event!r}, {self.attrs})"


class NullFlightRecorder:
    """Disabled flight recorder: every operation is an allocation-free
    no-op; sites additionally guard on :attr:`enabled`."""

    enabled = False

    def record(
        self, request_id: int, event: str, t: float, count: int = 1, **attrs: Any
    ) -> None:
        return None

    def finish(self, request_id: int) -> List[FlightEvent]:
        return []

    def capture(
        self,
        request_id: int,
        reason: str,
        t: float,
        events: Optional[List[FlightEvent]] = None,
        **attrs: Any,
    ) -> None:
        return None

    @property
    def event_counts(self) -> Dict[str, int]:
        return {}

    @property
    def captures(self) -> List[Dict[str, Any]]:
        return []

    def event_count(self, event: str, **attrs: str) -> int:
        return 0

    def dump_captures(self, target: _PathOrFile) -> int:
        return 0


#: Process-wide shared null recorder; the default ``flight`` everywhere.
NULL_FLIGHT = NullFlightRecorder()


class FlightRecorder(NullFlightRecorder):
    """Bounded per-request event rings with an exact event-count ledger.

    Args:
        ring_capacity: events retained per in-flight request; older events
            roll off (the count ledger still sees them).
        max_captures: slow/failed timelines retained; older captures roll
            off with ``dropped_captures`` keeping the overflow count.
    """

    enabled = True

    def __init__(self, ring_capacity: int = 64, max_captures: int = 512) -> None:
        if ring_capacity <= 0:
            raise ValueError(f"ring_capacity must be positive, got {ring_capacity}")
        if max_captures <= 0:
            raise ValueError(f"max_captures must be positive, got {max_captures}")
        self.ring_capacity = ring_capacity
        self.max_captures = max_captures
        self._rings: Dict[int, Deque[FlightEvent]] = {}
        self._counts: Dict[str, int] = {}
        self._captures: Deque[Dict[str, Any]] = deque(maxlen=max_captures)
        self.dropped_captures = 0

    # -- recording -----------------------------------------------------

    @staticmethod
    def _count_key(event: str, attrs: Dict[str, Any]) -> str:
        """Ledger key: ``event`` or ``event.tier`` when tier-attributed."""
        tier = attrs.get("tier")
        return f"{event}.{tier}" if tier is not None else event

    def record(
        self, request_id: int, event: str, t: float, count: int = 1, **attrs: Any
    ) -> None:
        """Append one event to the request's ring.

        ``count`` feeds the exact ledger (e.g. a retry burst records one
        ring event carrying ``count=3`` but bumps the ledger by 3, so
        ledger totals still reconcile with
        :class:`~repro.faults.FaultCounters`).
        """
        ring = self._rings.get(request_id)
        if ring is None:
            ring = deque(maxlen=self.ring_capacity)
            self._rings[request_id] = ring
        ring.append(FlightEvent(t, event, attrs))
        key = self._count_key(event, attrs)
        self._counts[key] = self._counts.get(key, 0) + count

    def finish(self, request_id: int) -> List[FlightEvent]:
        """Pop and return the request's timeline (empty if unknown)."""
        ring = self._rings.pop(request_id, None)
        return list(ring) if ring is not None else []

    # -- capture policy ------------------------------------------------

    def capture(
        self,
        request_id: int,
        reason: str,
        t: float,
        events: Optional[List[FlightEvent]] = None,
        **attrs: Any,
    ) -> None:
        """Retain a full timeline for a slow or failed request.

        ``events`` is the already-popped timeline from :meth:`finish`;
        when omitted, the still-live ring is snapshotted (and left live).
        """
        if events is None:
            ring = self._rings.get(request_id)
            events = list(ring) if ring is not None else []
        if len(self._captures) == self._captures.maxlen:
            self.dropped_captures += 1
        entry: Dict[str, Any] = {
            "request_id": request_id,
            "reason": reason,
            "t": round(t, 9),
            "events": [e.as_dict() for e in events],
        }
        entry.update(attrs)
        self._captures.append(entry)

    # -- read API ------------------------------------------------------

    @property
    def event_counts(self) -> Dict[str, int]:
        """Exact monotonic totals per event key (survives ring bounds)."""
        return dict(self._counts)

    def event_count(self, event: str, **attrs: str) -> int:
        return self._counts.get(self._count_key(event, attrs), 0)

    @property
    def captures(self) -> List[Dict[str, Any]]:
        return list(self._captures)

    @property
    def in_flight(self) -> int:
        """Requests with a live (unfinished) ring."""
        return len(self._rings)

    def captured_request_ids(self) -> List[int]:
        return [c["request_id"] for c in self._captures]

    def dump_captures(self, target: _PathOrFile) -> int:
        """Write retained timelines as JSONL; returns the line count."""
        lines = [json.dumps(entry, sort_keys=True) for entry in self._captures]
        if hasattr(target, "write"):
            for line in lines:
                target.write(line + "\n")
        else:
            with open(target, "w", encoding="utf-8") as fh:
                for line in lines:
                    fh.write(line + "\n")
        return len(lines)

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        total = sum(self._counts.values())
        return (
            f"FlightRecorder(in_flight={len(self._rings)}, events={total}, "
            f"captures={len(self._captures)})"
        )
