"""Low-overhead hierarchical tracer with typed counters and gauges.

Design constraints (see ARCHITECTURE.md §9):

- **Dual clocks.**  Every span/instant/gauge carries a *primary* timestamp
  ``t`` — simulated seconds in the discrete-event layer, a coarse logical
  clock in the functional server — and a *wall* timestamp measured with
  ``time.perf_counter()`` relative to tracer creation.  Exporters pick
  either axis.
- **Asynchronous spans.**  The discrete-event engines open a span in one
  callback and close it in another, so the core API is explicit
  :meth:`Tracer.begin` / :meth:`Tracer.end` (parent passed explicitly, or
  none).  Synchronous code uses the :meth:`Tracer.span` context manager,
  which maintains a nesting stack and parents automatically.  Spans whose
  interval is already known (a simulated iteration) are emitted in one
  shot with :meth:`Tracer.complete`.
- **Free when off.**  :class:`NullTracer` implements the full interface as
  no-ops that allocate nothing, and instrumentation sites that would
  otherwise *compute* payload values guard on :attr:`NullTracer.enabled`.
  A run with the null tracer executes byte-identical work to an
  uninstrumented build (asserted by ``tests/obs``).
- **Determinism.**  Span ids are sequential in creation order; two runs of
  the same seeded workload produce identical span/event sequences on the
  primary clock (wall stamps naturally differ).
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class Span:
    """One finished-or-open span.  Mutable while open; treated as frozen
    after :meth:`Tracer.end` stamps ``t1``/``wall1``."""

    __slots__ = ("id", "name", "parent", "t0", "t1", "wall0", "wall1", "attrs")

    def __init__(
        self,
        span_id: int,
        name: str,
        parent: Optional[int],
        t0: float,
        wall0: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.id = span_id
        self.name = name
        self.parent = parent
        self.t0 = t0
        self.t1: Optional[float] = None
        self.wall0 = wall0
        self.wall1: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Primary-clock duration (0.0 while the span is still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    @property
    def wall_duration(self) -> float:
        return 0.0 if self.wall1 is None else self.wall1 - self.wall0

    def __repr__(self) -> str:
        state = "open" if self.t1 is None else f"dur={self.duration:.6f}"
        return f"Span({self.id}, {self.name!r}, {state})"


class _NullSpanContext:
    """Shared, stateless no-op context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is an allocation-free no-op.

    Instrumentation sites that would compute payload values (token sums,
    fragmentation scans) must additionally guard on :attr:`enabled` so the
    disabled path does no work at all.
    """

    enabled = False

    def begin(
        self,
        name: str,
        t: float = 0.0,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        return 0

    def end(self, span_id: int, t: float = 0.0, **attrs: Any) -> None:
        return None

    def complete(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        return 0

    def span(self, name: str, t: float = 0.0, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def instant(self, name: str, t: float = 0.0, **attrs: Any) -> None:
        return None

    def count(self, name: str, delta: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float, t: float = 0.0) -> None:
        return None

    def close_open(self, t: float = 0.0) -> None:
        return None


#: Process-wide shared null tracer; the default ``tracer`` everywhere.
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_t", "_attrs", "_span_id")

    def __init__(
        self, tracer: "Tracer", name: str, t: Optional[float], attrs: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._t = t
        self._attrs = attrs
        self._span_id = 0

    def __enter__(self) -> int:
        tr = self._tracer
        parent = tr._stack[-1] if tr._stack else None
        self._span_id = tr.begin(
            self._name, t=tr._resolve_time(self._t), parent=parent, **self._attrs
        )
        tr._stack.append(self._span_id)
        return self._span_id

    def __exit__(self, *exc: object) -> bool:
        tr = self._tracer
        tr._stack.pop()
        tr.end(self._span_id, t=tr._resolve_time(self._t))
        return False


class Tracer(NullTracer):
    """Recording tracer.

    Args:
        clock: optional callable returning the primary-clock time; used
            when an instrumentation site does not pass ``t`` explicitly
            (the wall-clock-driven bench harness passes
            ``time.perf_counter``).  Without a clock, omitted timestamps
            default to the last explicitly-seen time, so synchronous
            wrappers still nest correctly on the primary axis.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self._wall_origin = time.perf_counter()
        self._ids = itertools.count(1)
        self._spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._stack: List[int] = []
        self._instants: List[Tuple[str, float, float, Optional[int], Dict[str, Any]]] = []
        self._counters: Dict[str, float] = {}
        self._gauges: List[Tuple[str, float, float, float]] = []
        self._last_time = 0.0

    # -- clock helpers -------------------------------------------------

    def _wall(self) -> float:
        return time.perf_counter() - self._wall_origin

    def _resolve_time(self, t: Optional[float]) -> float:
        if t is not None:
            self._last_time = t
            return t
        if self._clock is not None:
            now = self._clock()
            self._last_time = now
            return now
        return self._last_time

    # -- spans ---------------------------------------------------------

    def begin(
        self,
        name: str,
        t: Optional[float] = None,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        span = Span(
            next(self._ids), name, parent, self._resolve_time(t), self._wall(), attrs
        )
        self._spans.append(span)
        self._open[span.id] = span
        return span.id

    def end(self, span_id: int, t: Optional[float] = None, **attrs: Any) -> None:
        span = self._open.pop(span_id, None)
        if span is None:
            return  # already closed (or a null handle): tolerate, don't raise
        span.t1 = self._resolve_time(t)
        span.wall1 = self._wall()
        if attrs:
            span.attrs.update(attrs)

    def complete(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        span = Span(next(self._ids), name, parent, t0, self._wall(), attrs)
        span.t1 = t1
        span.wall1 = span.wall0
        self._last_time = t1
        self._spans.append(span)
        return span.id

    def span(self, name: str, t: Optional[float] = None, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, name, t, attrs)

    def close_open(self, t: Optional[float] = None) -> None:
        """Close every still-open span (e.g. requests in flight when the
        simulation horizon is reached) at ``t``."""
        for span_id in sorted(self._open):
            self.end(span_id, t=t, truncated=True)

    # -- instants, counters, gauges -------------------------------------

    def instant(self, name: str, t: Optional[float] = None, **attrs: Any) -> None:
        parent = self._stack[-1] if self._stack else None
        self._instants.append(
            (name, self._resolve_time(t), self._wall(), parent, attrs)
        )

    def count(self, name: str, delta: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float, t: Optional[float] = None) -> None:
        self._gauges.append((name, self._resolve_time(t), self._wall(), float(value)))

    # -- read API (exporters & tests) -----------------------------------

    @property
    def spans(self) -> List[Span]:
        """All spans in creation order (open spans have ``t1 is None``)."""
        return list(self._spans)

    @property
    def instants(self) -> List[Tuple[str, float, float, Optional[int], Dict[str, Any]]]:
        """``(name, t, wall, parent, attrs)`` tuples in record order."""
        return list(self._instants)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauge_samples(self) -> List[Tuple[str, float, float, float]]:
        """``(name, t, wall, value)`` samples in record order."""
        return list(self._gauges)

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def __len__(self) -> int:
        return len(self._spans) + len(self._instants)

    def __bool__(self) -> bool:
        """Always truthy: an *empty* tracer is still an armed tracer
        (``tracer or NULL_TRACER`` must not discard it)."""
        return True

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self._spans)}, instants={len(self._instants)}, "
            f"counters={len(self._counters)}, gauges={len(self._gauges)})"
        )
