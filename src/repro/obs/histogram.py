"""Streaming log-bucketed latency histograms (``repro.obs.histogram``).

The SLO layer needs percentiles over millions of samples without keeping
the samples: each :class:`Histogram` maps a value to a geometric bucket in
O(1) (one ``math.log``), keeps **exact integer counts per bucket** in a
sparse dict, and tracks exact ``count`` / ``sum`` / ``min`` / ``max``.
Quantiles are read from the bucket upper bounds, so a reported p99 is an
upper bound at most one bucket width (~19% with the default base) above
the true order statistic — and ``max`` is always exact.

Design constraints mirror the tracer (ARCHITECTURE.md §9):

- **Dual-clock aware.**  A histogram is stamped with the clock axis its
  samples were measured on (``"sim"`` for discrete-event seconds,
  ``"wall"`` for ``time.perf_counter`` seconds) so exporters can label
  the axis; the two are never mixed in one histogram.
- **Mergeable.**  Two histograms with the same bucketing configuration
  merge by adding bucket counts — rate sweeps merge per-point histograms
  into one distribution without re-recording.
- **Free when off.**  :class:`NullHistogramSet` implements the registry
  interface as allocation-free no-ops, and instrumentation sites guard on
  :attr:`NullHistogramSet.enabled` exactly like tracer sites, so the
  disabled path does zero work (asserted by ``tests/obs``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Histogram",
    "HistogramSet",
    "NULL_HISTOGRAM",
    "NULL_HISTOGRAMS",
    "NullHistogram",
    "NullHistogramSet",
]

#: Default geometric growth per bucket: 2**(1/4) ≈ 1.189, i.e. ~19% wide
#: buckets — 4 buckets per octave, ~80 buckets across 1 µs .. 1000 s.
DEFAULT_BASE = 2.0 ** 0.25

#: Default smallest resolvable value; everything at or below it lands in
#: the underflow bucket whose upper bound is ``min_value``.
DEFAULT_MIN_VALUE = 1e-6

_LabelKey = Tuple[Tuple[str, str], ...]


class Histogram:
    """One streaming distribution with exact per-bucket counts.

    Bucket ``i`` (``i >= 1``) covers ``(min_value * base**(i-1),
    min_value * base**i]``; bucket ``0`` is the underflow bucket covering
    ``(-inf, min_value]`` (durations are never negative, but a defensive
    clamp keeps bad inputs from throwing in ``math.log``).
    """

    __slots__ = (
        "name",
        "labels",
        "clock",
        "min_value",
        "base",
        "_log_base",
        "_buckets",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str = "",
        labels: Optional[Dict[str, str]] = None,
        clock: str = "sim",
        min_value: float = DEFAULT_MIN_VALUE,
        base: float = DEFAULT_BASE,
    ) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if base <= 1.0:
            raise ValueError(f"base must exceed 1.0, got {base}")
        if clock not in ("sim", "wall"):
            raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.clock = clock
        self.min_value = float(min_value)
        self.base = float(base)
        self._log_base = math.log(self.base)
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording -----------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        # ceil of log_base(value / min_value); float fuzz nudged so exact
        # bucket boundaries land in the *lower* bucket (bounds inclusive).
        raw = math.log(value / self.min_value) / self._log_base
        idx = math.ceil(raw - 1e-9)
        return max(1, idx)

    def record(self, value: float) -> None:
        """O(1): one log, one dict bump, four scalar updates."""
        value = float(value)
        idx = self._index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # -- read API ------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        """Exact smallest recorded value (0.0 when empty)."""
        return 0.0 if self._count == 0 else self._min

    @property
    def max(self) -> float:
        """Exact largest recorded value (0.0 when empty)."""
        return 0.0 if self._count == 0 else self._max

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_upper(self, index: int) -> float:
        """Upper bound of bucket ``index`` on the value axis."""
        if index <= 0:
            return self.min_value
        return self.min_value * self.base ** index

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, exact_count)`` pairs, ascending, only non-empty
        buckets."""
        return [
            (self.bucket_upper(i), self._buckets[i])
            for i in sorted(self._buckets)
        ]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ascending."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, count in self.buckets():
            running += count
            out.append((upper, running))
        return out

    def percentile(self, q: float) -> float:
        """Value bound below which at least ``q`` percent of samples fall.

        Returns the bucket upper bound containing the order statistic,
        clamped to the exact observed ``max`` (so ``percentile(100) ==
        max``).  Empty histograms report 0.0.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        rank = math.ceil(self._count * q / 100.0)
        rank = max(1, rank)
        running = 0
        for index in sorted(self._buckets):
            running += self._buckets[index]
            if running >= rank:
                return min(self.bucket_upper(index), self._max)
        return self._max  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        return self.percentile(90.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    # -- merge & export ------------------------------------------------

    def compatible(self, other: "Histogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.base == other.base
            and self.clock == other.clock
        )

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s buckets into this histogram (exact: merged
        counts equal the counts of recording every sample into one)."""
        if not self.compatible(other):
            raise ValueError(
                f"cannot merge histogram {other.name!r} "
                f"(min_value/base/clock differ from {self.name!r})"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._count += other._count
        self._sum += other._sum
        if other._count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (used by the JSONL sampler and tests)."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "clock": self.clock,
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "buckets": [[upper, count] for upper, count in self.buckets()],
        }

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        lbl = "".join(f", {k}={v}" for k, v in sorted(self.labels.items()))
        return (
            f"Histogram({self.name!r}{lbl}, n={self._count}, "
            f"p50={self.p50:.6g}, p99={self.p99:.6g}, max={self.max:.6g})"
        )


class NullHistogram:
    """Allocation-free no-op histogram (shared singleton)."""

    __slots__ = ()

    enabled = False
    name = ""
    labels: Dict[str, str] = {}
    clock = "sim"
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0
    p50 = 0.0
    p90 = 0.0
    p99 = 0.0

    def record(self, value: float) -> None:
        return None

    def record_many(self, values: Iterable[float]) -> None:
        return None

    def buckets(self) -> List[Tuple[float, int]]:
        return []

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        return []

    def percentile(self, q: float) -> float:
        return 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"name": "", "labels": {}, "count": 0}

    def __len__(self) -> int:
        return 0


NULL_HISTOGRAM = NullHistogram()


class NullHistogramSet:
    """The disabled histogram registry: every operation is a no-op.

    Instrumentation sites that would compute sample values (durations,
    token sums) must additionally guard on :attr:`enabled`, mirroring the
    :class:`~repro.obs.tracer.NullTracer` contract.
    """

    enabled = False

    def hist(
        self, name: str, clock: str = "sim", **labels: str
    ) -> Union[NullHistogram, Histogram]:
        return NULL_HISTOGRAM

    def get(self, name: str, **labels: str) -> Optional[Histogram]:
        return None

    def all(self) -> List[Histogram]:
        return []

    def merge_from(self, other: "NullHistogramSet") -> None:
        """No-op; accepts any set (``HistogramSet`` subclasses this)."""
        return None

    def total_count(self, name: str) -> int:
        return 0

    def total_sum(self, name: str) -> float:
        return 0.0

    def __iter__(self) -> Iterator[Histogram]:
        return iter(())

    def __len__(self) -> int:
        return 0


#: Process-wide shared null registry; the default ``hist`` sink everywhere.
NULL_HISTOGRAMS = NullHistogramSet()


class HistogramSet(NullHistogramSet):
    """A named registry of histograms keyed by ``(name, labels)``.

    ``hist()`` is get-or-create, so instrumentation sites never need
    registration boilerplate::

        hists.hist("swap_in_seconds", tier="cpu").record(record.duration)

    All histograms created through one set share the same bucketing
    configuration, which makes every same-name histogram mergeable.
    """

    enabled = True

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        base: float = DEFAULT_BASE,
    ) -> None:
        self._min_value = min_value
        self._base = base
        self._hists: Dict[Tuple[str, _LabelKey], Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, str]) -> Tuple[str, _LabelKey]:
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def hist(self, name: str, clock: str = "sim", **labels: str) -> Histogram:
        key = self._key(name, labels)
        found = self._hists.get(key)
        if found is None:
            found = Histogram(
                name,
                labels={k: str(v) for k, v in labels.items()},
                clock=clock,
                min_value=self._min_value,
                base=self._base,
            )
            self._hists[key] = found
        return found

    def get(self, name: str, **labels: str) -> Optional[Histogram]:
        """Lookup without creating; ``None`` when never recorded."""
        return self._hists.get(self._key(name, labels))

    def all(self) -> List[Histogram]:
        """Every histogram, ordered by (name, labels) for stable export."""
        return [self._hists[key] for key in sorted(self._hists)]

    def named(self, name: str) -> List[Histogram]:
        """All label variants of ``name`` (e.g. one per tier)."""
        return [h for h in self.all() if h.name == name]

    def total_count(self, name: str) -> int:
        """Exact sample count across all label variants of ``name``."""
        return sum(h.count for h in self.named(name))

    def total_sum(self, name: str) -> float:
        """Exact value sum across all label variants of ``name``."""
        return sum(h.sum for h in self.named(name))

    def merge_from(self, other: "NullHistogramSet") -> None:
        """Merge every histogram of ``other`` into this set (creating
        missing ones); exact in counts and sums."""
        if not getattr(other, "enabled", False):
            return
        for hist in other.all():
            mine = self.hist(hist.name, clock=hist.clock, **hist.labels)
            mine.merge(hist)

    def __iter__(self) -> Iterator[Histogram]:
        return iter(self.all())

    def __len__(self) -> int:
        return len(self._hists)

    def __bool__(self) -> bool:
        """Always truthy: an empty set is still an armed sink."""
        return True

    def __repr__(self) -> str:
        total = sum(h.count for h in self._hists.values())
        return f"HistogramSet(hists={len(self._hists)}, samples={total})"
