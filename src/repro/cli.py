"""Command-line interface.

Run as ``python -m repro <command>``:

- ``chat``      — interactive stateful chat against the functional server;
- ``simulate``  — one serving-simulation run, printing latency/throughput
  and cache statistics;
- ``sweep``     — a latency–throughput curve for one system;
- ``figures``   — the fast analytical figures (3, 4, 12) and Table 2;
- ``report``    — regenerate EXPERIMENTS.md (slow: full serving sweeps);
- ``bench``     — the kernel/forward-pass performance harness: times the
  vectorized layer against the per-request reference kernels, writes
  ``BENCH_kernels.json``, exits non-zero if outputs diverge;
- ``trace``     — run an experiment with full telemetry and export the
  trace (Chrome trace JSON, JSONL event log, text report);
- ``metrics``   — one serving run with the SLO observability layer armed:
  writes a Prometheus text snapshot (self-reconciling against the
  engine/PCIe/NVMe ledgers), a periodic JSONL metrics stream and the
  flight-recorder captures of every SLO-violating or failed request.

``simulate`` and ``bench`` also accept ``--trace-out DIR`` to record the
same telemetry alongside their normal output; ``simulate`` / ``sweep`` /
``chat`` accept ``--slo-ttft`` / ``--slo-tbt`` / ``--metrics-out`` to arm
the SLO layer, and ``bench --check-history`` compares the run against the
``BENCH_kernels.json`` history ledger (non-gating regression watchdog).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.model.config import PAPER_MODELS, ModelConfig


def _model(name: str) -> ModelConfig:
    lookup = {cfg.name.lower().replace(" ", ""): cfg for cfg in PAPER_MODELS.values()}
    key = name.lower().replace(" ", "").replace("_", "-")
    if key not in lookup:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(lookup)}"
        )
    return lookup[key]


def _fault_plan(args: argparse.Namespace):
    """Build a FaultPlan from ``--fault-seed`` / ``--fault-rate`` (or None)."""
    if getattr(args, "fault_seed", None) is None:
        return None
    from repro.faults import SITES, FaultPlan, FaultSite

    rate = args.fault_rate
    if not 0.0 <= rate <= 1.0:
        raise SystemExit(f"--fault-rate must be in [0, 1], got {rate}")
    # Every declared site is armed, scaled by its registry rate_scale
    # (corruption-style sites run quieter than transfer-style sites).
    # Disk-tier sites are only drawn when --disk-tokens configures a
    # disk tier, harmless otherwise.
    return FaultPlan(
        seed=args.fault_seed,
        rates={
            FaultSite(name): rate * spec.rate_scale
            for name, spec in SITES.items()
        },
    )


def _engine_factory(system: str, config: ModelConfig, fault_plan=None,
                    disk_tokens: int = 0, decode_sched: str = "fifo",
                    packing_cache: bool = True, backend: str = "paged",
                    backend_explicit: bool = False):
    from repro.core.engine import PensieveEngine
    from repro.gpu.device import A100_80GB
    from repro.serving.stateless import make_tensorrt_llm, make_vllm

    system = system.lower()
    stateful = ("pensieve", "pensieve-gpu", "pensieve-gpu-cache")
    if fault_plan is not None and system not in stateful:
        raise SystemExit(
            "--fault-seed requires a stateful system (pensieve, pensieve-gpu)"
        )
    if disk_tokens and system not in stateful:
        raise SystemExit(
            "--disk-tokens requires a stateful system (pensieve, pensieve-gpu)"
        )
    if decode_sched != "fifo" and system not in stateful:
        raise SystemExit(
            "--decode-sched requires a stateful system (pensieve, pensieve-gpu)"
        )
    if backend != "paged" and system not in stateful:
        if backend_explicit:
            raise SystemExit(
                "--backend requires a stateful system (pensieve, pensieve-gpu)"
            )
        # REPRO_BACKEND is a process-wide default; stateless baselines
        # model no KV backend, so it quietly does not apply to them.
        backend = "paged"
    if system == "vllm":
        return lambda loop: make_vllm(loop, config, A100_80GB)
    if system in ("trt", "tensorrt", "tensorrt-llm"):
        return lambda loop: make_tensorrt_llm(loop, config, A100_80GB)
    if system == "pensieve":
        return lambda loop: PensieveEngine(
            loop, config, A100_80GB, fault_plan=fault_plan,
            disk_cache_tokens=disk_tokens, decode_sched=decode_sched,
            packing_cache=packing_cache, backend=backend,
        )
    if system in ("pensieve-gpu", "pensieve-gpu-cache"):
        return lambda loop: PensieveEngine(
            loop, config, A100_80GB, cpu_cache_tokens=0,
            fault_plan=fault_plan, disk_cache_tokens=disk_tokens,
            decode_sched=decode_sched, packing_cache=packing_cache,
            backend=backend,
        )
    raise SystemExit(
        f"unknown system {system!r}; choose from vllm, tensorrt-llm, "
        "pensieve, pensieve-gpu"
    )


def _make_tracer(args: argparse.Namespace):
    """A recording tracer when ``--trace-out`` was given, else None."""
    if not getattr(args, "trace_out", None):
        return None
    from repro.obs import Tracer

    return Tracer()


def _write_trace(tracer, outdir: str, prefix: str = "trace") -> None:
    from repro.obs import write_trace_artifacts

    paths = write_trace_artifacts(tracer, outdir, prefix=prefix)
    for kind in sorted(paths):
        print(f"trace [{kind:6s}]: {paths[kind]}")


def _slo_config(args: argparse.Namespace):
    """A SloConfig when any SLO/metrics flag was given, else None.

    ``--metrics-out`` alone arms the metrics layer with no objectives
    (histograms and the flight recorder record; nothing can violate).
    """
    ttft = getattr(args, "slo_ttft", None)
    tbt = getattr(args, "slo_tbt", None)
    if ttft is None and tbt is None and not getattr(args, "metrics_out", None):
        return None
    from repro.obs import SloConfig

    return SloConfig(ttft=ttft, tbt=tbt)


def _make_sampler(args: argparse.Namespace):
    """A MetricsSampler bounded by the run duration (``--metrics-out``
    runs only; ~100 rows regardless of duration)."""
    if not getattr(args, "metrics_out", None):
        return None
    from repro.obs import MetricsSampler

    duration = getattr(args, "duration", 0.0) or 0.0
    return MetricsSampler(
        interval=max(duration / 100.0, 1e-3), horizon=duration or None
    )


def _print_slo_summary(collector) -> None:
    """Attribution table + SLO/capture counts for an armed collector."""
    from repro.obs import tier_attribution_table

    table = tier_attribution_table(
        collector.hist, title="-- latency attribution (sim seconds) --"
    )
    if table:
        print(table)
    report = collector.slo_report()
    if report["slo"] is not None:
        print(f"slo           : {report['slo']}")
        print(
            f"slo violations: {report['violations_by_kind']} "
            f"({report['violated_requests']} requests)"
        )
    print(
        f"flight capture: {report['captures']} timelines "
        f"({report['dropped_captures']} dropped, "
        f"{report['failed_requests']} failed requests)"
    )


def _write_metrics(engine, outdir: str, sampler=None,
                   prefix: str = "metrics") -> None:
    """Write the metrics artifacts: Prometheus snapshot (embedding the
    ledger counters so it is self-reconciling), sampler JSONL, and the
    flight-recorder capture dump."""
    import os

    from repro.obs import ledger_counters, prometheus_snapshot

    os.makedirs(outdir, exist_ok=True)
    prom_path = os.path.join(outdir, f"{prefix}.prom")
    with open(prom_path, "w", encoding="utf-8") as fh:
        fh.write(
            prometheus_snapshot(
                collector=engine.metrics, counters=ledger_counters(engine)
            )
        )
    print(f"metrics [prom   ]: {prom_path}")
    if sampler is not None:
        jsonl_path = os.path.join(outdir, f"{prefix}.jsonl")
        sampler.write_jsonl(jsonl_path)
        print(f"metrics [jsonl  ]: {jsonl_path}")
    flight = engine.metrics.flight
    if flight.enabled:
        cap_path = os.path.join(outdir, f"{prefix}_captures.jsonl")
        flight.dump_captures(cap_path)
        print(f"metrics [flight ]: {cap_path}")


def cmd_chat(args: argparse.Namespace) -> int:
    import time as _time

    from repro.core.server import StatefulChatServer
    from repro.model.config import tiny_llama_config, tiny_opt_config

    config = tiny_llama_config() if args.arch == "llama" else tiny_opt_config()
    server = StatefulChatServer(
        config,
        gpu_capacity_tokens=args.gpu_tokens,
        cpu_capacity_tokens=args.cpu_tokens,
        disk_capacity_tokens=args.disk_tokens,
        seed=args.seed,
        decode_sched=args.decode_sched,
        packing_cache=args.packing_cache == "on",
        backend=args.backend,
    )
    if args.system_prompt:
        server.set_system_prompt(args.system_prompt)

    # Chat is a real (functional) server, so SLO metrics run on the WALL
    # clock: --slo-ttft bounds the whole turn, --slo-tbt the per-token
    # mean over the turn's max_new_tokens.
    slo = _slo_config(args)
    hist = None
    violations = {"ttft": 0, "tbt": 0}
    if slo is not None:
        from repro.obs import HistogramSet

        hist = HistogramSet()

    def _finish() -> int:
        if hist is None:
            return 0
        from repro.obs import tier_attribution_table

        table = tier_attribution_table(
            hist, title="-- chat turn latency (wall seconds) --"
        )
        if table:
            print(table)
        if slo.armed:
            print(f"slo violations: {violations}")
        if args.metrics_out:
            import os

            from repro.obs import prometheus_snapshot

            os.makedirs(args.metrics_out, exist_ok=True)
            prom_path = os.path.join(args.metrics_out, "chat_metrics.prom")
            counters = {
                f"slo_violations.{kind}": float(count)
                for kind, count in violations.items()
                if count
            }
            with open(prom_path, "w", encoding="utf-8") as fh:
                fh.write(prometheus_snapshot(hists=hist, counters=counters))
            print(f"metrics [prom   ]: {prom_path}")
        return 0

    print(
        "Stateful chat demo (random-weight tiny model; replies are noise,\n"
        "the cache behaviour is real).  Commands: /stats, /quit.\n"
    )
    conv_id = 0
    while True:
        try:
            line = input("you> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return _finish()
        if not line:
            continue
        if line == "/quit":
            return _finish()
        if line == "/stats":
            print(f"  context: {server.context_length(conv_id)} tokens")
            print(f"  placement: {server.placement(conv_id)}")
            print(f"  cache stats: {server.manager.stats}")
            continue
        start = _time.perf_counter()
        reply = server.chat_text(conv_id, line, max_new_tokens=args.max_tokens)
        elapsed = _time.perf_counter() - start
        if hist is not None:
            hist.hist("chat_turn_seconds", clock="wall").record(elapsed)
            per_token = elapsed / max(1, args.max_tokens)
            hist.hist("chat_token_seconds", clock="wall").record(per_token)
            if slo.ttft is not None and elapsed > slo.ttft:
                violations["ttft"] += 1
            if slo.tbt is not None and per_token > slo.tbt:
                violations["tbt"] += 1
        print(f"bot> {reply}")


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.traces import cache_summary
    from repro.experiments.common import run_serving_once
    from repro.workload.dataset import SHAREGPT, ULTRACHAT, generate_workload

    config = _model(args.model)
    dataset = ULTRACHAT if args.dataset == "ultrachat" else SHAREGPT
    conversations = generate_workload(
        dataset,
        request_rate=args.rate,
        duration=args.duration,
        think_time_mean=args.think_time,
        seed=args.seed,
    )
    fault_plan = _fault_plan(args)
    tracer = _make_tracer(args)
    slo = _slo_config(args)
    sampler = _make_sampler(args)
    engine, stats = run_serving_once(
        _engine_factory(args.system, config, fault_plan,
                        disk_tokens=args.disk_tokens,
                        decode_sched=args.decode_sched,
                        packing_cache=args.packing_cache == "on",
                        backend=_resolve_backend_arg(args),
                        backend_explicit=args.backend is not None),
        conversations,
        until=args.duration,
        warmup=args.duration * 0.3,
        tracer=tracer,
        slo=slo,
        sampler=sampler,
    )
    print(f"system        : {engine.name}")
    print(f"model         : {config.name} ({config.num_gpus} GPU(s))")
    print(f"workload      : {dataset.name} @ {args.rate} req/s, "
          f"{args.duration:.0f}s, think {args.think_time:.0f}s")
    for key, value in stats.as_dict().items():
        print(f"{key:22s}: {value}")
    if hasattr(engine, "manager"):
        print("cache         :", cache_summary(engine).as_dict())
    if fault_plan is not None:
        print("faults        :", engine.metrics.faults.as_dict())
        print(f"degraded      : {engine.num_failed}")
    if slo is not None:
        _print_slo_summary(engine.metrics)
    if args.metrics_out:
        _write_metrics(engine, args.metrics_out, sampler=sampler)
    if tracer is not None:
        _write_trace(tracer, args.trace_out, prefix="trace_simulate")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.common import format_curve_table, run_rate_sweep
    from repro.workload.dataset import SHAREGPT, ULTRACHAT

    config = _model(args.model)
    dataset = ULTRACHAT if args.dataset == "ultrachat" else SHAREGPT
    slo = _slo_config(args)
    hist = flight = None
    if slo is not None:
        # Shared sinks aggregate SLO metrics across every rate's engine.
        from repro.obs import FlightRecorder, HistogramSet

        hist, flight = HistogramSet(), FlightRecorder()
    points = run_rate_sweep(
        _engine_factory(args.system, config, disk_tokens=args.disk_tokens,
                        decode_sched=args.decode_sched,
                        packing_cache=args.packing_cache == "on",
                        backend=_resolve_backend_arg(args),
                        backend_explicit=args.backend is not None),
        dataset,
        rates=args.rates,
        duration=args.duration,
        think_time_mean=args.think_time,
        seed=args.seed,
        slo=slo,
        hist=hist,
        flight=flight,
    )
    print(format_curve_table(f"{args.system} / {config.name}", points))
    if hist is not None:
        from repro.obs import tier_attribution_table

        table = tier_attribution_table(
            hist,
            title="-- latency attribution, all rates (sim seconds) --",
        )
        if table:
            print()
            print(table)
    if args.metrics_out:
        import os

        from repro.obs import prometheus_snapshot

        os.makedirs(args.metrics_out, exist_ok=True)
        prom_path = os.path.join(args.metrics_out, "sweep_metrics.prom")
        counters = {
            f"flight_events.{key}": float(value)
            for key, value in flight.event_counts.items()
        }
        with open(prom_path, "w", encoding="utf-8") as fh:
            fh.write(prometheus_snapshot(hists=hist, counters=counters))
        print(f"metrics [prom   ]: {prom_path}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.fig03 import format_fig03, run_fig03
    from repro.experiments.fig04 import format_fig04, run_fig04
    from repro.experiments.fig12 import format_fig12, run_fig12
    from repro.experiments.tab02 import format_tab02, run_tab02

    print(format_fig03(run_fig03()))
    print()
    print(format_fig04(run_fig04()))
    print()
    print(format_fig12(run_fig12()))
    print()
    print(format_tab02(run_tab02()))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """One serving run with the SLO observability layer armed end to end."""
    from repro.experiments.common import run_serving_once
    from repro.obs import MetricsSampler, SloConfig, parse_prometheus
    from repro.workload.dataset import SHAREGPT, ULTRACHAT, generate_workload

    config = _model(args.model)
    dataset = ULTRACHAT if args.dataset == "ultrachat" else SHAREGPT
    conversations = generate_workload(
        dataset,
        request_rate=args.rate,
        duration=args.duration,
        think_time_mean=args.think_time,
        seed=args.seed,
    )
    slo = SloConfig(ttft=args.slo_ttft, tbt=args.slo_tbt)
    sampler = MetricsSampler(
        interval=max(args.duration / 100.0, 1e-3), horizon=args.duration
    )
    engine, stats = run_serving_once(
        _engine_factory(args.system, config, _fault_plan(args),
                        disk_tokens=args.disk_tokens),
        conversations,
        until=args.duration,
        warmup=args.duration * 0.3,
        slo=slo,
        sampler=sampler,
    )
    print(f"system        : {engine.name}")
    print(f"workload      : {dataset.name} @ {args.rate} req/s, "
          f"{args.duration:.0f}s")
    for key, value in stats.as_dict().items():
        print(f"{key:22s}: {value}")
    _print_slo_summary(engine.metrics)
    _write_metrics(engine, args.out, sampler=sampler)
    # Round-trip the snapshot as a validity check (CI metrics-smoke).
    import os

    prom_path = os.path.join(args.out, "metrics.prom")
    with open(prom_path, encoding="utf-8") as fh:
        families = parse_prometheus(fh.read())
    print(f"snapshot parses: {len(families)} metric families")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import check_thresholds, format_table, run_all, write_json

    tracer = _make_tracer(args)
    results = run_all(
        quick=args.quick, seed=args.seed, repeats=args.repeats, tracer=tracer,
        packing_cache=args.packing_cache == "on",
        decode_sched=args.decode_sched,
        backend=_resolve_backend_arg(args),
    )
    print(format_table(results))
    if args.check_history:
        # Load the ledger BEFORE write_json appends the current run, so
        # a run is never compared against itself.
        from repro.bench import (
            check_history,
            format_report,
            load_history_ledger,
            summarize,
        )

        ledger = load_history_ledger(args.output) if args.output else []
        verdicts = check_history(summarize(results), ledger)
        print()
        print(format_report(verdicts, history_len=len(ledger)))
        print("(non-gating: the watchdog never fails the build)")
    if args.output:
        write_json(results, args.output, quick=args.quick, seed=args.seed)
        print(f"\nwrote {args.output}")
    if tracer is not None:
        _write_trace(tracer, args.trace_out, prefix="trace_bench")
    if not all(x.equivalent for x in results):
        print("ERROR: vectorized kernels diverged from the reference", flush=True)
        return 1
    if args.enforce_thresholds:
        failures = check_thresholds(results)
        if failures:
            for failure in failures:
                print(f"ERROR: {failure}", flush=True)
            return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.common import run_serving_once
    from repro.obs import Tracer
    from repro.workload.dataset import SHAREGPT, ULTRACHAT, generate_workload

    tracer = Tracer()
    if args.experiment == "simulate":
        config = _model(args.model)
        dataset = ULTRACHAT if args.dataset == "ultrachat" else SHAREGPT
        conversations = generate_workload(
            dataset,
            request_rate=args.rate,
            duration=args.duration,
            think_time_mean=args.think_time,
            seed=args.seed,
        )
        engine, stats = run_serving_once(
            _engine_factory(args.system, config, None,
                            disk_tokens=args.disk_tokens),
            conversations,
            until=args.duration,
            warmup=args.duration * 0.3,
            tracer=tracer,
        )
        print(f"system        : {engine.name}")
        for key, value in stats.as_dict().items():
            print(f"{key:22s}: {value}")
    elif args.experiment == "fig13":
        from repro.experiments.fig13 import format_fig13, run_fig13

        curves = run_fig13(
            rates=tuple(args.rates), duration=args.duration,
            seed=args.seed, tracer=tracer,
        )
        print(format_fig13(curves))
    elif args.experiment == "fig15x":
        from repro.experiments.fig15x import format_fig15x, run_fig15x

        kwargs = {}
        if args.disk_tokens:
            kwargs["disk_cache_tokens"] = args.disk_tokens
        curves = run_fig15x(
            config=_model(args.model), rates=tuple(args.rates),
            duration=args.duration, seed=args.seed, tracer=tracer,
            **kwargs,
        )
        print(format_fig15x(curves))
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"unknown experiment {args.experiment!r}")
    if args.summary:
        from repro.obs import span_summary

        tracer.close_open(t=args.duration)
        print(span_summary(tracer, top=args.top))
    _write_trace(tracer, args.out, prefix=f"trace_{args.experiment}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate

    generate(args.output, duration=args.duration)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import Baseline, format_json, format_text, run_lint

    baseline = Baseline.load(args.baseline)
    result = run_lint(args.root, baseline=baseline)

    if args.write_baseline:
        Baseline.from_findings(result.errors).write(args.baseline)
        print(
            f"wrote {len(result.errors)} baseline entr(y/ies) to "
            f"{args.baseline}"
        )
        return 0

    output = (
        format_json(result)
        if args.json
        else format_text(result, verbose=args.verbose)
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(output)
    print(output, end="")
    return result.exit_code(strict=args.strict)


def _add_sched_flags(parser: argparse.ArgumentParser, default_sched: str) -> None:
    """The decode-scheduling / packing-cache knob pair.

    ``--decode-sched fifo`` is the paper-faithful arrival-order policy;
    ``page-aware`` orders decode candidates by GPU page residency and
    packing-cache row occupancy.  ``--packing-cache`` toggles the
    incremental slot-table packing cache; outputs are identical either
    way (the knobs only move work, never change results).
    """
    parser.add_argument("--decode-sched", choices=("fifo", "page-aware"),
                        default=default_sched,
                        help="decode scheduling policy: arrival order (fifo) "
                             "or GPU-page-residency order (page-aware); "
                             f"default {default_sched}")
    parser.add_argument("--packing-cache", choices=("on", "off"),
                        default="on",
                        help="incremental decode slot-table packing cache "
                             "(default on)")


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    """The kernel/allocator backend selector (see :mod:`repro.backends`).

    All backends are numerically equivalent (the bench harness enforces
    a ≤1e-6 cross-backend equivalence matrix); they differ in staging
    layout and slot allocation, i.e. in performance and fragmentation
    profile.
    """
    parser.add_argument("--backend",
                        choices=("paged", "paged-ring", "contiguous"),
                        default=None,
                        help="kernel/allocator backend: paged (block tables "
                             "+ natural-layout staging), paged-ring (ring-"
                             "compacted contiguous staging), or contiguous "
                             "(vAttention-style virtual extents); default: "
                             "$REPRO_BACKEND, else paged")


def _resolve_backend_arg(args: argparse.Namespace) -> str:
    """Effective backend for commands that need the name eagerly
    (explicit flag > REPRO_BACKEND env > paged)."""
    from repro.backends import resolve_backend

    return resolve_backend(getattr(args, "backend", None))


def _add_slo_flags(parser: argparse.ArgumentParser) -> None:
    """The SLO-objective / metrics-artifact flag trio.

    Any one of them arms the SLO observability layer (streaming latency
    histograms + per-request flight recorder); the objectives addition-
    ally classify violations and capture slow-request timelines.
    """
    parser.add_argument("--slo-ttft", type=float, default=None,
                        metavar="SECONDS",
                        help="time-to-first-token objective; requests over "
                             "it count as violations and dump their flight "
                             "timeline")
    parser.add_argument("--slo-tbt", type=float, default=None,
                        metavar="SECONDS",
                        help="mean time-between-tokens objective (same "
                             "violation handling)")
    parser.add_argument("--metrics-out", default=None, metavar="DIR",
                        help="write the metrics artifacts (Prometheus text "
                             "snapshot, JSONL samples, flight captures) "
                             "here; also arms the SLO layer by itself")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pensieve reproduction: stateful LLM serving.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chat = sub.add_parser("chat", help="interactive functional chat demo")
    chat.add_argument("--arch", choices=("opt", "llama"), default="llama")
    chat.add_argument("--gpu-tokens", type=int, default=512)
    chat.add_argument("--cpu-tokens", type=int, default=2048)
    chat.add_argument("--disk-tokens", type=int, default=0,
                      help="capacity of the third (disk) tier in KV-tokens "
                           "(0 disables it)")
    chat.add_argument("--max-tokens", type=int, default=12)
    chat.add_argument("--system-prompt", default="")
    chat.add_argument("--seed", type=int, default=0)
    _add_sched_flags(chat, default_sched="page-aware")
    _add_backend_flag(chat)
    _add_slo_flags(chat)
    chat.set_defaults(func=cmd_chat)

    simulate = sub.add_parser("simulate", help="one serving-simulation run")
    simulate.add_argument("--system", default="pensieve")
    simulate.add_argument("--model", default="opt-13b")
    simulate.add_argument("--dataset", choices=("sharegpt", "ultrachat"),
                          default="sharegpt")
    simulate.add_argument("--rate", type=float, default=8.0)
    simulate.add_argument("--duration", type=float, default=300.0)
    simulate.add_argument("--think-time", type=float, default=60.0)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--disk-tokens", type=int, default=0,
                          help="enable the NVMe-modeled disk tier with this "
                               "many KV-tokens of capacity (stateful systems)")
    simulate.add_argument("--fault-seed", type=int, default=None,
                          help="arm deterministic fault injection (stateful "
                               "systems only) seeded with this value")
    simulate.add_argument("--fault-rate", type=float, default=0.05,
                          help="per-occurrence failure probability used for "
                               "the injected fault sites")
    simulate.add_argument("--trace-out", default=None, metavar="DIR",
                          help="record full telemetry and write the trace "
                               "artifacts (Chrome JSON, JSONL, text) here")
    _add_sched_flags(simulate, default_sched="fifo")
    _add_backend_flag(simulate)
    _add_slo_flags(simulate)
    simulate.set_defaults(func=cmd_simulate)

    sweep = sub.add_parser("sweep", help="latency-throughput curve")
    sweep.add_argument("--system", default="pensieve")
    sweep.add_argument("--model", default="opt-13b")
    sweep.add_argument("--dataset", choices=("sharegpt", "ultrachat"),
                       default="sharegpt")
    sweep.add_argument("--rates", type=float, nargs="+",
                       default=[2.0, 5.0, 8.0, 11.0])
    sweep.add_argument("--duration", type=float, default=300.0)
    sweep.add_argument("--think-time", type=float, default=60.0)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--disk-tokens", type=int, default=0,
                       help="enable the NVMe-modeled disk tier with this "
                            "many KV-tokens of capacity (stateful systems)")
    _add_sched_flags(sweep, default_sched="fifo")
    _add_backend_flag(sweep)
    _add_slo_flags(sweep)
    sweep.set_defaults(func=cmd_sweep)

    figures = sub.add_parser("figures", help="fast analytical figures")
    figures.set_defaults(func=cmd_figures)

    bench = sub.add_parser(
        "bench", help="kernel/forward-pass performance benchmark"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small sizes / few repeats (CI smoke mode)")
    bench.add_argument("--output", default="BENCH_kernels.json",
                       help="JSON output path ('' to skip writing)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repeats", type=int, default=None,
                       help="override per-scenario repeat count")
    bench.add_argument("--enforce-thresholds", action="store_true",
                       help="exit non-zero if any gated scenario (ragged "
                            "kernels, coalesced swap, packing cache, "
                            "page-aware A/B; batch >= 8) falls below its "
                            "per-family speedup floor")
    bench.add_argument("--trace-out", default=None, metavar="DIR",
                       help="record per-scenario wall-clock spans and write "
                            "the trace artifacts here")
    bench.add_argument("--check-history", action="store_true",
                       help="compare the run's per-family speedups against "
                            "the trailing median of the BENCH_kernels.json "
                            "history ledger (pass/warn/fail report; "
                            "non-gating)")
    _add_sched_flags(bench, default_sched="page-aware")
    _add_backend_flag(bench)
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace", help="run an experiment with full telemetry recording"
    )
    trace.add_argument("experiment", choices=("simulate", "fig13", "fig15x"),
                       help="what to run under the tracer")
    trace.add_argument("--out", default="traces", metavar="DIR",
                       help="output directory for the trace artifacts")
    trace.add_argument("--system", default="pensieve")
    trace.add_argument("--model", default="opt-13b")
    trace.add_argument("--dataset", choices=("sharegpt", "ultrachat"),
                       default="sharegpt")
    trace.add_argument("--rate", type=float, default=8.0)
    trace.add_argument("--rates", type=float, nargs="+", default=[2.0, 8.0],
                       help="request rates (fig13/fig15x)")
    trace.add_argument("--duration", type=float, default=120.0)
    trace.add_argument("--think-time", type=float, default=60.0)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--disk-tokens", type=int, default=0,
                       help="enable the NVMe-modeled disk tier with this "
                            "many KV-tokens of capacity (simulate/fig15x)")
    trace.add_argument("--summary", action="store_true",
                       help="print per-span-name aggregates and the top-N "
                            "slowest spans before writing the artifacts")
    trace.add_argument("--top", type=int, default=10,
                       help="slowest-span count for --summary (default 10)")
    trace.set_defaults(func=cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="one serving run with the SLO observability layer armed",
    )
    metrics.add_argument("--system", default="pensieve")
    metrics.add_argument("--model", default="opt-13b")
    metrics.add_argument("--dataset", choices=("sharegpt", "ultrachat"),
                         default="sharegpt")
    metrics.add_argument("--rate", type=float, default=8.0)
    metrics.add_argument("--duration", type=float, default=120.0)
    metrics.add_argument("--think-time", type=float, default=60.0)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--disk-tokens", type=int, default=0,
                         help="enable the NVMe-modeled disk tier with this "
                              "many KV-tokens of capacity")
    metrics.add_argument("--fault-seed", type=int, default=None,
                         help="arm deterministic fault injection so failed "
                              "requests exercise the capture path")
    metrics.add_argument("--fault-rate", type=float, default=0.05)
    metrics.add_argument("--slo-ttft", type=float, default=None,
                         metavar="SECONDS",
                         help="time-to-first-token objective")
    metrics.add_argument("--slo-tbt", type=float, default=None,
                         metavar="SECONDS",
                         help="mean time-between-tokens objective")
    metrics.add_argument("--out", default="metrics", metavar="DIR",
                         help="output directory for the metrics artifacts "
                              "(default: metrics/)")
    metrics.set_defaults(func=cmd_metrics)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md (slow)")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--duration", type=float, default=500.0)
    report.set_defaults(func=cmd_report)

    lint = sub.add_parser(
        "lint",
        help="repo-specific static analysis (sim-clock purity, fault-site "
             "coverage, hot-path allocation, ledger sync, kernel copies)",
    )
    lint.add_argument("--root", default=".",
                      help="repo root to lint (default: cwd); scans "
                           "<root>/src/repro")
    lint.add_argument("--strict", action="store_true",
                      help="also fail on stale baseline entries (CI mode)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable JSON report")
    lint.add_argument("--baseline", default="lint_baseline.json",
                      metavar="PATH",
                      help="baseline file of grandfathered findings "
                           "(default: lint_baseline.json; missing = empty)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline from the current unsup-"
                           "pressed findings instead of reporting them")
    lint.add_argument("--output", default=None, metavar="PATH",
                      help="also write the report to this file (CI artifact)")
    lint.add_argument("--verbose", action="store_true",
                      help="include suppressed and baselined findings in "
                           "the text report")
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
