"""Vectorized batched attention kernels (the performance layer).

The per-request kernels in :mod:`~repro.kernels.single_token` and
:mod:`~repro.kernels.multi_token` mirror the *structure* of the paper's
GPU kernels but serve each request with its own Python-level pass over the
cache.  These two kernels compute the same results with the whole batch
packed into a handful of numpy operations, the way a fused GPU kernel
treats the batch as one grid launch:

- :func:`batched_single_token_attention` — the generation-phase decode
  batch as **one** computation: every request's context slots are packed
  into one padded ``[batch, max_context]`` slot table and gathered in a
  single fancy-index, and scores/softmax/weighted-sum run as
  segment-masked batched matmuls over the packed axis.  One pass over
  the cache for the whole batch instead of a Python loop per request.
- :func:`vectorized_multi_token_attention` — the ragged prefill/mixed
  path.  Still one request at a time (query counts are ragged), but each
  request gathers its visible context **once** (not once per tile),
  broadcasts KV heads across their GQA group with zero-copy reshape views
  and grouped einsums instead of the materialising
  :func:`~repro.kernels.reference.gqa_expand` copy, and takes a
  single-pass (non-tiled) softmax fast path whenever the visible context
  fits in one tile.

Both stay numerically equivalent (~1e-6, in practice ~1e-12) to the
per-request kernels, which remain in-tree as the correctness oracle;
``tests/kernels/test_batched.py`` pins the equivalence and
``repro bench`` tracks the speedup.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.multi_token import DEFAULT_TILE
from repro.kernels.reference import resolve_scale
from repro.kernels.request import AttentionRequest


def _grouped_heads(num_heads: int, kv_heads: int) -> int:
    """GQA group size, with the same validation as ``gqa_expand``."""
    if num_heads % kv_heads != 0:
        raise ValueError(
            f"num_heads ({num_heads}) must be a multiple of kv_heads ({kv_heads})"
        )
    return num_heads // kv_heads


def segment_masked_decode(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lengths: np.ndarray,
    scale: float,
) -> np.ndarray:
    """The decode-batch math shared by the packed-table and packed-cache
    entry points: segment-masked batched matmuls + stable softmax.

    Args:
        q: ``[n, kv_heads, group, head_dim]`` grouped-head query view.
        k / v: ``[n, C, kv_heads, head_dim]`` gathered context, rows
            padded to the common width ``C``.
        lengths: ``[n]`` valid context length per row.
        scale: resolved score scale.

    Returns:
        ``[n, kv_heads, group, head_dim]`` attention outputs.
    """
    # scores[i, k, g, c] = q[i, k, g] . K[i, c, k] — one batched matmul
    # (BLAS) for every request and head at once.
    scores = q @ k.transpose(0, 2, 3, 1)  # [n, kv, g, C]
    scores *= scale
    max_context = k.shape[1]
    if bool((lengths != max_context).any()):
        # Segment mask: positions beyond a request's boundary never
        # attend.  Uniform-length batches (the common decode case) have
        # no padding and skip the masking pass entirely.
        valid = np.arange(max_context)[None, :] < lengths[:, None]
        scores = np.where(valid[:, None, None, :], scores, -np.inf)

    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores, out=scores)
    weights /= weights.sum(axis=-1, keepdims=True)

    return weights @ v.transpose(0, 2, 1, 3)  # [n, kv, g, head_dim]


def batched_single_token_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
) -> List[np.ndarray]:
    """One packed computation for a whole single-token decode batch.

    Semantically identical to
    :func:`~repro.kernels.single_token.single_token_attention`; the batch
    is packed into a single ``[batch, max_context]`` slot table whose rows
    are the requests' context segments (per-request lengths carry the
    segment boundaries), so the cache gather, the score computation, the
    softmax and the value aggregation each run **once** for the whole
    batch as segment-masked batched matmuls — positions past a request's
    boundary are masked to ``-inf`` before the softmax.  GQA is handled by
    viewing the queries as ``[batch, kv_heads, group, head_dim]`` (a
    zero-copy reshape) rather than materialising broadcast K/V copies.

    Args:
        requests: the decode batch (``num_query_tokens == 1`` each, query
            at the end of its context).
        k_cache / v_cache: ``[num_slots, kv_heads, head_dim]`` slot arrays.
        scale: score scaling, default ``1/sqrt(head_dim)`` resolved once
            for the batch from the cache's head dimension.

    Returns:
        One ``[1, num_heads, head_dim]`` output per request.
    """
    if k_cache.shape != v_cache.shape:
        raise ValueError(
            f"K/V cache shape mismatch: {k_cache.shape} vs {v_cache.shape}"
        )
    if not requests:
        return []
    kv_heads, head_dim = k_cache.shape[1], k_cache.shape[2]
    scale = resolve_scale(scale, head_dim)
    num_heads = requests[0].num_heads
    group = _grouped_heads(num_heads, kv_heads)

    n = len(requests)
    lengths = np.empty(n, dtype=np.int64)
    for i, request in enumerate(requests):
        if request.num_query_tokens != 1:
            raise ValueError(
                "single-token attention requires exactly one query token "
                f"per request, got {request.num_query_tokens}"
            )
        if request.query_offset != request.context_len - 1:
            raise ValueError(
                "single-token attention assumes the query is the newest "
                "context token"
            )
        if request.num_heads != num_heads:
            raise ValueError(
                f"heterogeneous head counts in decode batch: "
                f"{request.num_heads} vs {num_heads}"
            )
        lengths[i] = request.context_len

    # Packed slot table: row i holds request i's context slots, padded
    # (with slot 0 — masked below) to the longest segment.
    max_context = int(lengths.max())
    table = np.zeros((n, max_context), dtype=np.int64)
    for i, request in enumerate(requests):
        table[i, : lengths[i]] = request.slots

    # ONE gather over the paged cache for the whole batch.
    k = k_cache[table]  # [n, C, kv_heads, head_dim]
    v = v_cache[table]

    # Zero-copy GQA: view the queries as [n, kv_heads, group, head_dim] so
    # each KV head meets its group of query heads without np.repeat.
    q = np.stack([r.query[0] for r in requests]).reshape(
        n, kv_heads, group, head_dim
    )

    out = segment_masked_decode(q, k, v, lengths, scale)
    return [out[i].reshape(1, num_heads, head_dim) for i in range(n)]


def vectorized_multi_token_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
    tile: int = DEFAULT_TILE,
) -> List[np.ndarray]:
    """Vectorized counterpart of
    :func:`~repro.kernels.multi_token.multi_token_attention`.

    Same signature and results (~1e-6); differs in how the work is laid
    out: the visible context is gathered once per request, KV heads are
    broadcast across their GQA group via reshape views + grouped einsums
    (no ``gqa_expand`` copies), and a visible context that fits one tile
    skips the online-softmax machinery entirely.
    """
    if k_cache.shape != v_cache.shape:
        raise ValueError(
            f"K/V cache shape mismatch: {k_cache.shape} vs {v_cache.shape}"
        )
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    scale = resolve_scale(scale, k_cache.shape[2])
    return [
        _attend_one_vectorized(request, k_cache, v_cache, scale, tile)
        for request in requests
    ]


def _attend_one_vectorized(
    request: AttentionRequest,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float,
    tile: int,
) -> np.ndarray:
    q_len = request.num_query_tokens
    num_heads = request.num_heads
    head_dim = request.head_dim
    if q_len == 0:
        return np.zeros((0, num_heads, head_dim), dtype=k_cache.dtype)
    kv_heads = k_cache.shape[1]
    group = _grouped_heads(num_heads, kv_heads)

    visible = request.visible_context_len()
    slots = np.asarray(request.slots[:visible], dtype=np.int64)
    # Gather the visible context ONCE; tiles below are contiguous slices.
    k = k_cache[slots]  # [visible, kv_heads, head_dim]
    v = v_cache[slots]
    # Zero-copy grouped-head view of the queries.
    query = np.reshape(request.query, (q_len, kv_heads, group, head_dim))
    q_positions = request.query_positions()  # [q]

    if visible <= tile:
        # Single-pass fast path: the whole context is one tile, so a plain
        # stable softmax needs no running max/denominator state.
        scores = np.einsum("qkgd,ckd->qkgc", query, k) * scale
        masked = np.arange(visible)[None, :] > q_positions[:, None]  # [q, c]
        scores = np.where(masked[:, None, None, :], -np.inf, scores)
        scores -= scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        denom = weights.sum(axis=-1)
        _check_denominator(denom)
        out = np.einsum("qkgc,ckd->qkgd", weights, v) / denom[..., None]
        return out.reshape(q_len, num_heads, head_dim)

    # Tiled online softmax over the pre-gathered context, grouped heads.
    running_max = np.full((q_len, kv_heads, group), -np.inf)
    denom = np.zeros((q_len, kv_heads, group))
    accum = np.zeros((q_len, kv_heads, group, head_dim))
    for start in range(0, visible, tile):
        stop = min(start + tile, visible)
        k_tile = k[start:stop]  # contiguous slice — no re-gather
        v_tile = v[start:stop]

        scores = np.einsum("qkgd,ckd->qkgc", query, k_tile) * scale
        tile_positions = np.arange(start, stop)
        masked = tile_positions[None, :] > q_positions[:, None]  # [q, c]
        scores = np.where(masked[:, None, None, :], -np.inf, scores)

        tile_max = scores.max(axis=-1)  # [q, kv, g]
        new_max = np.maximum(running_max, tile_max)
        # A fully-masked tile contributes nothing; keep state unchanged.
        np.copyto(new_max, running_max, where=np.isneginf(tile_max))
        correction = np.exp(
            np.where(np.isneginf(running_max), 0.0, running_max - new_max)
        )
        weights = np.exp(scores - new_max[..., None])
        weights = np.where(np.isneginf(scores), 0.0, weights)

        denom = denom * correction + weights.sum(axis=-1)
        accum = accum * correction[..., None] + np.einsum(
            "qkgc,ckd->qkgd", weights, v_tile
        )
        running_max = new_max

    _check_denominator(denom)
    return (accum / denom[..., None]).reshape(q_len, num_heads, head_dim)


def _check_denominator(denom: np.ndarray) -> None:
    if np.any(denom == 0.0):
        raise FloatingPointError(
            "a query token attended to an empty context; causal layout "
            "guarantees at least self-attention, so slots/query_offset "
            "are inconsistent"
        )
