"""Sub-request splitting for dropped-token recomputation (Figure 8d).

When a request's leading KV-tokens were dropped from the CPU cache, their
raw tokens are prepended to the new prompt and recomputed (§4.3.4).  The
query tensor then corresponds to **two disconnected ranges** of the
context:

- the recomputed dropped prefix, positions ``[0, dropped)``;
- the new prompt, positions ``[cached_end, total)``,

with the restored cache filling the middle.  Every existing attention
kernel assumes one consecutive query region, so Pensieve treats the ranges
as *two sub-requests sharing the underlying context*: the prefix attends
(causally) to itself; the prompt attends to the entire context.  Only
auxiliary indices change — no KV data moves.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.kernels.request import AttentionRequest


def disjoint_query_spans(
    num_query: int,
    total: int,
    dropped: int,
    shared_prefix: int = 0,
) -> List[Tuple[int, int, int, int]]:
    """Structural part of :func:`split_disjoint_query`.

    The split depends only on the request's *shape* (token counts), never
    on the query values, so callers running the same request through many
    layers can compute it once and re-slice each layer's query tensor.

    Returns:
        A list of ``(q_lo, q_hi, context_end, query_offset)`` spans: the
        sub-request covers query rows ``[q_lo, q_hi)``, attends to the
        first ``context_end`` context slots, and its first query token
        sits at logical position ``query_offset``.

    Raises:
        ValueError: on inconsistent sizes.
    """
    if dropped < 0:
        raise ValueError(f"dropped must be non-negative, got {dropped}")
    if shared_prefix < 0:
        raise ValueError(f"shared_prefix must be non-negative, got {shared_prefix}")
    if dropped > num_query:
        raise ValueError(
            f"dropped ({dropped}) exceeds query tokens ({num_query})"
        )
    new_prompt = num_query - dropped
    cached = total - num_query - shared_prefix
    if cached < 0:
        raise ValueError(
            f"query tokens ({num_query}) plus shared prefix "
            f"({shared_prefix}) exceed context length ({total})"
        )
    spans: List[Tuple[int, int, int, int]] = []
    if dropped > 0:
        # Sub-request 1: the dropped prefix attends to the shared state
        # and to itself only.
        spans.append((0, dropped, shared_prefix + dropped, shared_prefix))
    if new_prompt > 0:
        # Sub-request 2: the new prompt attends to the entire context.
        spans.append((dropped, num_query, total, total - new_prompt))
    return spans


def split_disjoint_query(
    query: np.ndarray,
    slots: Sequence[int],
    dropped: int,
    shared_prefix: int = 0,
) -> List[AttentionRequest]:
    """Split a recompute-carrying request into Figure 8(d) sub-requests.

    Args:
        query: ``[dropped + new_prompt, heads, dim]`` query tensor — the
            recomputed prefix tokens followed by the new prompt tokens
            (they were concatenated in Figure 8 step (a)).
        slots: physical slots of the **full** context, length
            ``total = shared_prefix + dropped + cached + new_prompt``.
        dropped: number of recomputed leading tokens.
        shared_prefix: tokens of always-resident shared state (e.g. a
            common system prompt, paper footnote 3) preceding the
            conversation's own context.  The recomputed prefix sits at
            positions ``[shared_prefix, shared_prefix + dropped)`` and
            causally attends to the shared state as well as to itself.

    Returns:
        A list of one or two :class:`AttentionRequest`; a zero-``dropped``
        split degenerates to the ordinary single request.

    Raises:
        ValueError: on inconsistent sizes.
    """
    return [
        AttentionRequest(
            query=query[q_lo:q_hi],
            slots=list(slots[:context_end]),
            query_offset=query_offset,
        )
        for q_lo, q_hi, context_end, query_offset in disjoint_query_spans(
            query.shape[0], len(slots), dropped, shared_prefix=shared_prefix
        )
    ]
