"""Batched attention request description.

An :class:`AttentionRequest` describes one request's share of a batched
attention call (Figure 6 of the paper): its query tokens and the physical
locations of the KV-tokens forming its context.  Queries are *positioned*:
the ``i``-th query token sits at logical context position
``context_len - num_query_tokens + i`` and causally attends to every
context position up to and including its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class AttentionRequest:
    """One request in a batched paged-attention invocation.

    Attributes:
        query: ``[num_query_tokens, num_heads, head_dim]`` query
            representations for this request's input tokens.
        slots: flat physical slot indices of the request's context
            KV-tokens, in *logical* order.  The context includes the
            KV-tokens of the query tokens themselves (they are written to
            the cache before attention runs, matching Figure 8 step (c)).
        query_offset: logical position of the first query token.  Defaults
            to ``len(slots) - num_query_tokens`` (queries at the end of the
            context — the common case); the Figure 8(d) "dropped prefix"
            sub-request positions its queries elsewhere.
    """

    query: np.ndarray
    slots: Sequence[int]
    query_offset: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.query.ndim != 3:
            raise ValueError(
                f"query must be [tokens, heads, head_dim], got shape "
                f"{self.query.shape}"
            )
        if self.query_offset == -1:
            self.query_offset = len(self.slots) - self.num_query_tokens
        if self.query_offset < 0:
            raise ValueError(
                f"query_offset {self.query_offset} negative (context "
                f"{len(self.slots)} tokens, query {self.num_query_tokens})"
            )
        if self.query_offset + self.num_query_tokens > len(self.slots):
            raise ValueError(
                f"query range [{self.query_offset}, "
                f"{self.query_offset + self.num_query_tokens}) exceeds "
                f"context length {len(self.slots)}"
            )

    @property
    def num_query_tokens(self) -> int:
        return self.query.shape[0]

    @property
    def num_heads(self) -> int:
        return self.query.shape[1]

    @property
    def head_dim(self) -> int:
        return self.query.shape[2]

    @property
    def context_len(self) -> int:
        return len(self.slots)

    def query_positions(self) -> np.ndarray:
        """Logical context positions of the query tokens."""
        return np.arange(
            self.query_offset, self.query_offset + self.num_query_tokens
        )

    def visible_context_len(self) -> int:
        """Context positions visible to the *last* query token."""
        return self.query_offset + self.num_query_tokens
