"""Fully-ragged batched multi-token attention (one pass for mixed batches).

:func:`~repro.kernels.batched.batched_single_token_attention` already
serves all-decode batches as a single packed computation, but Pensieve's
unified batches (§4.2, §4.4.1) are the *mixed* case — prefill requests,
Figure 8(d) recompute-split sub-requests and decode requests in one
iteration — and :func:`~repro.kernels.batched.vectorized_multi_token_attention`
still walks those one request at a time in Python.  This module packs the
whole ragged batch into one segment-packed numpy computation, the way a
fused GPU kernel treats a ragged batch as one grid launch:

- **CSR row offsets**: every sub-request's query tokens are concatenated
  into one ``[total_q, heads, head_dim]`` tensor; ``offsets[i]`` marks
  where request ``i``'s rows start.  A single fancy-index scatter moves
  the concatenation into a padded ``[batch, max_q, heads, head_dim]``
  tensor (and the mirror-image gather pulls the outputs back out).
- **One slot-table gather**: each request's *visible* context slots form
  one row of a padded ``[batch, max_context]`` table, so the whole
  batch's K/V rows are gathered from the paged cache in one fancy-index
  — exactly the packing the decode kernel uses, generalised to ragged
  query counts.
- **Segment-masked causal scores**: query positions are scattered into
  the same padded layout (padded rows receive a sentinel position past
  every context) and a single boolean mask fuses the causal triangle
  with the per-request segment boundary, so one masked softmax and one
  weighted sum serve the entire batch.
- **Grouped-head GQA matmuls**: queries are viewed per KV head as
  ``[batch, kv_heads, max_q * group, head_dim]`` so scores and outputs
  are plain batched matmuls (BLAS) with no broadcast K/V copies.

Padding is the cost of packing: a batch mixing one very long prefill
with many decodes wastes most of the padded score tensor.  The kernel
therefore carries a **footprint guard** — when the padded score tensor
would exceed :data:`DEFAULT_MAX_SCORE_ELEMENTS` or the padded/useful
work ratio exceeds :data:`DEFAULT_MAX_PADDING_RATIO`, it delegates to
the per-request vectorized kernel, which does no padding at all.

Numerical equivalence (≤ 1e-6, in practice ~1e-12) to the per-request
:func:`~repro.kernels.multi_token.multi_token_attention` oracle —
including recompute-split and shared-prefix sub-requests — is pinned by
``tests/kernels/test_ragged_properties.py``; ``repro bench`` tracks the
speedup in the ``prefill``/``mixed`` families.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.batched import (
    _check_denominator,
    _grouped_heads,
    vectorized_multi_token_attention,
)
from repro.kernels.reference import resolve_scale
from repro.kernels.request import AttentionRequest

#: Padded score-tensor element budget ([batch, heads, max_q, max_context]
#: as float64 this is ~128 MiB) above which the kernel falls back to the
#: per-request path rather than materialise a pathological padding.
DEFAULT_MAX_SCORE_ELEMENTS = 1 << 24

#: Maximum tolerated ratio of padded score elements to useful ones
#: (``sum(q_i * visible_i)``); beyond it the padding wastes more compute
#: than the packing saves in dispatch overhead.
DEFAULT_MAX_PADDING_RATIO = 8.0


def ragged_multi_token_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
    max_score_elements: int = DEFAULT_MAX_SCORE_ELEMENTS,
    max_padding_ratio: float = DEFAULT_MAX_PADDING_RATIO,
) -> List[np.ndarray]:
    """One packed computation for a whole ragged prefill/mixed batch.

    Semantically identical to
    :func:`~repro.kernels.multi_token.multi_token_attention` (same
    request semantics: positioned queries, non-contiguous slots, fused
    causal masking, GQA); the batch is computed as a single padded
    gather + masked softmax + weighted sum instead of a Python loop
    over requests.

    Args:
        requests: the ragged batch; query counts and context lengths may
            differ arbitrarily, and query chunks may sit *inside* their
            context (Figure 8(d) sub-requests).
        k_cache / v_cache: ``[num_slots, kv_heads, head_dim]`` slot
            arrays for one layer.
        scale: score scaling, default ``1/sqrt(head_dim)``.
        max_score_elements: padded score-tensor element budget of the
            footprint guard.
        max_padding_ratio: padded/useful work ratio of the footprint
            guard.

    Returns:
        One ``[num_query_tokens, num_heads, head_dim]`` output per
        request, in request order.
    """
    if k_cache.shape != v_cache.shape:
        raise ValueError(
            f"K/V cache shape mismatch: {k_cache.shape} vs {v_cache.shape}"
        )
    if not requests:
        return []
    kv_heads, head_dim = k_cache.shape[1], k_cache.shape[2]
    scale = resolve_scale(scale, head_dim)
    num_heads = requests[0].num_heads
    for request in requests:
        if request.num_heads != num_heads:
            raise ValueError(
                f"heterogeneous head counts in ragged batch: "
                f"{request.num_heads} vs {num_heads}"
            )
    group = _grouped_heads(num_heads, kv_heads)

    outputs: List[np.ndarray] = [
        np.zeros((0, num_heads, head_dim), dtype=k_cache.dtype)
    ] * len(requests)
    active = [i for i, r in enumerate(requests) if r.num_query_tokens > 0]
    if not active:
        return outputs

    n = len(active)
    q_lens = np.array([requests[i].num_query_tokens for i in active])
    visibles = np.array([requests[i].visible_context_len() for i in active])
    max_q = int(q_lens.max())
    max_c = int(visibles.max())

    # Footprint guard: the padded score tensor is the price of packing.
    score_elements = n * num_heads * max_q * max_c
    useful_elements = num_heads * int((q_lens * visibles).sum())
    if (
        score_elements > max_score_elements
        or score_elements > max_padding_ratio * useful_elements
    ):
        return vectorized_multi_token_attention(
            requests, k_cache, v_cache, scale=scale
        )

    # CSR layout of the ragged queries: request active[i]'s rows live at
    # [offsets[i], offsets[i+1]) of the concatenation; (row_idx, col_idx)
    # is that range's address in the padded [n, max_q] layout.
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(q_lens, out=offsets[1:])
    total_q = int(offsets[-1])
    row_idx = np.repeat(np.arange(n), q_lens)
    col_idx = np.arange(total_q) - offsets[row_idx]

    # ONE scatter packs the ragged queries; padded rows stay zero.
    q_cat = np.concatenate([requests[i].query for i in active])
    q_pad = np.zeros((n, max_q, num_heads, head_dim), dtype=q_cat.dtype)
    q_pad[row_idx, col_idx] = q_cat

    # Padded query positions.  Padding rows get a sentinel past every
    # context position: they causally "see" their request's whole visible
    # segment, so their softmax stays finite and no NaN can leak into the
    # real rows through reductions.
    pos_pad = np.full((n, max_q), max_c, dtype=np.int64)
    pos_pad[row_idx, col_idx] = np.concatenate(
        [requests[i].query_positions() for i in active]
    )

    # Packed slot table (same shape trick as the decode kernel): row i
    # holds request active[i]'s visible context slots, padded with slot 0
    # — masked below.  ONE gather over the paged cache for the batch.
    table = np.zeros((n, max_c), dtype=np.int64)
    for ai, i in enumerate(active):
        table[ai, : visibles[ai]] = np.asarray(
            requests[i].slots[: visibles[ai]], dtype=np.int64
        )
    k = k_cache[table]  # [n, C, kv_heads, head_dim]
    v = v_cache[table]

    # Grouped-head layout: fold (max_q, group) into one matmul row axis so
    # scores/outputs are plain batched BLAS matmuls per (batch, kv head).
    # The scale is folded into the (small) query tensor so the padded
    # score tensor never needs a separate scaling pass.
    q_grouped = (
        q_pad.reshape(n, max_q, kv_heads, group, head_dim)
        .transpose(0, 2, 1, 3, 4)
        .reshape(n, kv_heads, max_q * group, head_dim)
    )
    q_grouped *= scale
    scores = q_grouped @ k.transpose(0, 2, 3, 1)  # [n, kv, q*g, C]
    scores = scores.reshape(n, kv_heads, max_q, group, max_c)

    # Fused mask: the causal triangle (position j visible to query at
    # position p iff j <= p) AND the per-request segment boundary (padding
    # slots past ``visible`` never attend).  Applied as one broadcast
    # additive bias (0 / -inf) — a single fused pass over the score
    # tensor, no full-size temporary.
    ctx_positions = np.arange(max_c)
    valid = (ctx_positions[None, None, :] <= pos_pad[:, :, None]) & (
        ctx_positions[None, None, :] < visibles[:, None, None]
    )  # [n, max_q, C]
    bias = np.where(valid, 0.0, -np.inf)
    scores += bias[:, None, :, None, :]

    # Single masked softmax for the entire batch.  Every row — padded
    # rows included — has at least one visible position, so the max is
    # finite and the denominator positive.
    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores, out=scores)
    denom = weights.sum(axis=-1)
    _check_denominator(denom)

    # Single weighted sum; the normalisation divides the (much smaller)
    # output tensor rather than the padded weights.  Then the
    # mirror-image gather un-packs the outputs back into per-request
    # tensors.
    out = weights.reshape(n, kv_heads, max_q * group, max_c) @ v.transpose(
        0, 2, 1, 3
    )  # [n, kv, q*g, head_dim]
    out = out.reshape(n, kv_heads, max_q, group, head_dim) / denom[..., None]
    out = out.transpose(0, 2, 1, 3, 4).reshape(n, max_q, num_heads, head_dim)
    out_cat = out[row_idx, col_idx]  # [total_q, heads, head_dim]
    for ai, i in enumerate(active):
        outputs[i] = out_cat[offsets[ai] : offsets[ai + 1]]
    return outputs
