"""Functional (numpy) attention kernels.

This subpackage implements, at the algorithm level, every attention kernel
the paper discusses:

- :func:`~repro.kernels.reference.reference_attention` — textbook
  materialised-softmax attention over a *contiguous* KV region; the ground
  truth all other kernels are verified against;
- :func:`~repro.kernels.multi_token.multi_token_attention` — **the paper's
  contribution (§4.4)**: attention between a ragged batch of multi-token
  queries and KV-tokens scattered over non-contiguous pages, with fused
  causal masking, computed with the same online-softmax tiling a fused GPU
  kernel uses;
- :func:`~repro.kernels.single_token.single_token_attention` — vLLM's
  PagedAttention: the one-query-token special case;
- :func:`~repro.kernels.strawmen.copyout_attention` and
  :func:`~repro.kernels.strawmen.multiround_attention` — the two Figure 12
  straw-men (functionally correct, structurally wasteful);
- :mod:`~repro.kernels.subrequests` — the Figure 8(d) splitting of a
  request whose query tokens occupy two disconnected context ranges
  (recomputed dropped prefix + new prompt) into sub-requests that share
  the underlying context;
- :mod:`~repro.kernels.batched` — the **performance layer**:
  :func:`~repro.kernels.batched.batched_single_token_attention` packs a
  whole decode batch into one flat gather + segmented reductions, and
  :func:`~repro.kernels.batched.vectorized_multi_token_attention` serves
  ragged prefill/mixed batches with one gather per request, zero-copy GQA
  broadcasting and a single-pass small-context fast path;
- :mod:`~repro.kernels.ragged` — the fully-ragged batched kernel:
  :func:`~repro.kernels.ragged.ragged_multi_token_attention` packs an
  entire prefill/mixed batch (CSR query offsets, one padded slot-table
  gather, segment-masked causal softmax, grouped-head GQA matmuls) into
  one numpy pass, with a memory-footprint guard falling back to the
  per-request vectorized kernel for pathological raggedness;
- :mod:`~repro.kernels.packed_cache` — the **incremental metadata
  layer**: :class:`~repro.kernels.packed_cache.PackedDecodeCache` keeps
  the decode batch's padded slot table and gathered-KV staging buffers
  alive across iterations (extend / repair / rebuild lifecycle keyed on
  block-table version counters), and
  :func:`~repro.kernels.packed_cache.packed_decode_attention` runs the
  same segment-masked decode math over the staged buffers;
- :mod:`~repro.kernels.ring_cache` — the ``paged-ring`` backend's
  layout variant: :class:`~repro.kernels.ring_cache.RingDecodeCache`
  stages the packed batch score-ready (context-last K, head-last V) so
  :func:`~repro.kernels.ring_cache.ring_decode_attention` feeds BLAS
  contiguous operands with no transposes.  All are verified (~1e-6)
  against the per-request kernels above, which remain the correctness
  oracle.

Callers outside this package, the backends and the bench harness must
reach attention kernels through the :mod:`repro.backends` registry
(lint rule RPR006).
"""

from repro.kernels.request import AttentionRequest
from repro.kernels.reference import reference_attention, resolve_scale
from repro.kernels.multi_token import multi_token_attention
from repro.kernels.single_token import single_token_attention
from repro.kernels.batched import (
    batched_single_token_attention,
    segment_masked_decode,
    vectorized_multi_token_attention,
)
from repro.kernels.packed_cache import (
    DecodeSlotSource,
    PackedBatch,
    PackedDecodeCache,
    packed_decode_attention,
)
from repro.kernels.ragged import ragged_multi_token_attention
from repro.kernels.ring_cache import RingDecodeCache, ring_decode_attention
from repro.kernels.strawmen import copyout_attention, multiround_attention
from repro.kernels.subrequests import disjoint_query_spans, split_disjoint_query

__all__ = [
    "AttentionRequest",
    "reference_attention",
    "resolve_scale",
    "multi_token_attention",
    "single_token_attention",
    "batched_single_token_attention",
    "segment_masked_decode",
    "vectorized_multi_token_attention",
    "DecodeSlotSource",
    "PackedBatch",
    "PackedDecodeCache",
    "packed_decode_attention",
    "RingDecodeCache",
    "ring_decode_attention",
    "ragged_multi_token_attention",
    "copyout_attention",
    "multiround_attention",
    "disjoint_query_spans",
    "split_disjoint_query",
]
