"""Pensieve's multi-token attention kernel over non-contiguous KV cache.

This is the functional counterpart of the paper's §4.4 CUDA kernel.  Like
the real kernel it must handle, simultaneously:

- a **ragged batch**: every request contributes a different number of
  query tokens (a generation-phase request contributes one, a prefill-phase
  request its whole prompt — the unified batching of §4.2/§4.4.1);
- **non-contiguous context**: each request's KV-tokens live at arbitrary
  physical slots (Figure 6), supplied as per-request slot lists;
- **fused causal masking** for the multi-token case (the red triangle of
  Figure 9), including query chunks positioned *inside* the context rather
  than only at its end — required by the Figure 8(d) sub-request trick;
- **grouped-query attention** (KV-head broadcast).

The implementation mirrors the structure of a fused GPU kernel rather than
calling the reference implementation: the context is processed in fixed
tiles; each tile's K/V rows are *gathered* from the paged cache (the
non-contiguous load the real kernel does from GPU global memory into shared
memory), partial scores are combined with a running online softmax
(max/denominator/accumulator rescaling, after FlashAttention [10]), and
the causal mask is applied per tile without materialising the full score
matrix.  Numerical equivalence to the reference kernel is established in
``tests/kernels/``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.reference import gqa_expand, resolve_scale
from repro.kernels.request import AttentionRequest

#: Context tile width: how many KV-tokens one "thread block" loads at a
#: time.  Deliberately not a multiple of typical page sizes so that tile
#: boundaries and page boundaries disagree in tests.
DEFAULT_TILE = 48


def multi_token_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
    tile: int = DEFAULT_TILE,
) -> List[np.ndarray]:
    """Batched multi-token attention over a paged KV cache.

    Args:
        requests: the batch; each request carries its query tensor, its
            context slot list and its query positioning.
        k_cache / v_cache: ``[num_slots, kv_heads, head_dim]`` slot arrays
            for one layer (physical storage; only the slots referenced by
            the requests are touched).
        scale: score scaling, default ``1/sqrt(head_dim)``.
        tile: context tile width for the online-softmax loop.

    Returns:
        One ``[num_query_tokens, num_heads, head_dim]`` output per request.
    """
    if k_cache.shape != v_cache.shape:
        raise ValueError(
            f"K/V cache shape mismatch: {k_cache.shape} vs {v_cache.shape}"
        )
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    # The head dimension is fixed by the cache shape, so the default scale
    # is resolved once at the batch level; ``_attend_one`` receives the
    # concrete value and never reinterprets its parameter.
    scale = resolve_scale(scale, k_cache.shape[2])
    outputs: List[np.ndarray] = []
    for request in requests:
        outputs.append(
            _attend_one(request, k_cache, v_cache, scale=scale, tile=tile)
        )
    return outputs


def _attend_one(
    request: AttentionRequest,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float,
    tile: int,
) -> np.ndarray:
    q_len = request.num_query_tokens
    num_heads = request.num_heads
    head_dim = request.head_dim
    if q_len == 0:
        return np.zeros((0, num_heads, head_dim), dtype=k_cache.dtype)

    # A query token never attends beyond its own position, so only the
    # first ``visible`` context tokens matter for this request.
    visible = request.visible_context_len()
    slots = np.asarray(request.slots[:visible], dtype=np.int64)
    query = request.query  # [q, H, d]
    q_positions = request.query_positions()  # [q]

    # Online softmax running state, per (query token, head).
    running_max = np.full((q_len, num_heads), -np.inf)
    denom = np.zeros((q_len, num_heads))
    accum = np.zeros((q_len, num_heads, head_dim))

    for start in range(0, visible, tile):
        stop = min(start + tile, visible)
        # Non-contiguous gather: this is the paged load the kernel exists
        # to support.  Physical order is arbitrary; logical order is the
        # slice order of ``slots``.
        k_tile = gqa_expand(k_cache[slots[start:stop]], num_heads)
        v_tile = gqa_expand(v_cache[slots[start:stop]], num_heads)

        # scores[i, h, j] for this tile.
        scores = np.einsum("qhd,chd->qhc", query, k_tile) * scale

        # Fused causal mask: position start+j visible to query i iff
        # start+j <= q_positions[i].
        tile_positions = np.arange(start, stop)
        masked = tile_positions[None, :] > q_positions[:, None]  # [q, c]
        scores = np.where(masked[:, None, :], -np.inf, scores)

        # Online softmax update (rescale previous accumulator).
        tile_max = scores.max(axis=-1)  # [q, H]
        new_max = np.maximum(running_max, tile_max)
        # A fully-masked tile contributes nothing; keep state unchanged.
        np.copyto(new_max, running_max, where=np.isneginf(tile_max))
        correction = np.exp(
            np.where(np.isneginf(running_max), 0.0, running_max - new_max)
        )
        weights = np.exp(scores - new_max[:, :, None])
        weights = np.where(np.isneginf(scores), 0.0, weights)

        denom = denom * correction + weights.sum(axis=-1)
        accum = accum * correction[:, :, None] + np.einsum(
            "qhc,chd->qhd", weights, v_tile
        )
        running_max = new_max

    if np.any(denom == 0.0):
        raise FloatingPointError(
            "a query token attended to an empty context; causal layout "
            "guarantees at least self-attention, so slots/query_offset "
            "are inconsistent"
        )
    return accum / denom[:, :, None]
