"""Single-token PagedAttention (vLLM's generation-phase kernel).

Computes attention between exactly one query token per request and that
request's paged context — the matrix-*vector* formulation of Figure 9
(left).  No causal mask is needed: a single new token attends to the whole
existing context including itself.

Kept as an independent implementation (not a call into the multi-token
kernel) so tests can check the paper's claim that single-token attention is
the ``q = 1`` special case of multi-token attention by comparing the two.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.reference import gqa_expand, resolve_scale
from repro.kernels.request import AttentionRequest


def single_token_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
) -> List[np.ndarray]:
    """Batched single-token attention over a paged KV cache.

    Every request must carry exactly one query token positioned at the end
    of its context.

    Args:
        requests: the batch (``num_query_tokens == 1`` each).
        k_cache / v_cache: ``[num_slots, kv_heads, head_dim]`` slot arrays.
        scale: score scaling, default ``1/sqrt(head_dim)``.

    Returns:
        One ``[1, num_heads, head_dim]`` output per request.

    Raises:
        ValueError: if any request has more than one query token (that is
            precisely the case this kernel cannot handle, §3.2).
    """
    # The head dimension is fixed by the cache shape, so the default scale
    # is resolved once for the whole batch (never per request).
    s = resolve_scale(scale, k_cache.shape[2])
    outputs: List[np.ndarray] = []
    for request in requests:
        if request.num_query_tokens != 1:
            raise ValueError(
                "single-token attention requires exactly one query token "
                f"per request, got {request.num_query_tokens}"
            )
        if request.query_offset != request.context_len - 1:
            raise ValueError(
                "single-token attention assumes the query is the newest "
                "context token"
            )
        slots = np.asarray(request.slots, dtype=np.int64)
        k = gqa_expand(k_cache[slots], request.num_heads)  # [ctx, H, d]
        v = gqa_expand(v_cache[slots], request.num_heads)
        q = request.query[0]  # [H, d]

        # Matrix-vector products: scores[h, c] = q[h] . k[c, h].
        scores = np.einsum("hd,chd->hc", q, k) * s
        scores -= scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=-1, keepdims=True)
        out = np.einsum("hc,chd->hd", weights, v)
        outputs.append(out[None, :, :])
    return outputs
