"""Ring-compacted packed staging (the ``paged-ring`` backend's kernel).

:class:`~repro.kernels.packed_cache.PackedDecodeCache` stages gathered
K/V as ``[rows, ctx, kv_heads, head_dim]`` — the natural gather order —
but :func:`~repro.kernels.batched.segment_masked_decode` then consumes
them through ``transpose(0, 2, 3, 1)`` / ``transpose(0, 2, 1, 3)``
views whose per-head matrices are not valid BLAS operands, so every
decode matmul re-buffers the full staged context (PR 7's recorded
headroom).

:class:`RingDecodeCache` keeps the exact packed-table lifecycle
(extend / repair / rebuild, same stats, same budget fallback) but lays
each layer's staging out **score-ready**:

- K: ``[rows, kv_heads, head_dim, ctx]`` — context is the *last* axis,
  so ``scores = q @ k`` needs no transpose and each ``(head_dim, ctx)``
  matrix is a leading-dimension-strided BLAS operand even after the
  ``:max_len`` column slice;
- V: ``[rows, kv_heads, ctx, head_dim]`` — so ``out = weights @ v``
  consumes it directly.

Extend writes land in place at the ring head (the row's current
``gathered`` column); repair/rebuild re-compact the row from column 0,
exactly like the base cache.  The ring layout changes *where* staged
bytes live, never *which* slots are staged — numerics match the
per-request oracle to ~1e-12 (``tests/backends/test_ring_cache.py``).
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

from repro.kernels.batched import _grouped_heads
from repro.kernels.packed_cache import (
    PackedBatch,
    PackedDecodeCache,
    _LayerStaging,
)
from repro.kernels.reference import resolve_scale

__all__ = ["RingDecodeCache", "ring_decode_attention"]


class RingDecodeCache(PackedDecodeCache):
    """A :class:`PackedDecodeCache` whose staging buffers are
    ring-compacted into the layout ``segment_masked_decode``'s matmuls
    actually consume.  Only the staging-layout hooks differ; packing
    metadata, lifecycle bookkeeping and stats are inherited unchanged.
    """

    def _new_staging(
        self,
        tail_shape: Tuple[int, ...],
        k_dtype: np.dtype,
        v_dtype: np.dtype,
    ) -> _LayerStaging:
        kv_heads, head_dim = tail_shape
        return _LayerStaging(
            k=np.zeros(
                (self._rows_cap, kv_heads, head_dim, self._ctx_cap),
                dtype=k_dtype,
            ),
            v=np.zeros(
                (self._rows_cap, kv_heads, self._ctx_cap, head_dim),
                dtype=v_dtype,
            ),
            gathered=np.zeros(self._rows_cap, dtype=np.int64),
        )

    def _staging_tail(self, staging: _LayerStaging) -> Tuple[int, ...]:
        # K is [rows, kv_heads, head_dim, ctx].
        return staging.k.shape[1:3]

    def _grow_staging_ctx(self, st: _LayerStaging, new_ctx: int) -> None:
        kv_heads, head_dim = st.k.shape[1], st.k.shape[2]
        k = np.zeros(
            (self._rows_cap, kv_heads, head_dim, new_ctx), dtype=st.k.dtype
        )
        v = np.zeros(
            (self._rows_cap, kv_heads, new_ctx, head_dim), dtype=st.v.dtype
        )
        k[..., : self._ctx_cap] = st.k
        v[:, :, : self._ctx_cap] = st.v
        st.k, st.v = k, v

    def _gather_columns(
        self,
        staging: _LayerStaging,
        stale: np.ndarray,
        done: np.ndarray,
        lengths: np.ndarray,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
    ) -> None:
        deltas = lengths[stale] - done[stale]
        if bool((deltas == 1).all()):
            # Ring-head write: the one new slot per row lands in place at
            # each row's current compaction head.  Advanced indices at
            # the outer axes broadcast the [m, kv, d] gather across the
            # slice dimensions in between.
            cols = done[stale]
            slots = self._table[stale, cols]
            staging.k[stale, :, :, cols] = k_cache[slots]
            staging.v[stale, :, cols] = v_cache[slots]
        else:
            for row in stale:
                a, b = int(done[row]), int(lengths[row])
                slots = self._table[row, a:b]
                staging.k[row, :, :, a:b] = k_cache[slots].transpose(1, 2, 0)
                staging.v[row, :, a:b] = v_cache[slots].transpose(1, 0, 2)

    def _staged_views(
        self, staging: _LayerStaging, n: int, max_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return staging.k[:n, :, :, :max_len], staging.v[:n, :, :max_len]

    def _fallback_gather(
        self, n: int, max_len: int, k_cache: np.ndarray, v_cache: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        table = self._table[:n, :max_len]
        # Transposed *views* of the fresh gather — the kernel contract is
        # the ring layout, contiguity is only a fast-path property.
        return (
            k_cache[table].transpose(0, 2, 3, 1),
            v_cache[table].transpose(0, 2, 1, 3),
        )


def _ring_masked_decode(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lengths: np.ndarray,
    scale: float,
) -> np.ndarray:
    """:func:`~repro.kernels.batched.segment_masked_decode`'s exact math
    on pre-transposed (ring-layout) operands.

    Args:
        q: ``[n, kv_heads, group, head_dim]`` grouped-head query view.
        k: ``[n, kv_heads, head_dim, C]`` ring-staged keys.
        v: ``[n, kv_heads, C, head_dim]`` ring-staged values.
        lengths: ``[n]`` valid context length per row.
        scale: resolved score scale.

    Returns:
        ``[n, kv_heads, group, head_dim]`` attention outputs.
    """
    scores = q @ k  # [n, kv, g, C] — contiguous BLAS operands, no views
    scores *= scale
    max_context = k.shape[3]
    if bool((lengths != max_context).any()):
        valid = np.arange(max_context)[None, :] < lengths[:, None]
        scores = np.where(valid[:, None, None, :], scores, -np.inf)

    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores, out=scores)
    weights /= weights.sum(axis=-1, keepdims=True)

    return weights @ v  # [n, kv, g, head_dim]


def ring_decode_attention(
    queries: np.ndarray,
    batch: PackedBatch,
    layer_key: Hashable,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
) -> np.ndarray:
    """Single-token decode attention over a ring-staged packed batch.

    Numerically identical to
    :func:`~repro.kernels.packed_cache.packed_decode_attention` — the
    softmax math is the same; the ring layout only removes the operand
    transposes (and therefore the per-matmul BLAS re-buffering).

    Args:
        queries: ``[n, num_heads, head_dim]`` newest-token queries in row
            order.
        batch: the view returned by the most recent
            :meth:`RingDecodeCache.pack`.
        layer_key: identifies the (k_cache, v_cache) pair across calls.

    Returns:
        ``[n, num_heads, head_dim]`` attention outputs.
    """
    n, num_heads, head_dim = queries.shape
    if n != batch.n:
        raise ValueError(f"query batch {n} does not match packed batch {batch.n}")
    kv_heads = k_cache.shape[1]
    group = _grouped_heads(num_heads, kv_heads)
    k, v = batch.gathered(layer_key, k_cache, v_cache)
    q = np.ascontiguousarray(queries).reshape(n, kv_heads, group, head_dim)
    out = _ring_masked_decode(q, k, v, batch.lengths, resolve_scale(scale, head_dim))
    return out.reshape(n, num_heads, head_dim)
