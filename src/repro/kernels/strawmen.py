"""The two Figure 12 straw-man implementations.

Both produce correct results; they exist so the kernel microbenchmark
(``benchmarks/test_fig12_kernel.py``) can demonstrate *why* they lose:

- **CopyOut+Attention** materialises the scattered context into a freshly
  allocated contiguous buffer and runs the ordinary fused kernel — paying a
  copy proportional to the number of past KV-tokens;
- **Multi-round PagedAttention** feeds the prompt one token at a time
  through the single-token kernel — paying one full context read per query
  token and giving up the query-dimension parallelism.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.reference import reference_attention
from repro.kernels.request import AttentionRequest
from repro.kernels.single_token import single_token_attention


def copyout_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
) -> List[np.ndarray]:
    """Straw-man 1: copy the paged context out to contiguous memory.

    The explicit ``np.ascontiguousarray`` copies are the point: they model
    the extra memory traffic the paper's Figure 12 charges this approach
    with.
    """
    outputs: List[np.ndarray] = []
    for request in requests:
        slots = np.asarray(request.slots, dtype=np.int64)
        k_contig = np.ascontiguousarray(k_cache[slots])  # repro: ignore[RPR005] -- straw-man deliberately models the per-request copy cost
        v_contig = np.ascontiguousarray(v_cache[slots])  # repro: ignore[RPR005] -- straw-man deliberately models the per-request copy cost
        outputs.append(
            reference_attention(
                request.query,
                k_contig,
                v_contig,
                query_offset=request.query_offset,
                scale=scale,
            )
        )
    return outputs


def multiround_attention(
    requests: Sequence[AttentionRequest],
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
) -> List[np.ndarray]:
    """Straw-man 2: one single-token PagedAttention round per query token.

    Round ``i`` submits the ``i``-th query token of every request that has
    one, with that token's visible context prefix — mimicking how one would
    (ab)use vLLM's generation kernel for prefill.  Requires each request's
    query tokens to be the trailing tokens of their visible prefix, which
    holds for both Figure 8(d) sub-request shapes.
    """
    results: List[List[np.ndarray]] = [[] for _ in requests]
    max_q = max((r.num_query_tokens for r in requests), default=0)
    for i in range(max_q):
        round_requests: List[AttentionRequest] = []
        round_owner: List[int] = []
        for idx, request in enumerate(requests):
            if i >= request.num_query_tokens:
                continue
            position = request.query_offset + i
            round_requests.append(
                AttentionRequest(
                    query=request.query[i : i + 1],
                    slots=list(request.slots[: position + 1]),
                    query_offset=position,
                )
            )
            round_owner.append(idx)
        round_out = single_token_attention(
            round_requests, k_cache, v_cache, scale=scale
        )
        for idx, out in zip(round_owner, round_out):
            results[idx].append(out)
    return [
        # repro: ignore[RPR005] -- straw-man stitches per-round outputs; the copy is the modeled overhead
        np.concatenate(parts, axis=0)
        if parts
        else np.zeros((0, r.num_heads, r.head_dim), dtype=k_cache.dtype)
        for parts, r in zip(results, requests)
    ]
