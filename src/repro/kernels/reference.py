"""Reference attention over contiguous K/V tensors.

The ground truth for every paged kernel: materialises the full attention
score matrix, applies the causal mask explicitly, and uses a numerically
stable softmax.  Grouped-query attention is supported by broadcasting each
KV head across its group of query heads.
"""

from __future__ import annotations

import numpy as np


def resolve_scale(scale: float, head_dim: int) -> float:
    """Resolve the ``scale == 0.0`` "use the default" sentinel.

    Every kernel accepts ``scale=0.0`` to mean ``1/sqrt(head_dim)``.  The
    batch-level entry points resolve the sentinel **once** (the head
    dimension is fixed by the cache shape for the whole batch) and pass
    the concrete value down, so per-request helpers never reinterpret —
    or mutate — their ``scale`` argument.
    """
    return scale if scale != 0.0 else 1.0 / float(np.sqrt(head_dim))


def gqa_expand(kv: np.ndarray, num_heads: int) -> np.ndarray:
    """Broadcast ``[tokens, kv_heads, dim]`` to ``[tokens, num_heads, dim]``.

    Query head ``h`` uses KV head ``h // group_size`` (GQA grouping [2]).
    """
    kv_heads = kv.shape[1]
    if num_heads % kv_heads != 0:
        raise ValueError(
            f"num_heads ({num_heads}) must be a multiple of kv_heads ({kv_heads})"
        )
    group = num_heads // kv_heads
    if group == 1:
        return kv
    return np.repeat(kv, group, axis=1)


def reference_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    query_offset: int = -1,
    scale: float = 0.0,
) -> np.ndarray:
    """Causal multi-head attention with materialised scores.

    Args:
        query: ``[q, num_heads, head_dim]``.
        key / value: ``[ctx, kv_heads, head_dim]`` in logical order
            (contiguous: this kernel knows nothing about pages).
        query_offset: logical position of the first query token; defaults
            to ``ctx - q`` (queries at the end of the context).
        scale: score scaling; defaults to ``1/sqrt(head_dim)``.

    Returns:
        ``[q, num_heads, head_dim]`` attention outputs.
    """
    if query.ndim != 3 or key.ndim != 3 or value.ndim != 3:
        raise ValueError("query/key/value must be rank-3 tensors")
    q_len, num_heads, head_dim = query.shape
    ctx = key.shape[0]
    if query_offset == -1:
        query_offset = ctx - q_len
    if query_offset < 0 or query_offset + q_len > ctx:
        raise ValueError(
            f"query range [{query_offset}, {query_offset + q_len}) outside "
            f"context of {ctx} tokens"
        )
    scale = resolve_scale(scale, head_dim)

    k = gqa_expand(key, num_heads)
    v = gqa_expand(value, num_heads)

    # scores[h, i, j] = q[i, h] . k[j, h]
    scores = np.einsum("qhd,chd->hqc", query, k) * scale

    # Causal mask: query token i (at logical position query_offset + i)
    # may not attend to positions beyond its own.
    positions = np.arange(ctx)[None, :]
    allowed = positions <= (query_offset + np.arange(q_len))[:, None]
    scores = np.where(allowed[None, :, :], scores, -np.inf)

    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=-1, keepdims=True)

    return np.einsum("hqc,chd->qhd", weights, v)
