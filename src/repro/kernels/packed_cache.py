"""Incremental decode packing cache (the metadata-reuse layer).

:func:`~repro.kernels.batched.batched_single_token_attention` is already
one fused computation per decode step, but it rebuilds its padded
``[batch, max_context]`` slot table and re-gathers the **entire** paged
context from the KV cache on every iteration — even though each request's
block table grows by exactly one slot per step.  PersistentKV-style
profiling (PAPERS.md) says exactly this: long-context decode is
bottlenecked by KV movement and metadata churn, not matmuls.

:class:`PackedDecodeCache` keeps the packed slot table, per-row segment
lengths and per-layer gathered-KV staging buffers alive across decode
iterations and maintains them with a three-tier lifecycle, cheapest
first:

- **extend** — same request in the same row, block table only appended
  to since the last pack (``structure_version`` unchanged): write the new
  tail slots into the row and gather only the delta columns.  This is the
  +1-slot steady state of a decode loop.
- **repair** — same request in the same row, but its block table's
  ``structure_version`` moved (swap-out / swap-in / recompute rebuilt the
  mapping): repack that row from scratch and invalidate its staging
  columns.  Other rows are untouched.
- **rebuild** — a different request occupies the row (batch membership
  or order changed): repack the row and reset its staging.  Rows whose
  occupant is unchanged still take the extend/repair path, so a batch
  that shrinks from the tail — the common case when conversations finish
  — only pays for the rows that actually changed.

Capacities (rows and packed context width) grow geometrically and never
shrink, so the steady state allocates nothing.  Correctness leans on one
:class:`~repro.kvcache.pages.BlockTable` invariant: appends never remap
existing positions (only ``vacate_front`` / ``restore_front`` /
``release`` do, and those bump ``structure_version``), and the serving
layer only writes K/V for *newly appended* slots while a request is
resident — so staged KV columns stay valid exactly as long as the
structure version holds still.

The cache is numerically transparent: outputs of
:func:`packed_decode_attention` match the batched kernel (and therefore
the per-request oracle) to ~1e-12, pinned by
``tests/kernels/test_packed_cache.py`` under randomized mutation
interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.batched import _grouped_heads, segment_masked_decode
from repro.kernels.reference import resolve_scale

_EMPTY_PREFIX = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class DecodeSlotSource:
    """One decode request's slot layout, described by reference.

    Args:
        key: stable identity of the request (conversation id).  Rows are
            reused across packs only while the key occupying them is
            unchanged.
        table: the request's :class:`~repro.kvcache.pages.BlockTable`
            (anything with ``length`` / ``structure_version`` /
            ``slots_array`` works).
        prefix: flat slot indices of a shared prefix (e.g. the pinned
            system prompt) that precedes the table's positions.  Pass the
            **same array object** every step — prefix identity is part of
            the row-reuse check.
    """

    key: Hashable
    table: Any
    prefix: np.ndarray = field(default_factory=lambda: _EMPTY_PREFIX)

    @property
    def total_len(self) -> int:
        return len(self.prefix) + self.table.length


@dataclass
class _RowState:
    key: Hashable
    table: Any
    structure_version: int
    prefix: np.ndarray
    prefix_len: int
    packed_len: int


@dataclass
class _LayerStaging:
    # Layouts are owned by the cache class: the base cache stages K/V as
    # [rows_cap, ctx_cap, kv_heads, head_dim]; subclasses (e.g. the
    # ring-compacted cache) may stage a transposed layout.  Rows are
    # always dimension 0.
    k: np.ndarray
    v: np.ndarray
    gathered: np.ndarray   # [rows_cap] columns of each row already staged


class PackedBatch:
    """A view of the cache's packed state for one decode iteration.

    Only the batch returned by the **most recent** :meth:`PackedDecodeCache.pack`
    call is valid; a later pack may rewrite rows in place.
    """

    def __init__(self, cache: "PackedDecodeCache", n: int, max_len: int) -> None:
        self._cache = cache
        self.n = n
        self.max_len = max_len

    @property
    def lengths(self) -> np.ndarray:
        """``[n]`` valid context length per row."""
        return self._cache._lengths[: self.n]

    @property
    def table(self) -> np.ndarray:
        """``[n, max_len]`` packed slot table (zero-padded past lengths)."""
        return self._cache._table[: self.n, : self.max_len]

    def gathered(
        self, layer_key: Hashable, k_cache: np.ndarray, v_cache: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gathered ``[n, max_len, kv_heads, head_dim]`` K/V for this
        batch, staging only the columns that changed since the last call
        for ``layer_key``."""
        return self._cache._gathered(layer_key, k_cache, v_cache, self.n, self.max_len)


class PackedDecodeCache:
    """Keeps decode-batch packing metadata and gathered KV alive across
    iterations.  See the module docstring for the lifecycle."""

    def __init__(
        self,
        initial_rows: int = 8,
        initial_context: int = 64,
        growth: float = 2.0,
        staging_budget_bytes: int = 256 * 2**20,
    ) -> None:
        if initial_rows <= 0 or initial_context <= 0:
            raise ValueError("initial capacities must be positive")
        if growth <= 1.0:
            raise ValueError(f"growth factor must exceed 1.0, got {growth}")
        self._growth = growth
        self._rows_cap = initial_rows
        self._ctx_cap = initial_context
        self._table = np.zeros((initial_rows, initial_context), dtype=np.int64)
        self._lengths = np.zeros(initial_rows, dtype=np.int64)
        self._rows: List[Optional[_RowState]] = [None] * initial_rows
        self._key_to_row: Dict[Hashable, int] = {}
        self._active = 0
        self._staging: Dict[Hashable, _LayerStaging] = {}
        self._staging_budget = staging_budget_bytes
        self._staging_disabled = False
        self.stats: Dict[str, int] = {
            "packs": 0,
            "extended_rows": 0,
            "reused_rows": 0,
            "repaired_rows": 0,
            "rebuilt_rows": 0,
            "ctx_growths": 0,
            "row_growths": 0,
        }

    # ------------------------------------------------------------------ #
    # capacity management                                                #
    # ------------------------------------------------------------------ #

    def _grow_to(self, current: int, required: int) -> int:
        target = current
        while target < required:
            target = int(target * self._growth) + 1
        return target

    def _ensure_capacity(self, rows: int, ctx: int) -> None:
        if rows > self._rows_cap:
            new_rows = self._grow_to(self._rows_cap, rows)
            table = np.zeros((new_rows, self._ctx_cap), dtype=np.int64)
            table[: self._rows_cap] = self._table
            lengths = np.zeros(new_rows, dtype=np.int64)
            lengths[: self._rows_cap] = self._lengths
            self._table, self._lengths = table, lengths
            self._rows.extend([None] * (new_rows - self._rows_cap))
            for st in self._staging.values():
                k = np.zeros((new_rows,) + st.k.shape[1:], dtype=st.k.dtype)
                v = np.zeros((new_rows,) + st.v.shape[1:], dtype=st.v.dtype)
                g = np.zeros(new_rows, dtype=np.int64)
                k[: self._rows_cap], v[: self._rows_cap] = st.k, st.v
                g[: self._rows_cap] = st.gathered
                st.k, st.v, st.gathered = k, v, g
            self._rows_cap = new_rows
            self.stats["row_growths"] += 1
        if ctx > self._ctx_cap:
            new_ctx = self._grow_to(self._ctx_cap, ctx)
            table = np.zeros((self._rows_cap, new_ctx), dtype=np.int64)
            table[:, : self._ctx_cap] = self._table
            self._table = table
            for st in self._staging.values():
                self._grow_staging_ctx(st, new_ctx)
            self._ctx_cap = new_ctx
            self.stats["ctx_growths"] += 1

    # ------------------------------------------------------------------ #
    # staging layout hooks (overridden by layout-variant subclasses)     #
    # ------------------------------------------------------------------ #

    def _new_staging(
        self,
        tail_shape: Tuple[int, ...],
        k_dtype: np.dtype,
        v_dtype: np.dtype,
    ) -> _LayerStaging:
        """Allocate one layer's staging buffers at current capacity.

        ``tail_shape`` is the per-slot KV shape ``(kv_heads, head_dim)``.
        """
        shape = (self._rows_cap, self._ctx_cap) + tail_shape
        return _LayerStaging(
            k=np.zeros(shape, dtype=k_dtype),
            v=np.zeros(shape, dtype=v_dtype),
            gathered=np.zeros(self._rows_cap, dtype=np.int64),
        )

    def _staging_tail(self, staging: _LayerStaging) -> Tuple[int, ...]:
        """The ``(kv_heads, head_dim)`` tail a staging buffer was built
        for — used to detect cache-shape changes across calls."""
        return staging.k.shape[2:]

    def _grow_staging_ctx(self, st: _LayerStaging, new_ctx: int) -> None:
        """Widen one layer's staging to ``new_ctx`` context columns,
        preserving already-gathered data."""
        shape = (self._rows_cap, new_ctx) + st.k.shape[2:]
        k = np.zeros(shape, dtype=st.k.dtype)
        v = np.zeros(shape, dtype=st.v.dtype)
        k[:, : self._ctx_cap], v[:, : self._ctx_cap] = st.k, st.v
        st.k, st.v = k, v

    def _gather_columns(
        self,
        staging: _LayerStaging,
        stale: np.ndarray,
        done: np.ndarray,
        lengths: np.ndarray,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
    ) -> None:
        """Stage the missing columns of every stale row."""
        deltas = lengths[stale] - done[stale]
        if bool((deltas == 1).all()):
            # Steady-state decode: every stale row grew by one slot —
            # one vectorized gather for the whole batch.
            cols = done[stale]
            slots = self._table[stale, cols]
            staging.k[stale, cols] = k_cache[slots]
            staging.v[stale, cols] = v_cache[slots]
        else:
            for row in stale:
                a, b = int(done[row]), int(lengths[row])
                slots = self._table[row, a:b]
                staging.k[row, a:b] = k_cache[slots]
                staging.v[row, a:b] = v_cache[slots]

    def _staged_views(
        self, staging: _LayerStaging, n: int, max_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The K/V views handed to the attention kernel for this batch."""
        return staging.k[:n, :max_len], staging.v[:n, :max_len]

    def _fallback_gather(
        self, n: int, max_len: int, k_cache: np.ndarray, v_cache: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fresh full gather used when staging is disabled (budget)."""
        table = self._table[:n, :max_len]
        return k_cache[table], v_cache[table]

    # ------------------------------------------------------------------ #
    # packing                                                            #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _row_matches(state: _RowState, source: DecodeSlotSource) -> bool:
        if state.table is not source.table:
            return False
        if state.structure_version != source.table.structure_version:
            return False
        if state.prefix_len != len(source.prefix):
            return False
        if state.prefix_len and state.prefix is not source.prefix:
            return False
        return state.packed_len <= source.total_len

    def _write_row(self, row: int, source: DecodeSlotSource) -> None:
        prefix_len = len(source.prefix)
        total = source.total_len
        if prefix_len:
            self._table[row, :prefix_len] = source.prefix
        self._table[row, prefix_len:total] = source.table.slots_array(
            0, source.table.length
        )
        # Zero the padding so the incremental table stays array-equal to a
        # from-scratch pack (and stale slot ids can never be gathered).
        self._table[row, total:] = 0
        self._lengths[row] = total
        for st in self._staging.values():
            st.gathered[row] = 0

    def pack(self, sources: Sequence[DecodeSlotSource]) -> PackedBatch:
        """Bring the packed state up to date for ``sources`` (one decode
        batch, in execution order) and return a view of it."""
        n = len(sources)
        if n == 0:
            raise ValueError("cannot pack an empty decode batch")
        max_len = max(s.total_len for s in sources)
        self._ensure_capacity(n, max_len)
        self.stats["packs"] += 1

        for i, source in enumerate(sources):
            state = self._rows[i]
            if state is not None and state.key == source.key and self._row_matches(
                state, source
            ):
                total = source.total_len
                if total > state.packed_len:
                    start = state.packed_len - state.prefix_len
                    self._table[i, state.packed_len : total] = (
                        source.table.slots_array(start, source.table.length)
                    )
                    self._lengths[i] = total
                    state.packed_len = total
                    self.stats["extended_rows"] += 1
                else:
                    self.stats["reused_rows"] += 1
            else:
                changed_occupant = state is None or state.key != source.key
                self._write_row(i, source)
                self._rows[i] = _RowState(
                    key=source.key,
                    table=source.table,
                    structure_version=source.table.structure_version,
                    prefix=source.prefix,
                    prefix_len=len(source.prefix),
                    packed_len=source.total_len,
                )
                if changed_occupant:
                    self.stats["rebuilt_rows"] += 1
                else:
                    self.stats["repaired_rows"] += 1

        self._active = n
        self._key_to_row = {s.key: i for i, s in enumerate(sources)}
        return PackedBatch(self, n, max_len)

    def drop(self, key: Hashable) -> None:
        """Forget a request (e.g. an aborted conversation).  The row it
        occupied will be repacked on the next pack that lands there —
        essential when conversation ids are recycled, since a fresh
        :class:`BlockTable` restarts its version counters."""
        row = self._key_to_row.pop(key, None)
        if row is not None:
            state = self._rows[row]
            if state is not None and state.key == key:
                self._rows[row] = None

    def row_index(self, key: Hashable) -> Optional[int]:
        """Row currently holding ``key``, or ``None``.  Schedulers use
        this to order batches so occupants keep their rows."""
        return self._key_to_row.get(key)

    # ------------------------------------------------------------------ #
    # gathered-KV staging                                                #
    # ------------------------------------------------------------------ #

    def _gathered(
        self,
        layer_key: Hashable,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        n: int,
        max_len: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self._staging_disabled:
            return self._fallback_gather(n, max_len, k_cache, v_cache)
        staging = self._staging.get(layer_key)
        tail_shape = k_cache.shape[1:]
        if staging is None or self._staging_tail(staging) != tail_shape or (
            staging.k.dtype != k_cache.dtype
        ):
            itemsize = np.dtype(k_cache.dtype).itemsize
            nelems = self._rows_cap * self._ctx_cap * int(np.prod(tail_shape))
            if nelems * itemsize > self._staging_budget:
                # Too large to stage: fall back to a fresh gather (the
                # packed table itself is still incremental).
                self._staging_disabled = True
                return self._fallback_gather(n, max_len, k_cache, v_cache)
            staging = self._new_staging(tail_shape, k_cache.dtype, v_cache.dtype)
            self._staging[layer_key] = staging

        lengths = self._lengths[:n]
        done = staging.gathered[:n]
        stale = np.nonzero(done < lengths)[0]
        if stale.size:
            self._gather_columns(staging, stale, done, lengths, k_cache, v_cache)
            staging.gathered[:n] = lengths
        return self._staged_views(staging, n, max_len)

    # ------------------------------------------------------------------ #
    # reference                                                          #
    # ------------------------------------------------------------------ #

    @staticmethod
    def pack_from_scratch(
        sources: Sequence[DecodeSlotSource],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The non-incremental oracle: the padded table and lengths built
        fresh, exactly as :func:`batched_single_token_attention` would."""
        n = len(sources)
        lengths = np.array([s.total_len for s in sources], dtype=np.int64)
        width = int(lengths.max()) if n else 0
        table = np.zeros((n, width), dtype=np.int64)
        for i, s in enumerate(sources):
            prefix_len = len(s.prefix)
            if prefix_len:
                table[i, :prefix_len] = s.prefix
            table[i, prefix_len : lengths[i]] = s.table.slots_array(
                0, s.table.length
            )
        return table, lengths


def packed_decode_attention(
    queries: np.ndarray,
    batch: PackedBatch,
    layer_key: Hashable,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    scale: float = 0.0,
) -> np.ndarray:
    """Single-token decode attention over a :class:`PackedBatch`.

    Numerically identical to
    :func:`~repro.kernels.batched.batched_single_token_attention` (it
    shares the same :func:`segment_masked_decode` math); the difference
    is purely where K/V come from — the cache's incremental staging
    buffers instead of a fresh full gather.

    Args:
        queries: ``[n, num_heads, head_dim]`` newest-token queries in row
            order.
        batch: the view returned by the most recent ``pack``.
        layer_key: identifies the (k_cache, v_cache) pair across calls —
            the transformer passes its layer index.

    Returns:
        ``[n, num_heads, head_dim]`` attention outputs.
    """
    n, num_heads, head_dim = queries.shape
    if n != batch.n:
        raise ValueError(f"query batch {n} does not match packed batch {batch.n}")
    kv_heads = k_cache.shape[1]
    group = _grouped_heads(num_heads, kv_heads)
    k, v = batch.gathered(layer_key, k_cache, v_cache)
    q = np.ascontiguousarray(queries).reshape(n, kv_heads, group, head_dim)
    out = segment_masked_decode(q, k, v, batch.lengths, resolve_scale(scale, head_dim))
    return out.reshape(n, num_heads, head_dim)
