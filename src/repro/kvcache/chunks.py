"""Chunk-level bookkeeping of cached conversation context.

Pensieve evicts at the granularity of fixed-size chunks of KV-tokens
(32 tokens in the paper, §4.3.1).  Each conversation's cached context is a
list of :class:`Chunk` records whose locations obey the *layout invariant*
of Figure 5, extended with the optional third (disk) tier: along the token
sequence, locations are monotone in the order

    ``DROPPED``  ->  ``DISK``  ->  ``CPU``  ->  ``GPU_CPU``  ->  ``GPU``

i.e. the earliest tokens are dropped first, then demoted to disk, then
CPU-resident, and the latest tokens sit in the GPU.  ``GPU_CPU`` is the
lazy-reclaim state of §4.3.2: the chunk has been *copied* to the CPU ahead
of time but its GPU slots have not been handed to anyone else yet, so a
returning conversation still hits it for free.  ``DISK`` is the modeled
NVMe tier: colder than CPU (higher restore latency) but warmer than
DROPPED (no recomputation needed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class ChunkLocation(enum.Enum):
    """Where a chunk's KV-tokens currently live."""

    GPU = "gpu"          #: resident in GPU pages only.
    GPU_CPU = "gpu_cpu"  #: copied to CPU, GPU slots not yet reclaimed.
    CPU = "cpu"          #: CPU only; must be swapped in before use.
    DISK = "disk"        #: NVMe tier; must be read back through the host.
    DROPPED = "dropped"  #: discarded; must be recomputed from raw tokens.


#: Layout order used to validate the Figure 5 invariant (disk-extended).
_LAYOUT_RANK = {
    ChunkLocation.DROPPED: 0,
    ChunkLocation.DISK: 1,
    ChunkLocation.CPU: 2,
    ChunkLocation.GPU_CPU: 3,
    ChunkLocation.GPU: 4,
}


@dataclass
class Chunk:
    """One eviction unit: a contiguous run of KV-tokens.

    Attributes:
        conv_id: owning conversation.
        index: chunk ordinal within the conversation (0 = earliest).
        start: first token position covered (inclusive).
        end: one past the last token position covered.
        location: current tier.
    """

    conv_id: int
    index: int
    start: int
    end: int
    location: ChunkLocation = ChunkLocation.GPU

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid chunk range [{self.start}, {self.end})")

    @property
    def num_tokens(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"Chunk(conv={self.conv_id}, #{self.index}, "
            f"[{self.start},{self.end}), {self.location.value})"
        )


class ConversationCache:
    """Cached-context state of one conversation.

    Tracks the chunk list, the conversation's last-active time (the ``T``
    denominator of the retention value) and whether the conversation is
    *pinned* (a request is in flight, so its chunks may not be evicted).
    """

    def __init__(self, conv_id: int, chunk_size: int, now: float = 0.0) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.conv_id = conv_id
        self.chunk_size = chunk_size
        self.chunks: List[Chunk] = []
        self.last_active = now
        self.pinned = False

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def total_tokens(self) -> int:
        """Total context length covered by the chunk list."""
        return self.chunks[-1].end if self.chunks else 0

    def tokens_in(self, *locations: ChunkLocation) -> int:
        """Number of tokens whose chunks are in any of ``locations``."""
        wanted = set(locations)
        return sum(c.num_tokens for c in self.chunks if c.location in wanted)

    def chunks_in(self, *locations: ChunkLocation) -> List[Chunk]:
        """Chunks in any of ``locations``, in sequence order."""
        wanted = set(locations)
        return [c for c in self.chunks if c.location in wanted]

    def segments(self) -> Dict[ChunkLocation, int]:
        """Token counts per location (the Figure 5 decomposition)."""
        out = {loc: 0 for loc in ChunkLocation}
        for chunk in self.chunks:
            out[chunk.location] += chunk.num_tokens
        return out

    def extend_to(self, total_tokens: int) -> List[Chunk]:
        """Grow the chunk list to cover ``total_tokens`` context tokens.

        New coverage starts where the current list ends; a partial tail
        chunk is first completed, then full chunks are appended, ending
        with a partial tail if needed.  All new chunks are born in GPU.

        Returns the chunks that were created or extended.
        """
        if total_tokens < self.total_tokens:
            raise ValueError(
                f"cannot shrink coverage: have {self.total_tokens}, "
                f"asked for {total_tokens}"
            )
        touched: List[Chunk] = []
        # Complete a partial tail chunk first.
        if self.chunks:
            tail = self.chunks[-1]
            if tail.num_tokens < self.chunk_size and tail.end < total_tokens:
                if tail.location is not ChunkLocation.GPU:
                    raise ValueError(
                        f"cannot extend non-GPU tail chunk {tail!r}"
                    )
                tail.end = min(tail.start + self.chunk_size, total_tokens)
                touched.append(tail)
        pos = self.total_tokens
        while pos < total_tokens:
            end = min(pos + self.chunk_size, total_tokens)
            chunk = Chunk(
                conv_id=self.conv_id,
                index=len(self.chunks),
                start=pos,
                end=end,
                location=ChunkLocation.GPU,
            )
            self.chunks.append(chunk)
            touched.append(chunk)
            pos = end
        return touched

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------

    def check_layout(self) -> None:
        """Assert the Figure 5 monotone-layout invariant.

        Raises:
            AssertionError: if any chunk is in a "later" tier than a chunk
                that follows it in the sequence.
        """
        last_rank = 0
        for chunk in self.chunks:
            rank = _LAYOUT_RANK[chunk.location]
            assert rank >= last_rank, (
                f"layout invariant violated at {chunk!r}: "
                f"{[str(c.location.value) for c in self.chunks]}"
            )
            last_rank = rank
        for i, chunk in enumerate(self.chunks):
            assert chunk.index == i, f"chunk index mismatch at {chunk!r}"
            expected_start = self.chunks[i - 1].end if i else 0
            assert chunk.start == expected_start, f"gap before {chunk!r}"

    # ------------------------------------------------------------------
    # Tier-transition helpers (called by the manager)
    # ------------------------------------------------------------------

    def frontier(self, *locations: ChunkLocation) -> Optional[Chunk]:
        """Earliest chunk currently in any of ``locations``."""
        wanted = set(locations)
        for chunk in self.chunks:
            if chunk.location in wanted:
                return chunk
        return None

    def rear(self, *locations: ChunkLocation) -> Optional[Chunk]:
        """Latest chunk currently in any of ``locations``."""
        wanted = set(locations)
        for chunk in reversed(self.chunks):
            if chunk.location in wanted:
                return chunk
        return None

    def gpu_segment_bounds(self) -> Tuple[int, int]:
        """Token range ``[start, end)`` of GPU-resident chunks
        (``GPU`` or ``GPU_CPU``); ``(total, total)`` when none."""
        start = None
        for chunk in self.chunks:
            if chunk.location in (ChunkLocation.GPU, ChunkLocation.GPU_CPU):
                if start is None:
                    start = chunk.start
        if start is None:
            total = self.total_tokens
            return (total, total)
        return (start, self.total_tokens)

    def __repr__(self) -> str:
        seg = self.segments()
        return (
            f"ConversationCache(conv={self.conv_id}, total={self.total_tokens}, "
            f"dropped={seg[ChunkLocation.DROPPED]}, disk={seg[ChunkLocation.DISK]}, "
            f"cpu={seg[ChunkLocation.CPU]}, gpu_cpu={seg[ChunkLocation.GPU_CPU]}, "
            f"gpu={seg[ChunkLocation.GPU]}, pinned={self.pinned})"
        )
