"""Numpy tensor storage for the two cache tiers.

:class:`KVStorage` is the "GPU memory": per-layer K and V arrays indexed by
flat slot index (page id x page size + offset).  :class:`CpuChunkStore` is
the "CPU memory": an associative store of evicted chunks keyed by
``(conversation id, chunk index)``.

Only the functional layer allocates these; the performance simulation runs
the identical bookkeeping code with ``storage=None``.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.errors import ChunkCorruptionError
from repro.faults.plan import FaultPlan, FaultSite
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # avoids a circular import with repro.model
    from repro.model.config import ModelConfig


class KVStorage:
    """Per-layer K/V slot arrays backing a :class:`~repro.kvcache.pages.PagePool`.

    Shapes are ``[num_layers, num_slots, num_kv_heads, head_dim]``.  Slots
    are written through :meth:`write` during QKV projection and read (by
    flat slot index, in arbitrary order) by the paged attention kernels.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_slots: int,
        dtype: np.dtype = np.float32,
    ) -> None:
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        self.config = config
        self.num_slots = num_slots
        shape = (config.num_layers, num_slots, config.num_kv_heads, config.head_dim)
        self.k = np.zeros(shape, dtype=dtype)
        self.v = np.zeros(shape, dtype=dtype)

    def write(
        self,
        layer: int,
        slots: Sequence[int],
        k: np.ndarray,
        v: np.ndarray,
    ) -> None:
        """Store K/V rows for ``slots`` in ``layer``.

        ``k`` and ``v`` have shape ``[len(slots), num_kv_heads, head_dim]``.
        """
        idx = np.asarray(slots, dtype=np.int64)
        if k.shape[0] != len(idx) or v.shape[0] != len(idx):
            raise ValueError(
                f"K/V row count {k.shape[0]}/{v.shape[0]} != slot count {len(idx)}"
            )
        self.k[layer, idx] = k
        self.v[layer, idx] = v

    def read(
        self, layer: int, slots: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather K/V rows for ``slots`` in ``layer`` (logical order)."""
        idx = np.asarray(slots, dtype=np.int64)
        return self.k[layer, idx], self.v[layer, idx]

    def read_all_layers(
        self, slots: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather K/V rows for ``slots`` across all layers at once.

        Returns arrays of shape ``[num_layers, len(slots), kv_heads, head_dim]``.
        """
        idx = np.asarray(slots, dtype=np.int64)
        return self.k[:, idx], self.v[:, idx]

    def write_all_layers(
        self, slots: Sequence[int], k: np.ndarray, v: np.ndarray
    ) -> None:
        """Scatter K/V rows for ``slots`` across all layers at once."""
        idx = np.asarray(slots, dtype=np.int64)
        self.k[:, idx] = k
        self.v[:, idx] = v


def _checksum(k: np.ndarray, v: np.ndarray) -> int:
    """CRC32 over a chunk's K and V bytes (cheap end-to-end integrity)."""
    return zlib.crc32(v.tobytes(), zlib.crc32(k.tobytes()))


class CpuChunkStore:
    """Host-memory store of evicted KV chunks.

    Each entry holds the all-layer K/V tensors of one chunk, together with
    a CRC32 checksum computed at insertion; every read re-verifies it, so
    host-side corruption (real or injected through ``fault_plan``) is
    detected before the data can reach GPU pages.  Capacity is expressed
    in tokens; callers are responsible for making room (the two-tier
    manager drops chunks by policy before inserting).

    ``verify_on_read=False`` skips the per-read CRC re-check (checksums
    are still computed at insertion), trading integrity detection for
    read bandwidth — the benchmark harness uses it to price the check.
    Chaos/fault testing keeps the default ``True``: the ``CPU_READ``
    fault site lives inside the verification path.
    """

    def __init__(
        self,
        capacity_tokens: int,
        fault_plan: Optional[FaultPlan] = None,
        verify_on_read: bool = True,
    ) -> None:
        if capacity_tokens < 0:
            raise ValueError(f"capacity_tokens must be >= 0, got {capacity_tokens}")
        self.capacity_tokens = capacity_tokens
        self.fault_plan = fault_plan
        self.verify_on_read = verify_on_read
        self._entries: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._tokens: Dict[Tuple[int, int], int] = {}
        self._checksums: Dict[Tuple[int, int], int] = {}
        self.used_tokens = 0
        #: Observability sink: byte counters for inserts/reads/drops plus
        #: an occupancy gauge, all no-ops under the shared null tracer.
        self.tracer = NULL_TRACER

    def put(
        self,
        conv_id: int,
        chunk_index: int,
        k: np.ndarray,
        v: np.ndarray,
    ) -> None:
        """Insert one chunk's K/V data (arrays ``[layers, tokens, heads, dim]``).

        Raises:
            MemoryError: if the chunk does not fit.
            KeyError: if the chunk is already stored.
        """
        key = (conv_id, chunk_index)
        if key in self._entries:
            raise KeyError(f"chunk {key} already in CPU store")
        tokens = k.shape[1]
        if self.used_tokens + tokens > self.capacity_tokens:
            raise MemoryError(
                f"CPU store full: {self.used_tokens}+{tokens} > {self.capacity_tokens}"
            )
        self._entries[key] = (k.copy(), v.copy())
        self._tokens[key] = tokens
        self._checksums[key] = _checksum(k, v)
        self.used_tokens += tokens
        if self.tracer.enabled:
            self.tracer.count("cpu_store.put_bytes", k.nbytes + v.nbytes)
            self.tracer.count("cpu_store.put_chunks")
            self.tracer.gauge("cpu_store.used_tokens", self.used_tokens)

    def _verify(self, key: Tuple[int, int]) -> None:
        """Check a stored chunk against its insertion-time checksum.

        An armed fault plan corrupts the stored bytes first, so the
        verification exercises the real detection path end to end.

        Raises:
            ChunkCorruptionError: on checksum mismatch.
        """
        k, v = self._entries[key]
        if self.fault_plan is not None and self.fault_plan.fires(FaultSite.CPU_READ):
            k.flat[0] += 1.0  # single bit-flip-equivalent perturbation
        if _checksum(k, v) != self._checksums[key]:
            if self.tracer.enabled:
                self.tracer.count("cpu_store.corrupt_chunks")
                self.tracer.instant(
                    "cpu_store_corrupt", track="cache",
                    conv_id=key[0], chunk=key[1],
                )
            raise ChunkCorruptionError(conv_id=key[0], chunk_index=key[1])

    def get(self, conv_id: int, chunk_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch a chunk's K/V data without removing it.

        Raises:
            ChunkCorruptionError: if the chunk fails its checksum (the
                entry stays in the store so recovery can invalidate it
                through the normal eviction path).
        """
        key = (conv_id, chunk_index)
        if self.verify_on_read:
            self._verify(key)
        return self._entries[key]

    def pop(self, conv_id: int, chunk_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Remove and return a chunk's K/V data.

        Raises:
            ChunkCorruptionError: if the chunk fails its checksum; the
                entry is retained so the caller's recovery can drop it
                via the cache manager's invalidation path.
        """
        key = (conv_id, chunk_index)
        if self.verify_on_read:
            self._verify(key)
        data = self._entries.pop(key)
        self._checksums.pop(key)
        self.used_tokens -= self._tokens.pop(key)
        if self.tracer.enabled:
            self.tracer.count("cpu_store.read_bytes", data[0].nbytes + data[1].nbytes)
            self.tracer.gauge("cpu_store.used_tokens", self.used_tokens)
        return data

    def drop(self, conv_id: int, chunk_index: int) -> None:
        """Discard a chunk (CPU-tier eviction)."""
        key = (conv_id, chunk_index)
        del self._entries[key]
        self._checksums.pop(key)
        dropped = self._tokens.pop(key)
        self.used_tokens -= dropped
        if self.tracer.enabled:
            self.tracer.count("cpu_store.dropped_tokens", dropped)
            self.tracer.gauge("cpu_store.used_tokens", self.used_tokens)

    def contains(self, conv_id: int, chunk_index: int) -> bool:
        return (conv_id, chunk_index) in self._entries

    def chunks_of(self, conv_id: int) -> List[int]:
        """Chunk indices stored for one conversation, ascending."""
        return sorted(ci for c, ci in self._entries if c == conv_id)

    @property
    def free_tokens(self) -> int:
        return self.capacity_tokens - self.used_tokens

    def __len__(self) -> int:
        return len(self._entries)
