"""Numpy tensor storage for the cache tiers.

:class:`KVStorage` is the "GPU memory": per-layer K and V arrays indexed by
flat slot index (page id x page size + offset).  :class:`CpuChunkStore` is
the "CPU memory" and :class:`DiskChunkStore` the "NVMe tier": associative
stores of evicted chunks keyed by ``(conversation id, chunk index)``, both
built on the same :class:`_ChunkStoreBase` so the two tiers share one
verified data path (per-chunk CRC32, coalesced batch insert/remove,
fault-injection hooks) and differ only in their counter namespace and
fault site.

Demotion between tiers uses :meth:`_ChunkStoreBase.transfer_to`, which
moves a chunk *with its insertion-time checksum* — the CRC computed when
the chunk first left the GPU travels to disk unchanged, so corruption
introduced at any hop is still caught at the final read (end-to-end
integrity, not per-tier integrity).

Only the functional layer allocates these; the performance simulation runs
the identical bookkeeping code with ``storage=None``.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.errors import ChunkCorruptionError
from repro.faults.plan import FaultPlan, FaultSite
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # avoids a circular import with repro.model
    from repro.model.config import ModelConfig


class KVStorage:
    """Per-layer K/V slot arrays backing a :class:`~repro.kvcache.pages.PagePool`.

    Shapes are ``[num_layers, num_slots, num_kv_heads, head_dim]``.  Slots
    are written through :meth:`write` during QKV projection and read (by
    flat slot index, in arbitrary order) by the paged attention kernels.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_slots: int,
        dtype: np.dtype = np.float32,
    ) -> None:
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        self.config = config
        self.num_slots = num_slots
        shape = (config.num_layers, num_slots, config.num_kv_heads, config.head_dim)
        self.k = np.zeros(shape, dtype=dtype)
        self.v = np.zeros(shape, dtype=dtype)
        # Persistent scratch for write_slots_stacked: grown geometrically
        # to the largest transfer seen, then reused, so steady-state
        # coalesced swap-ins allocate nothing.
        self._stack_idx = np.empty(0, dtype=np.int64)
        self._stack_k = np.empty((config.num_layers, 0) + shape[2:], dtype=dtype)
        self._stack_v = np.empty((config.num_layers, 0) + shape[2:], dtype=dtype)

    def _stacked_scratch(
        self, total: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scratch views holding ``total`` stacked tokens, reallocating
        only when the capacity high-water mark moves."""
        if self._stack_idx.shape[0] < total:
            cap = max(total, 2 * self._stack_idx.shape[0])
            tail = self.k.shape[2:]
            layers = self.k.shape[0]
            self._stack_idx = np.empty(cap, dtype=np.int64)
            self._stack_k = np.empty((layers, cap) + tail, dtype=self.k.dtype)
            self._stack_v = np.empty((layers, cap) + tail, dtype=self.v.dtype)
        return (
            self._stack_idx[:total],
            self._stack_k[:, :total],
            self._stack_v[:, :total],
        )

    def write(
        self,
        layer: int,
        slots: Sequence[int],
        k: np.ndarray,
        v: np.ndarray,
    ) -> None:
        """Store K/V rows for ``slots`` in ``layer``.

        ``k`` and ``v`` have shape ``[len(slots), num_kv_heads, head_dim]``.
        """
        idx = np.asarray(slots, dtype=np.int64)
        if k.shape[0] != len(idx) or v.shape[0] != len(idx):
            raise ValueError(
                f"K/V row count {k.shape[0]}/{v.shape[0]} != slot count {len(idx)}"
            )
        self.k[layer, idx] = k
        self.v[layer, idx] = v

    def read(
        self, layer: int, slots: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather K/V rows for ``slots`` in ``layer`` (logical order)."""
        idx = np.asarray(slots, dtype=np.int64)
        return self.k[layer, idx], self.v[layer, idx]

    def read_all_layers(
        self, slots: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather K/V rows for ``slots`` across all layers at once.

        Returns arrays of shape ``[num_layers, len(slots), kv_heads, head_dim]``.
        """
        idx = np.asarray(slots, dtype=np.int64)
        return self.k[:, idx], self.v[:, idx]

    def write_all_layers(
        self, slots: Sequence[int], k: np.ndarray, v: np.ndarray
    ) -> None:
        """Scatter K/V rows for ``slots`` across all layers at once."""
        idx = np.asarray(slots, dtype=np.int64)
        self.k[:, idx] = k
        self.v[:, idx] = v

    def read_slots_stacked(
        self, slot_groups: Sequence[Sequence[int]]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Gather several slot groups (e.g. swap-out chunks) in ONE
        all-layer fancy-index over the concatenated indices.

        Returns one ``(k, v)`` pair per group, each of shape
        ``[num_layers, len(group), kv_heads, head_dim]`` — views into
        the stacked gather, split back along the slot axis.  Equivalent
        to calling :meth:`read_all_layers` per group, but the cache is
        traversed once for the whole transfer (the coalesced data path
        of the two-tier manager).
        """
        sizes = [len(group) for group in slot_groups]
        if not sizes:
            return []
        idx = np.concatenate(
            [np.asarray(group, dtype=np.int64) for group in slot_groups]
        )
        k = self.k[:, idx]
        v = self.v[:, idx]
        bounds = np.cumsum([0] + sizes)
        return [
            (k[:, bounds[i] : bounds[i + 1]], v[:, bounds[i] : bounds[i + 1]])
            for i in range(len(sizes))
        ]

    def write_slots_stacked(
        self,
        slot_groups: Sequence[Sequence[int]],
        kvs: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Scatter several chunks' ``(k, v)`` data in ONE all-layer
        fancy-index over the concatenated indices (coalesced swap-in).

        ``kvs[i]`` carries group ``i``'s arrays, each
        ``[num_layers, len(slot_groups[i]), kv_heads, head_dim]``.
        Groups must reference distinct slots (chunk slot sets are
        disjoint by construction).
        """
        if len(slot_groups) != len(kvs):
            raise ValueError(
                f"{len(slot_groups)} slot groups but {len(kvs)} K/V pairs"
            )
        if not slot_groups:
            return
        groups = [np.asarray(group, dtype=np.int64) for group in slot_groups]
        for group, (k, v) in zip(groups, kvs):
            if k.shape[1] != len(group) or v.shape[1] != len(group):
                raise ValueError(
                    f"K/V token count {k.shape[1]}/{v.shape[1]} != "
                    f"slot count {len(group)}"
                )
        # Fill persistent scratch instead of np.concatenate-ing three
        # temporaries per call: the swap bench asserts the steady state
        # allocates nothing.
        total = sum(len(group) for group in groups)
        idx, stack_k, stack_v = self._stacked_scratch(total)
        offset = 0
        for group, (k, v) in zip(groups, kvs):
            end = offset + len(group)
            idx[offset:end] = group
            stack_k[:, offset:end] = k
            stack_v[:, offset:end] = v
            offset = end
        self.k[:, idx] = stack_k
        self.v[:, idx] = stack_v


def _checksum(k: np.ndarray, v: np.ndarray) -> int:
    """CRC32 over a chunk's K and V bytes (cheap end-to-end integrity)."""
    return zlib.crc32(v.tobytes(), zlib.crc32(k.tobytes()))


class _ChunkStoreBase:
    """Associative store of evicted KV chunks shared by the CPU and disk
    tiers.

    Each entry holds the all-layer K/V tensors of one chunk, together with
    a CRC32 checksum computed when the chunk *entered the stored
    hierarchy*; every read re-verifies it, so corruption (real or injected
    through ``fault_plan``) is detected before the data can reach GPU
    pages.  Capacity is expressed in tokens; callers are responsible for
    making room (the tiered manager drops or demotes chunks by policy
    before inserting).

    ``verify_on_read=False`` skips the per-read CRC re-check (checksums
    are still computed at insertion), trading integrity detection for
    read bandwidth — the benchmark harness uses it to price the check.
    Chaos/fault testing keeps the default ``True``: each tier's fault
    site (``CPU_READ`` / ``DISK_READ``) lives inside the verification
    path.

    Subclasses set :attr:`_LABEL` (human-readable tier name used in error
    messages), :attr:`_PREFIX` (tracer counter namespace) and
    :attr:`_FAULT_SITE` (which :class:`FaultSite` the verification path
    draws from).
    """

    _LABEL = "chunk"
    _PREFIX = "chunk_store"
    _FAULT_SITE: Optional[FaultSite] = None

    def __init__(
        self,
        capacity_tokens: int,
        fault_plan: Optional[FaultPlan] = None,
        verify_on_read: bool = True,
    ) -> None:
        if capacity_tokens < 0:
            raise ValueError(f"capacity_tokens must be >= 0, got {capacity_tokens}")
        self.capacity_tokens = capacity_tokens
        self.fault_plan = fault_plan
        self.verify_on_read = verify_on_read
        self._entries: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._tokens: Dict[Tuple[int, int], int] = {}
        self._checksums: Dict[Tuple[int, int], int] = {}
        self.used_tokens = 0
        #: Observability sink: byte counters for inserts/reads/drops plus
        #: an occupancy gauge, all no-ops under the shared null tracer.
        self.tracer = NULL_TRACER

    def put(
        self,
        conv_id: int,
        chunk_index: int,
        k: np.ndarray,
        v: np.ndarray,
    ) -> None:
        """Insert one chunk's K/V data (arrays ``[layers, tokens, heads, dim]``).

        Raises:
            MemoryError: if the chunk does not fit.
            KeyError: if the chunk is already stored.
        """
        key = (conv_id, chunk_index)
        if key in self._entries:
            raise KeyError(f"chunk {key} already in {self._LABEL} store")
        tokens = k.shape[1]
        if self.used_tokens + tokens > self.capacity_tokens:
            raise MemoryError(
                f"{self._LABEL} store full: "
                f"{self.used_tokens}+{tokens} > {self.capacity_tokens}"
            )
        self._entries[key] = (k.copy(), v.copy())
        self._tokens[key] = tokens
        self._checksums[key] = _checksum(k, v)
        self.used_tokens += tokens
        if self.tracer.enabled:
            self.tracer.count(f"{self._PREFIX}.put_bytes", k.nbytes + v.nbytes)
            self.tracer.count(f"{self._PREFIX}.put_chunks")
            self.tracer.gauge(f"{self._PREFIX}.used_tokens", self.used_tokens)

    def put_many(
        self,
        entries: Sequence[Tuple[int, int, np.ndarray, np.ndarray]],
    ) -> None:
        """Insert several chunks as one coalesced transfer.

        ``entries`` holds ``(conv_id, chunk_index, k, v)`` tuples.  The
        insert is atomic: duplicates and capacity are checked for the
        whole batch up front, so either every chunk lands or none does.
        Counter totals (``<prefix>.put_bytes`` / ``put_chunks`` /
        ``used_tokens``) match ``len(entries)`` individual :meth:`put`
        calls exactly — coalescing changes the number of transfers, not
        the accounting.

        Raises:
            MemoryError: if the batch does not fit (nothing inserted).
            KeyError: on a duplicate chunk (nothing inserted).
        """
        entries = list(entries)
        keys = [(conv_id, chunk_index) for conv_id, chunk_index, _, _ in entries]
        if len(set(keys)) != len(keys):
            raise KeyError(f"duplicate chunks in put_many batch: {keys}")
        for key in keys:
            if key in self._entries:
                raise KeyError(f"chunk {key} already in {self._LABEL} store")
        total_tokens = sum(k.shape[1] for _, _, k, _ in entries)
        if self.used_tokens + total_tokens > self.capacity_tokens:
            raise MemoryError(
                f"{self._LABEL} store full: {self.used_tokens}+{total_tokens} > "
                f"{self.capacity_tokens}"
            )
        total_bytes = 0
        for (key, (_, _, k, v)) in zip(keys, entries):
            self._entries[key] = (k.copy(), v.copy())
            self._tokens[key] = k.shape[1]
            self._checksums[key] = _checksum(k, v)
            self.used_tokens += k.shape[1]
            total_bytes += k.nbytes + v.nbytes
        if self.tracer.enabled and entries:
            self.tracer.count(f"{self._PREFIX}.put_bytes", total_bytes)
            self.tracer.count(f"{self._PREFIX}.put_chunks", len(entries))
            self.tracer.gauge(f"{self._PREFIX}.used_tokens", self.used_tokens)

    def _verify(self, key: Tuple[int, int]) -> None:
        """Check a stored chunk against its insertion-time checksum.

        An armed fault plan corrupts the stored bytes first, so the
        verification exercises the real detection path end to end.

        Raises:
            ChunkCorruptionError: on checksum mismatch.
        """
        k, v = self._entries[key]
        if (
            self.fault_plan is not None
            and self._FAULT_SITE is not None
            and self.fault_plan.fires(self._FAULT_SITE)
        ):
            k.flat[0] += 1.0  # single bit-flip-equivalent perturbation
        if _checksum(k, v) != self._checksums[key]:
            if self.tracer.enabled:
                self.tracer.count(f"{self._PREFIX}.corrupt_chunks")
                self.tracer.instant(
                    f"{self._PREFIX}_corrupt", track="cache",
                    conv_id=key[0], chunk=key[1],
                )
            raise ChunkCorruptionError(conv_id=key[0], chunk_index=key[1])

    def get(self, conv_id: int, chunk_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch a chunk's K/V data without removing it.

        Raises:
            ChunkCorruptionError: if the chunk fails its checksum (the
                entry stays in the store so recovery can invalidate it
                through the normal eviction path).
        """
        key = (conv_id, chunk_index)
        if self.verify_on_read:
            self._verify(key)
        return self._entries[key]

    def pop(self, conv_id: int, chunk_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Remove and return a chunk's K/V data.

        Raises:
            ChunkCorruptionError: if the chunk fails its checksum; the
                entry is retained so the caller's recovery can drop it
                via the cache manager's invalidation path.
        """
        key = (conv_id, chunk_index)
        if self.verify_on_read:
            self._verify(key)
        data = self._entries.pop(key)
        self._checksums.pop(key)
        self.used_tokens -= self._tokens.pop(key)
        if self.tracer.enabled:
            self.tracer.count(
                f"{self._PREFIX}.read_bytes", data[0].nbytes + data[1].nbytes
            )
            self.tracer.gauge(f"{self._PREFIX}.used_tokens", self.used_tokens)
        return data

    def pop_many(
        self, conv_id: int, chunk_indices: Sequence[int]
    ) -> Tuple[List[Tuple[int, Tuple[np.ndarray, np.ndarray]]], List[int]]:
        """Remove several chunks of one conversation as one coalesced
        transfer (the swap-in restore path).

        Every chunk is verified exactly as :meth:`pop` would — the same
        per-chunk CRC re-check and tier fault-injection site —
        but a corrupt chunk is *reported* instead of raised (its entry
        stays in the store, exactly like a failed :meth:`pop`), so the
        caller can degrade just the affected prefix while the healthy
        chunks still move in one batch.

        Returns:
            ``(popped, corrupt)``: ``popped`` is ``(chunk_index, (k, v))``
            for each healthy chunk, in request order; ``corrupt`` lists
            the chunk indices that failed verification.  Counter totals
            (``<prefix>.read_bytes`` / ``corrupt_chunks`` /
            ``used_tokens``) match per-chunk :meth:`pop` calls exactly.
        """
        popped: List[Tuple[int, Tuple[np.ndarray, np.ndarray]]] = []
        corrupt: List[int] = []
        read_bytes = 0
        for chunk_index in chunk_indices:
            key = (conv_id, chunk_index)
            if self.verify_on_read:
                try:
                    self._verify(key)
                except ChunkCorruptionError:
                    corrupt.append(chunk_index)
                    continue
            data = self._entries.pop(key)
            self._checksums.pop(key)
            self.used_tokens -= self._tokens.pop(key)
            read_bytes += data[0].nbytes + data[1].nbytes
            popped.append((chunk_index, data))
        if self.tracer.enabled and popped:
            self.tracer.count(f"{self._PREFIX}.read_bytes", read_bytes)
            self.tracer.gauge(f"{self._PREFIX}.used_tokens", self.used_tokens)
        return popped, corrupt

    def drop(self, conv_id: int, chunk_index: int) -> None:
        """Discard a chunk (tier eviction)."""
        key = (conv_id, chunk_index)
        del self._entries[key]
        self._checksums.pop(key)
        dropped = self._tokens.pop(key)
        self.used_tokens -= dropped
        if self.tracer.enabled:
            self.tracer.count(f"{self._PREFIX}.dropped_tokens", dropped)
            self.tracer.gauge(f"{self._PREFIX}.used_tokens", self.used_tokens)

    def transfer_to(
        self, dst: "_ChunkStoreBase", conv_id: int, chunk_index: int
    ) -> int:
        """Move one chunk — data *and its original checksum* — into ``dst``
        (the CPU→disk demotion path).

        The data is handed over without re-verification and the CRC is
        carried rather than recomputed: a chunk corrupted while resident
        in this tier is therefore still caught when it is eventually read
        from ``dst`` (end-to-end integrity across demotion hops).  Arrays
        move by reference; ownership passes to ``dst``.

        Returns the number of bytes moved (for transfer accounting).

        Raises:
            KeyError: if ``dst`` already holds the chunk (nothing moves).
            MemoryError: if ``dst`` cannot fit the chunk (nothing moves).
        """
        key = (conv_id, chunk_index)
        if key in dst._entries:
            raise KeyError(f"chunk {key} already in {dst._LABEL} store")
        k, v = self._entries[key]
        tokens = self._tokens[key]
        if dst.used_tokens + tokens > dst.capacity_tokens:
            raise MemoryError(
                f"{dst._LABEL} store full: {dst.used_tokens}+{tokens} > "
                f"{dst.capacity_tokens}"
            )
        checksum = self._checksums[key]
        del self._entries[key]
        self._checksums.pop(key)
        self.used_tokens -= self._tokens.pop(key)
        dst._entries[key] = (k, v)
        dst._tokens[key] = tokens
        dst._checksums[key] = checksum
        dst.used_tokens += tokens
        nbytes = k.nbytes + v.nbytes
        if self.tracer.enabled:
            self.tracer.count(f"{self._PREFIX}.demoted_tokens", tokens)
            self.tracer.gauge(f"{self._PREFIX}.used_tokens", self.used_tokens)
        if dst.tracer.enabled:
            dst.tracer.count(f"{dst._PREFIX}.put_bytes", nbytes)
            dst.tracer.count(f"{dst._PREFIX}.put_chunks")
            dst.tracer.gauge(f"{dst._PREFIX}.used_tokens", dst.used_tokens)
        return nbytes

    def nbytes_of(self, conv_id: int, chunk_index: int) -> int:
        """Stored byte size of one chunk (no read, no verification)."""
        k, v = self._entries[(conv_id, chunk_index)]
        return k.nbytes + v.nbytes

    def contains(self, conv_id: int, chunk_index: int) -> bool:
        return (conv_id, chunk_index) in self._entries

    def chunks_of(self, conv_id: int) -> List[int]:
        """Chunk indices stored for one conversation, ascending."""
        return sorted(ci for c, ci in self._entries if c == conv_id)

    def checksum_of(self, conv_id: int, chunk_index: int) -> int:
        """Stored insertion-time CRC of one chunk (test/audit hook)."""
        return self._checksums[(conv_id, chunk_index)]

    @property
    def free_tokens(self) -> int:
        return self.capacity_tokens - self.used_tokens

    def __len__(self) -> int:
        return len(self._entries)


class CpuChunkStore(_ChunkStoreBase):
    """Host-memory store of evicted KV chunks (Tier 2).

    The ``CPU_READ`` fault site lives inside its verification path;
    counters are published under the ``cpu_store.*`` namespace.
    """

    _LABEL = "CPU"
    _PREFIX = "cpu_store"
    _FAULT_SITE = FaultSite.CPU_READ


class DiskChunkStore(_ChunkStoreBase):
    """Modeled-NVMe store of demoted KV chunks (Tier 3).

    Functionally identical to :class:`CpuChunkStore` — the timing
    difference lives in :class:`repro.gpu.nvme.NvmeEngine`, which the
    discrete-event engine consults, and the *placement* difference lives
    in the tiered manager's cross-tier retention policy.  The
    ``DISK_READ`` fault site lives inside its verification path; counters
    are published under the ``disk_store.*`` namespace.
    """

    _LABEL = "disk"
    _PREFIX = "disk_store"
    _FAULT_SITE = FaultSite.DISK_READ
