"""vAttention-style contiguous virtual extents (the ``contiguous`` backend).

Pensieve's paged layout (§4.2) buys allocation flexibility by letting a
sequence's tokens land on arbitrary pages; the price is that every
kernel must gather through a block table.  vAttention (PAPERS.md) makes
the opposite trade: reserve a *contiguous virtual* extent per sequence
up front and commit physical pages into it on demand, so logical
position ``i`` always lives at flat slot ``base + i`` and kernels read
plain contiguous ranges.

:class:`ContiguousArena` reproduces that trick with the repo's own
machinery.  Slot *addresses* come from a per-conversation extent inside
one enlarged virtual span (the backing :class:`~repro.kvcache.storage.KVStorage`
is sized to the span; ``np.zeros`` means the OS commits physical memory
lazily, which is literally vAttention's reservation trick in host
memory).  Physical-capacity *accounting* still draws page grants from
the shared :class:`~repro.kvcache.pages.PagePool` — a grant carries no
address, it is a commit ticket — so capacity pressure surfaces as the
same :class:`~repro.kvcache.pages.PagePoolExhausted` the serving stack
already turns into swap-out/suspension decisions.

The arena keeps the counters the paper's paged-vs-contiguous tradeoff
discussion takes for granted:

- ``commits`` / ``decommits`` — page-granularity commit events;
- ``committed_pages`` — live commit tickets (reconciles exactly with
  ``pool.num_allocated_pages`` when the pool is arena-only; pinned by
  the random-walk property test in ``tests/kvcache/test_contiguous.py``);
- ``commit_waste_slots`` — committed-but-unoccupied slots (internal
  fragmentation of the page-granular commit);
- ``reserved_uncommitted_tokens`` — reserved virtual space with no
  physical backing (the external-fragmentation figure a true paged
  allocator never pays).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.kvcache.pages import BlockTable, PagePool, PagePoolExhausted

__all__ = ["ContiguousArena", "ContiguousBlockTable"]


class ContiguousArena:
    """A fixed span of per-conversation contiguous virtual extents.

    Args:
        pool: the shared page pool used for *commit accounting only* —
            slot indices never come from it.
        reserve_tokens: virtual extent size per table, in tokens; must be
            a positive multiple of the pool's page size.  Size it to the
            model's ``max_position`` so reservation overflow is
            unreachable in serving.
        max_extents: how many extents the span holds (conversations that
            can be live at once, plus one for the pinned system prompt).
    """

    def __init__(
        self, pool: PagePool, reserve_tokens: int, max_extents: int
    ) -> None:
        if reserve_tokens <= 0:
            raise ValueError(
                f"reserve_tokens must be positive, got {reserve_tokens}"
            )
        if reserve_tokens % pool.page_size != 0:
            raise ValueError(
                f"reserve_tokens ({reserve_tokens}) must be a multiple of "
                f"the page size ({pool.page_size})"
            )
        if max_extents <= 0:
            raise ValueError(f"max_extents must be positive, got {max_extents}")
        self.pool = pool
        self.reserve_tokens = reserve_tokens
        self.max_extents = max_extents
        # LIFO base list, low addresses handed out first.
        self._free_bases: List[int] = [
            base * reserve_tokens for base in range(max_extents - 1, -1, -1)
        ]
        self.commits = 0
        self.decommits = 0
        self.resident_tokens = 0
        self.extents_reserved = 0
        self.extents_released = 0

    @property
    def virtual_tokens(self) -> int:
        """Total virtual span in tokens — the KVStorage size this arena
        needs behind it."""
        return self.max_extents * self.reserve_tokens

    @property
    def storage_slots(self) -> int:
        """Alias satisfying the backend ``SlotAllocator`` protocol."""
        return self.virtual_tokens

    @property
    def extents_in_use(self) -> int:
        return self.max_extents - len(self._free_bases)

    @property
    def committed_pages(self) -> int:
        """Live commit tickets (commit events minus decommit events)."""
        return self.commits - self.decommits

    @property
    def committed_tokens(self) -> int:
        return self.committed_pages * self.pool.page_size

    @property
    def commit_waste_slots(self) -> int:
        """Committed-but-unoccupied slots: the internal fragmentation of
        committing whole pages under token-granular growth."""
        return self.committed_tokens - self.resident_tokens

    @property
    def reserved_uncommitted_tokens(self) -> int:
        """Reserved virtual space with no physical backing — the
        external-fragmentation cost of contiguous reservations."""
        return self.extents_in_use * self.reserve_tokens - self.committed_tokens

    def new_table(self) -> "ContiguousBlockTable":
        """Reserve one extent and return its table.

        Raises:
            PagePoolExhausted: when every extent is reserved.
        """
        if not self._free_bases:
            raise PagePoolExhausted(
                f"no free extents ({self.max_extents} extents of "
                f"{self.reserve_tokens} tokens)"
            )
        base = self._free_bases.pop()
        self.extents_reserved += 1
        return ContiguousBlockTable(self, base)

    def _return_extent(self, base: int) -> None:
        self._free_bases.append(base)
        self.extents_released += 1

    def _on_pages(self, delta: int) -> None:
        if delta > 0:
            self.commits += delta
        elif delta < 0:
            self.decommits -= delta

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for experiment metadata / bench reports."""
        return {
            "reserve_tokens": self.reserve_tokens,
            "virtual_tokens": self.virtual_tokens,
            "extents_in_use": self.extents_in_use,
            "commits": self.commits,
            "decommits": self.decommits,
            "committed_pages": self.committed_pages,
            "resident_tokens": self.resident_tokens,
            "commit_waste_slots": self.commit_waste_slots,
            "reserved_uncommitted_tokens": self.reserved_uncommitted_tokens,
        }

    def __repr__(self) -> str:
        return (
            f"ContiguousArena(extents={self.extents_in_use}/"
            f"{self.max_extents}, reserve={self.reserve_tokens}, "
            f"committed_pages={self.committed_pages})"
        )


class ContiguousBlockTable(BlockTable):
    """A block table whose flat slot for position ``i`` is ``base + i``.

    Inherits the whole :class:`BlockTable` lifecycle — append / vacate /
    restore / release, version counters, memoization — and keeps its page
    list as *commit tickets* (page-granular budget grants from the shared
    pool).  Only the address computation differs: slots are contiguous
    within the extent, so readers get plain ranges.
    """

    def __init__(self, arena: ContiguousArena, base: int) -> None:
        super().__init__(arena.pool)
        self._arena = arena
        self._base = base
        self._extent_returned = False

    @property
    def base(self) -> int:
        """First flat slot of this table's virtual extent."""
        return self._base

    def slot(self, position: int) -> int:
        if not 0 <= position < self._length:
            raise KeyError(f"position {position} out of range [0, {self._length})")
        if self._pages[position // self.page_size] is None:
            raise KeyError(f"position {position} has been vacated")
        return self._base + position

    def slots_array(self, start: int, end: int) -> np.ndarray:
        if start >= end:
            return np.empty(0, dtype=np.int64)
        memo = self._slots_memo.get((start, end))
        if memo is not None:
            return memo
        if start < 0 or start >= self._length:
            raise KeyError(f"position {start} out of range [0, {self._length})")
        if end > self._length:
            raise KeyError(
                f"position {self._length} out of range [0, {self._length})"
            )
        ps = self.page_size
        first_page = start // ps
        pages = self._pages[first_page : (end - 1) // ps + 1]
        if any(page is None for page in pages):
            offset = next(i for i, page in enumerate(pages) if page is None)
            bad = max(start, (first_page + offset) * ps)
            raise KeyError(f"position {bad} has been vacated")
        result = np.arange(self._base + start, self._base + end, dtype=np.int64)
        result.setflags(write=False)
        if len(self._slots_memo) >= self._MEMO_CAP:
            self._slots_memo.clear()
        self._slots_memo[(start, end)] = result
        return result

    def append_tokens(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self._extent_returned:
            raise RuntimeError("table released; its extent has been returned")
        if self._length + count > self._arena.reserve_tokens:
            # The contiguous reservation is the hard ceiling — surfaced
            # as capacity pressure so serving reacts the same way it
            # does to an exhausted pool.
            raise PagePoolExhausted(
                f"extent reservation of {self._arena.reserve_tokens} tokens "
                f"cannot hold {self._length + count}"
            )
        before = self.num_pages
        super().append_tokens(count)
        self._arena._on_pages(self.num_pages - before)
        self._arena.resident_tokens += count

    def vacate_front(self, count: int) -> None:
        before = self.num_pages
        super().vacate_front(count)
        self._arena._on_pages(self.num_pages - before)
        self._arena.resident_tokens -= count

    def restore_front(self, count: int) -> List[int]:
        if self._extent_returned:
            raise RuntimeError("table released; its extent has been returned")
        before = self.num_pages
        slots = super().restore_front(count)
        self._arena._on_pages(self.num_pages - before)
        self._arena.resident_tokens += count
        return slots

    def release(self) -> None:
        before_pages = self.num_pages
        before_resident = self.resident_tokens
        super().release()
        self._arena._on_pages(self.num_pages - before_pages)
        self._arena.resident_tokens -= before_resident
        if not self._extent_returned:
            self._extent_returned = True
            self._arena._return_extent(self._base)

    def __repr__(self) -> str:
        return (
            f"ContiguousBlockTable(base={self._base}, length={self._length}, "
            f"vacated={self._vacated}, committed_pages={self.num_pages})"
        )
