"""Page pool and per-sequence block tables.

GPU KV-cache memory is divided into fixed-size pages of ``page_size`` token
slots.  A sequence's tokens are mapped to physical slots through a
:class:`BlockTable`; consecutive logical tokens may land on arbitrary,
non-contiguous pages — exactly the layout Pensieve's multi-token attention
kernel must handle (Figure 6 of the paper).

Pages are identified by small integers.  The *flat slot index* of logical
token ``i`` is ``page_id * page_size + (i % page_size)``; the numpy storage
layer and the attention kernels address K/V arrays by flat slot index.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np


class PagePoolExhausted(RuntimeError):
    """Raised when an allocation cannot be satisfied."""


class PagePool:
    """A fixed inventory of KV-cache pages with a LIFO free list.

    The pool only does bookkeeping; tensor storage is the concern of
    :class:`repro.kvcache.storage.KVStorage`.  LIFO reuse is intentional:
    it maximises physical fragmentation across a sequence's lifetime, which
    keeps the non-contiguity the paged kernels must support honest in tests.
    """

    def __init__(self, num_pages: int, page_size: int) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive, got {num_pages}")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.num_pages = num_pages
        self.page_size = page_size
        self._free: List[int] = list(range(num_pages - 1, -1, -1))
        self._allocated = [False] * num_pages

    @property
    def num_free_pages(self) -> int:
        return len(self._free)

    @property
    def num_allocated_pages(self) -> int:
        return self.num_pages - len(self._free)

    @property
    def capacity_tokens(self) -> int:
        """Total token slots in the pool."""
        return self.num_pages * self.page_size

    @property
    def free_tokens(self) -> int:
        """Token slots available in free pages."""
        return self.num_free_pages * self.page_size

    def allocate_page(self) -> int:
        """Take one page from the free list.

        Raises:
            PagePoolExhausted: when no pages remain.
        """
        if not self._free:
            raise PagePoolExhausted(
                f"no free pages ({self.num_pages} pages of {self.page_size} slots)"
            )
        page = self._free.pop()
        self._allocated[page] = True
        return page

    def free_page(self, page: int) -> None:
        """Return a page to the free list.

        Raises:
            ValueError: on double free or out-of-range page id.
        """
        if not 0 <= page < self.num_pages:
            raise ValueError(f"page id {page} out of range [0, {self.num_pages})")
        if not self._allocated[page]:
            raise ValueError(f"double free of page {page}")
        self._allocated[page] = False
        self._free.append(page)

    def can_allocate(self, num_pages: int) -> bool:
        return len(self._free) >= num_pages

    def __repr__(self) -> str:
        return (
            f"PagePool(pages={self.num_pages}, page_size={self.page_size}, "
            f"free={self.num_free_pages})"
        )


class BlockTable:
    """Maps a sequence's logical token positions to physical pages.

    Logical position ``i`` lives on ``pages[i // page_size]`` at page offset
    ``i % page_size``.  Leading positions may be *vacated* (after eviction
    to the CPU tier): their entries become ``None`` and fully vacated pages
    return to the pool.  ``offset`` records how many leading positions have
    been vacated so invariants can be checked cheaply.
    """

    #: Cap on memoized ``slots_array`` results per table.  Callers hit a
    #: handful of distinct ranges (full context, restore windows), so a
    #: small cap bounds memory without hurting the hit rate.
    _MEMO_CAP = 64

    def __init__(self, pool: PagePool) -> None:
        self._pool = pool
        self._pages: List[Optional[int]] = []
        self._length = 0          # logical sequence length (tokens appended)
        self._vacated = 0         # leading tokens no longer resident
        self._version = 0         # bumps on every mutation (append included)
        self._structure_version = 0  # bumps only when existing slots remap
        self._slots_memo: dict = {}  # (start, end) -> read-only int64 array

    @property
    def page_size(self) -> int:
        return self._pool.page_size

    @property
    def version(self) -> int:
        """Monotonic counter bumped by **every** successful mutation
        (append / vacate / restore / release).  Consumers that memoize
        derived arrays key them on this value."""
        return self._version

    @property
    def structure_version(self) -> int:
        """Monotonic counter bumped only when the mapping of *existing*
        logical positions changes (vacate / restore / release).  Appends
        leave it untouched: previously returned slots stay valid, which
        is exactly the invariant the incremental decode packing cache
        relies on for its +1-slot extend fast path."""
        return self._structure_version

    def _bump(self, structural: bool) -> None:
        self._version += 1
        if structural:
            self._structure_version += 1
        self._slots_memo.clear()

    @property
    def length(self) -> int:
        """Logical sequence length in tokens."""
        return self._length

    @property
    def vacated(self) -> int:
        """Number of leading tokens whose slots were released."""
        return self._vacated

    @property
    def resident_tokens(self) -> int:
        """Tokens currently occupying GPU slots."""
        return self._length - self._vacated

    @property
    def num_pages(self) -> int:
        return sum(1 for p in self._pages if p is not None)

    def append_tokens(self, count: int) -> None:
        """Extend the sequence by ``count`` tokens, allocating pages as needed.

        Raises:
            PagePoolExhausted: if the pool cannot supply enough pages; the
                table is left unchanged in that case.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        ps = self.page_size
        new_length = self._length + count
        pages_needed = (new_length + ps - 1) // ps - len(self._pages)
        if pages_needed > 0 and not self._pool.can_allocate(pages_needed):
            raise PagePoolExhausted(
                f"need {pages_needed} pages, only {self._pool.num_free_pages} free"
            )
        for _ in range(max(0, pages_needed)):
            self._pages.append(self._pool.allocate_page())
        self._length = new_length
        if count > 0:
            self._bump(structural=False)

    def slot(self, position: int) -> int:
        """Flat physical slot index of logical ``position``.

        Raises:
            KeyError: if the position is out of range or vacated.
        """
        if not 0 <= position < self._length:
            raise KeyError(f"position {position} out of range [0, {self._length})")
        page = self._pages[position // self.page_size]
        if page is None:
            raise KeyError(f"position {position} has been vacated")
        return page * self.page_size + position % self.page_size

    def slots(self, start: int, end: int) -> List[int]:
        """Flat slot indices for positions ``[start, end)``."""
        return self.slots_array(start, end).tolist()

    def slots_array(self, start: int, end: int) -> np.ndarray:
        """Flat slot indices for positions ``[start, end)`` as one
        vectorized computation (``int64`` array).

        The page vector is computed once and range/vacancy are validated
        in bulk instead of re-checking every position through
        :meth:`slot`; on invalid input the same ``KeyError`` is raised,
        for the first offending position.
        """
        if start >= end:
            return np.empty(0, dtype=np.int64)
        memo = self._slots_memo.get((start, end))
        if memo is not None:
            return memo
        if start < 0 or start >= self._length:
            raise KeyError(f"position {start} out of range [0, {self._length})")
        if end > self._length:
            raise KeyError(
                f"position {self._length} out of range [0, {self._length})"
            )
        ps = self.page_size
        first_page = start // ps
        pages = self._pages[first_page : (end - 1) // ps + 1]
        if any(page is None for page in pages):
            offset = next(i for i, page in enumerate(pages) if page is None)
            bad = max(start, (first_page + offset) * ps)
            raise KeyError(f"position {bad} has been vacated")
        positions = np.arange(start, end, dtype=np.int64)
        page_vec = np.asarray(pages, dtype=np.int64)
        result = page_vec[positions // ps - first_page] * ps + positions % ps
        # Memoized results are shared across callers; freeze them so one
        # caller's in-place edit cannot corrupt another's view.
        result.setflags(write=False)
        if len(self._slots_memo) >= self._MEMO_CAP:
            self._slots_memo.clear()
        self._slots_memo[(start, end)] = result
        return result

    def vacate_front(self, count: int) -> None:
        """Release the slots of the ``count`` leading resident tokens.

        Only whole pages are returned to the pool; ``count`` must therefore
        keep the vacated prefix page-aligned (eviction operates on 32-token
        chunks and chunk size is a multiple of page size, so this holds by
        construction in the serving stack).

        Raises:
            ValueError: if the resulting prefix is not page-aligned or
                exceeds the resident range.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        new_vacated = self._vacated + count
        if new_vacated > self._length:
            raise ValueError(
                f"cannot vacate {count} tokens; only "
                f"{self.resident_tokens} resident"
            )
        if new_vacated % self.page_size != 0 and new_vacated != self._length:
            raise ValueError(
                f"vacated prefix ({new_vacated}) must stay page-aligned "
                f"(page_size={self.page_size})"
            )
        first_page = self._vacated // self.page_size
        last_page = new_vacated // self.page_size
        for idx in range(first_page, last_page):
            page = self._pages[idx]
            if page is not None:
                self._pool.free_page(page)
                self._pages[idx] = None
        self._vacated = new_vacated
        self._bump(structural=True)

    def restore_front(self, count: int) -> List[int]:
        """Re-allocate slots for ``count`` tokens at the front of the
        vacated prefix's *tail* (i.e. the most recently vacated tokens are
        restored first, keeping the resident region contiguous in logical
        space).

        Returns the flat slot indices of the restored positions in logical
        order.

        Raises:
            PagePoolExhausted: if pages cannot be allocated.
            ValueError: if ``count`` exceeds the vacated prefix or breaks
                page alignment.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        if count > self._vacated:
            raise ValueError(
                f"cannot restore {count} tokens; only {self._vacated} vacated"
            )
        new_vacated = self._vacated - count
        if new_vacated % self.page_size != 0:
            raise ValueError(
                f"restored prefix boundary ({new_vacated}) must be page-aligned"
            )
        first_page = new_vacated // self.page_size
        last_page = (self._vacated + self.page_size - 1) // self.page_size
        pages_needed = sum(
            1 for idx in range(first_page, last_page) if self._pages[idx] is None
        )
        if not self._pool.can_allocate(pages_needed):
            raise PagePoolExhausted(
                f"need {pages_needed} pages, only {self._pool.num_free_pages} free"
            )
        for idx in range(first_page, last_page):
            if self._pages[idx] is None:
                self._pages[idx] = self._pool.allocate_page()
        self._vacated = new_vacated
        self._bump(structural=True)
        return self.slots(new_vacated, new_vacated + count)

    def release(self) -> None:
        """Free every resident page and reset the table."""
        for idx, page in enumerate(self._pages):
            if page is not None:
                self._pool.free_page(page)
                self._pages[idx] = None
        self._vacated = self._length
        self._bump(structural=True)

    def resident_slots(self) -> List[int]:
        """Flat slot indices of all resident positions, in logical order."""
        return self.slots(self._vacated, self._length)

    def page_ids(self) -> List[Optional[int]]:
        """The raw page list (``None`` marks vacated pages)."""
        return list(self._pages)

    def __iter__(self) -> Iterator[int]:
        return iter(self.resident_slots())

    def __repr__(self) -> str:
        return (
            f"BlockTable(length={self._length}, vacated={self._vacated}, "
            f"pages={self.num_pages})"
        )
