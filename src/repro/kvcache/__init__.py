"""Paged, tiered KV-cache management.

The Pensieve design stores a conversation's KV-tokens in a hierarchy:

- a **GPU tier** of fixed-size pages allocated from a
  :class:`~repro.kvcache.pages.PagePool`, addressed per-sequence through a
  :class:`~repro.kvcache.pages.BlockTable` (vLLM-style paged memory, so a
  context may occupy non-contiguous physical slots);
- a **CPU tier** holding chunks swapped out of the GPU ahead of time
  (§4.3.2), from which chunks may later be dropped entirely under memory
  pressure, to be recomputed on demand (§4.3.4);
- an optional **disk tier** (modeled NVMe) behind the CPU tier, holding
  chunks demoted under host-memory pressure whose retention value still
  beats recomputation — the capacity extension ROADMAP item 3 calls for.

Chunk bookkeeping (:mod:`repro.kvcache.chunks`) tracks, for every
conversation, which 32-token chunks live where; the
:class:`~repro.kvcache.manager.TieredCacheManager` makes placement and
eviction decisions using a pluggable policy (policies themselves live in
:mod:`repro.core.eviction`).  The numpy backing store
(:mod:`repro.kvcache.storage`) is optional: the performance simulation runs
the same bookkeeping without tensors.
"""

from repro.kvcache.pages import BlockTable, PagePool, PagePoolExhausted
from repro.kvcache.chunks import Chunk, ChunkLocation, ConversationCache
from repro.kvcache.storage import CpuChunkStore, DiskChunkStore, KVStorage
from repro.kvcache.manager import CachePlan, TieredCacheManager, TwoTierCacheManager

__all__ = [
    "PagePool",
    "PagePoolExhausted",
    "BlockTable",
    "Chunk",
    "ChunkLocation",
    "ConversationCache",
    "KVStorage",
    "CpuChunkStore",
    "DiskChunkStore",
    "TieredCacheManager",
    "TwoTierCacheManager",
    "CachePlan",
]
