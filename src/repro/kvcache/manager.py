"""Tiered (GPU/CPU/disk) KV-cache manager.

The manager owns all token-level accounting for every tier and implements
the mechanics of Pensieve's cache design:

- **token-chunk eviction** in ascending score order under a pluggable
  eviction policy (§4.3.1; policies live in :mod:`repro.core.eviction`);
- **ahead-of-time swap-out** with lazy reclamation (§4.3.2): chunks are
  *copied* to the CPU tier (state ``GPU_CPU``) when free GPU space falls
  below a threshold, and their GPU slots are only truly handed over when an
  allocation needs them;
- **CPU-tier demotion/dropping** under CPU memory pressure: with the
  optional disk tier enabled, the paper's retention value V = Cost(s,l)/T
  is extended *cross-tier* — a chunk leaving the CPU lands on disk when
  its score justifies NVMe traffic (and may displace strictly
  lower-scored disk chunks), and is dropped for §4.3.4 recomputation
  otherwise;
- **restore planning** (:class:`CachePlan`): given a returning
  conversation, compute exactly which tokens are GPU hits, which must be
  swapped in from the CPU, which must be read back from disk, and which
  must be recomputed — the Figure 5 decomposition, disk-extended.

The manager is deliberately time-free: it never talks to the PCIe or NVMe
engines or the clock.  Engines ask it *what* to move and separately model
*how long* the movement takes, which lets the identical bookkeeping drive
both the functional layer (real numpy tensors) and the performance
simulation.

Implementation note: the serving simulation calls the accounting
properties on every scheduling round, so all tier totals are maintained
incrementally (O(1) reads) and every location change funnels through
:meth:`TieredCacheManager._move`; :meth:`_audit` re-derives the counters
from scratch and is exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultCounters, FaultPlan, FaultSite
from repro.kvcache.chunks import Chunk, ChunkLocation, ConversationCache
from repro.obs.tracer import NULL_TRACER

#: Eviction scorer: ``(chunk, last_active, now) -> score``.  Chunks are
#: evicted in ascending score order (low retention value goes first).
EvictionScorer = Callable[[Chunk, float, float], float]

#: Cross-tier placement policy: ``(chunk, last_active, now) -> location``,
#: deciding where a chunk leaving the CPU tier lands (``DISK`` or
#: ``DROPPED``).  ``None`` means "always try disk" when the tier exists.
TierPlacement = Callable[[Chunk, float, float], ChunkLocation]


class CacheCapacityError(RuntimeError):
    """Raised when an operation cannot fit in the configured tiers."""


@dataclass
class CachePlan:
    """Placement plan for a returning (or new) request's context.

    Token counts follow the Figure 5 decomposition of the request context:

    - ``gpu_hit_tokens``: already resident (``GPU`` or ``GPU_CPU``), free;
    - ``swap_in_chunks`` / ``swap_in_tokens``: CPU-resident, must cross the
      PCIe link before the corresponding layers' attention;
    - ``disk_read_chunks`` / ``disk_read_tokens``: disk-resident, must be
      read back over NVMe into the host and then cross the PCIe link;
    - ``recompute_tokens``: dropped, their raw tokens must be prepended to
      the prompt and re-prefix-filled;
    - ``new_tokens``: the request's genuinely new prompt tokens.

    ``alloc_tokens`` is the number of fresh GPU slots the plan needs
    (swap-in + disk-read + recompute + new); ``total_context`` is the
    context length after the plan commits.
    """

    conv_id: int
    gpu_hit_tokens: int = 0
    swap_in_chunks: List[Chunk] = field(default_factory=list)
    swap_in_tokens: int = 0
    disk_read_chunks: List[Chunk] = field(default_factory=list)
    disk_read_tokens: int = 0
    recompute_tokens: int = 0
    new_tokens: int = 0

    @property
    def alloc_tokens(self) -> int:
        return (
            self.swap_in_tokens
            + self.disk_read_tokens
            + self.recompute_tokens
            + self.new_tokens
        )

    @property
    def cached_tokens(self) -> int:
        """Tokens reused without recomputation (hits + swap-ins + disk reads)."""
        return self.gpu_hit_tokens + self.swap_in_tokens + self.disk_read_tokens

    @property
    def prefill_tokens(self) -> int:
        """Tokens that must actually run through the model."""
        return self.recompute_tokens + self.new_tokens

    @property
    def total_context(self) -> int:
        return (
            self.gpu_hit_tokens
            + self.swap_in_tokens
            + self.disk_read_tokens
            + self.recompute_tokens
            + self.new_tokens
        )


#: Locations that occupy GPU slots.
_GPU_STATES = (ChunkLocation.GPU, ChunkLocation.GPU_CPU)
#: Locations that occupy CPU slots.
_CPU_STATES = (ChunkLocation.CPU, ChunkLocation.GPU_CPU)


class TieredCacheManager:
    """Token-accounting core of Pensieve's cache hierarchy.

    Args:
        gpu_capacity_tokens: KV-token slots available on the GPU tier.
        cpu_capacity_tokens: KV-token slots available on the CPU tier
            (0 disables the CPU tier, producing the paper's
            "Pensieve (GPU cache)" variant).
        disk_capacity_tokens: KV-token slots available on the disk (NVMe)
            tier behind the CPU; 0 (the default) disables the tier,
            reproducing the paper's two-tier behaviour exactly.
        chunk_size: eviction granularity in tokens (32 in the paper).
        scorer: eviction policy; defaults (when ``None``) must be supplied
            before any eviction happens.
        placement: cross-tier placement policy deciding whether a chunk
            leaving the CPU tier is demoted to disk or dropped (see
            :class:`repro.core.eviction.TieredPlacementPolicy`); ``None``
            demotes whenever the disk tier has (or can make) room.
        fault_plan: optional seeded failure schedule; when set, D2H copies
            may fail and the affected chunks degrade to ``DROPPED`` (their
            tokens recompute later) instead of crashing the manager.
        fault_counters: recovery accounting shared with the owning engine.
    """

    def __init__(
        self,
        gpu_capacity_tokens: int,
        cpu_capacity_tokens: int,
        chunk_size: int = 32,
        scorer: Optional[EvictionScorer] = None,
        whole_conversation_eviction: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        fault_counters: Optional[FaultCounters] = None,
        disk_capacity_tokens: int = 0,
        placement: Optional[TierPlacement] = None,
    ) -> None:
        if gpu_capacity_tokens <= 0:
            raise ValueError("gpu_capacity_tokens must be positive")
        if cpu_capacity_tokens < 0:
            raise ValueError("cpu_capacity_tokens must be non-negative")
        if disk_capacity_tokens < 0:
            raise ValueError("disk_capacity_tokens must be non-negative")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.gpu_capacity_tokens = gpu_capacity_tokens
        self.cpu_capacity_tokens = cpu_capacity_tokens
        self.disk_capacity_tokens = disk_capacity_tokens
        self.chunk_size = chunk_size
        self.scorer = scorer
        self.placement = placement
        self.fault_plan = fault_plan
        self.fault_counters = fault_counters or FaultCounters()
        #: CachedAttention-style eviction granularity (paper Table 3):
        #: evict a conversation's entire GPU-resident context at once
        #: instead of chunk by chunk.  Kept for the granularity ablation.
        self.whole_conversation_eviction = whole_conversation_eviction
        #: Optional callback ``(cache, chunk, old_location, new_location)``
        #: fired on every tier transition.  The functional serving layer
        #: uses it to mirror the manager's decisions onto real tensors
        #: (copying chunk data to the CPU store, vacating GPU pages, ...).
        self.observer: Optional[
            Callable[[ConversationCache, Chunk, ChunkLocation, ChunkLocation], None]
        ] = None
        self._conversations: Dict[int, ConversationCache] = {}
        # Incremental tier totals (see module docstring).
        self._gpu_resident = 0    # tokens in GPU or GPU_CPU
        self._cpu_used = 0        # tokens in CPU or GPU_CPU
        self._disk_used = 0       # tokens in DISK
        self._reclaimable = 0     # GPU_CPU tokens of unpinned conversations
        self._evictable = 0       # GPU tokens of unpinned conversations
        # Which conversations have at least one chunk in a location.
        self._index: Dict[ChunkLocation, Set[int]] = {
            loc: set() for loc in ChunkLocation
        }
        # Statistics for Figure 14 style analyses.
        self.stats = {
            "lookup_tokens": 0,
            "gpu_hit_tokens": 0,
            "cpu_hit_tokens": 0,
            "disk_hit_tokens": 0,
            "recomputed_tokens": 0,
            "swapped_out_tokens": 0,
            "dropped_tokens": 0,
            # Disk-tier traffic: tokens demoted CPU -> DISK under host
            # memory pressure, and tokens evicted from the disk tier
            # (each disk eviction also counts into ``dropped_tokens`` —
            # the tokens become recompute-needing at that moment).
            "demoted_tokens": 0,
            "disk_dropped_tokens": 0,
            # Tokens that left the GPU_CPU state (reclaimed to CPU, or
            # promoted back to GPU on reuse) — each such exit consumes one
            # completed ahead-of-time copy; engines use this to track how
            # many settled copies remain reclaimable.
            "gpu_cpu_exit_tokens": 0,
        }
        #: Observability sink; :meth:`_bump` mirrors every ``stats``
        #: increment into a ``cache.*`` counter so a trace's totals
        #: reconcile exactly with :attr:`stats`.
        self.tracer = NULL_TRACER

    def _bump(self, key: str, tokens: int) -> None:
        """Increment one ``stats`` counter, mirrored into the tracer."""
        self.stats[key] += tokens
        if self.tracer.enabled:
            self.tracer.count(f"cache.{key}", tokens)

    def fragmentation_tokens(self) -> int:
        """Internal fragmentation of the GPU tier at chunk granularity:
        slots inside partially-filled tail chunks.  O(conversations) —
        intended for per-iteration gauge sampling in traced runs only.
        """
        wasted = 0
        for cache in self._conversations.values():
            # GPU-resident chunks occupy the rear of the Figure 5 layout,
            # so only the final chunk can be a partially-filled GPU tail.
            if not cache.chunks:
                continue
            tail = cache.chunks[-1]
            if tail.location in _GPU_STATES and tail.num_tokens < self.chunk_size:
                wasted += self.chunk_size - tail.num_tokens
        return wasted

    # ------------------------------------------------------------------
    # Accounting (O(1))
    # ------------------------------------------------------------------

    @property
    def gpu_resident_tokens(self) -> int:
        """Tokens occupying GPU slots (including lazily-reclaimable copies)."""
        return self._gpu_resident

    @property
    def gpu_free_tokens(self) -> int:
        """GPU slots not occupied by anyone."""
        return self.gpu_capacity_tokens - self._gpu_resident

    @property
    def reclaimable_tokens(self) -> int:
        """GPU slots occupied by already-copied (``GPU_CPU``) unpinned chunks."""
        return self._reclaimable

    @property
    def gpu_available_tokens(self) -> int:
        """Slots obtainable without any PCIe traffic (free + reclaimable)."""
        return self.gpu_free_tokens + self._reclaimable

    @property
    def cpu_used_tokens(self) -> int:
        return self._cpu_used

    @property
    def cpu_free_tokens(self) -> int:
        return self.cpu_capacity_tokens - self._cpu_used

    @property
    def disk_used_tokens(self) -> int:
        return self._disk_used

    @property
    def disk_free_tokens(self) -> int:
        return self.disk_capacity_tokens - self._disk_used

    @property
    def evictable_gpu_tokens(self) -> int:
        """GPU-only tokens of unpinned conversations (swap-out candidates)."""
        return self._evictable

    def conversation(self, conv_id: int) -> Optional[ConversationCache]:
        return self._conversations.get(conv_id)

    def conversations(self) -> List[ConversationCache]:
        return list(self._conversations.values())

    # ------------------------------------------------------------------
    # Counter maintenance
    # ------------------------------------------------------------------

    def _move(self, cache: ConversationCache, chunk: Chunk, new: ChunkLocation) -> None:
        """Move a chunk between tiers, keeping every counter consistent."""
        old = chunk.location
        if old is new:
            return
        n = chunk.num_tokens
        if old in _GPU_STATES and new not in _GPU_STATES:
            self._gpu_resident -= n
        elif old not in _GPU_STATES and new in _GPU_STATES:
            self._gpu_resident += n
        if old in _CPU_STATES and new not in _CPU_STATES:
            self._cpu_used -= n
        elif old not in _CPU_STATES and new in _CPU_STATES:
            self._cpu_used += n
        if old is ChunkLocation.DISK:
            self._disk_used -= n
        elif new is ChunkLocation.DISK:
            self._disk_used += n
        if not cache.pinned:
            if old is ChunkLocation.GPU_CPU:
                self._reclaimable -= n
            if new is ChunkLocation.GPU_CPU:
                self._reclaimable += n
            if old is ChunkLocation.GPU:
                self._evictable -= n
            if new is ChunkLocation.GPU:
                self._evictable += n
        if old is ChunkLocation.GPU_CPU:
            self._bump("gpu_cpu_exit_tokens", n)
        chunk.location = new
        self._reindex(cache)
        if self.observer is not None:
            self.observer(cache, chunk, old, new)

    def _reindex(self, cache: ConversationCache) -> None:
        """Refresh the location index entries of one conversation."""
        present = {c.location for c in cache.chunks}
        for loc in ChunkLocation:
            if loc in present:
                self._index[loc].add(cache.conv_id)
            else:
                self._index[loc].discard(cache.conv_id)

    def _on_extend(self, cache: ConversationCache, tokens: int) -> None:
        """Account fresh GPU tokens appended to a conversation."""
        self._gpu_resident += tokens
        if not cache.pinned:
            self._evictable += tokens
        if tokens:
            self._index[ChunkLocation.GPU].add(cache.conv_id)

    def _set_pinned(self, cache: ConversationCache, pinned: bool) -> None:
        if cache.pinned == pinned:
            return
        gpu_cpu = cache.tokens_in(ChunkLocation.GPU_CPU)
        gpu = cache.tokens_in(ChunkLocation.GPU)
        if pinned:
            self._reclaimable -= gpu_cpu
            self._evictable -= gpu
        else:
            self._reclaimable += gpu_cpu
            self._evictable += gpu
        cache.pinned = pinned

    def _audit(self) -> None:
        """Re-derive every counter from scratch and assert consistency.

        Used by the test suite (including property-based tests) to prove
        the incremental accounting can never drift.
        """
        gpu = cpu = disk = reclaimable = evictable = 0
        for cache in self._conversations.values():
            gpu += cache.tokens_in(*_GPU_STATES)
            cpu += cache.tokens_in(*_CPU_STATES)
            disk += cache.tokens_in(ChunkLocation.DISK)
            if not cache.pinned:
                reclaimable += cache.tokens_in(ChunkLocation.GPU_CPU)
                evictable += cache.tokens_in(ChunkLocation.GPU)
        assert gpu == self._gpu_resident, (gpu, self._gpu_resident)
        assert cpu == self._cpu_used, (cpu, self._cpu_used)
        assert disk == self._disk_used, (disk, self._disk_used)
        assert reclaimable == self._reclaimable, (reclaimable, self._reclaimable)
        assert evictable == self._evictable, (evictable, self._evictable)
        for loc in ChunkLocation:
            expect = {
                c.conv_id
                for c in self._conversations.values()
                if any(ch.location is loc for ch in c.chunks)
            }
            assert expect == self._index[loc], (loc, expect, self._index[loc])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self, conv_id: int, now: float) -> ConversationCache:
        """Get or create the cache record for a conversation and pin it."""
        cache = self._conversations.get(conv_id)
        if cache is None:
            cache = ConversationCache(conv_id, self.chunk_size, now=now)
            self._conversations[conv_id] = cache
        self._set_pinned(cache, True)
        cache.last_active = now
        return cache

    def close(self, conv_id: int, now: float) -> None:
        """Unpin a conversation after its request finishes.

        Its KV-tokens stay resident (this is the stateful-serving point of
        the whole system); ``last_active`` becomes ``now``.
        """
        cache = self._conversations[conv_id]
        self._set_pinned(cache, False)
        cache.last_active = now

    def forget(self, conv_id: int) -> int:
        """Drop every trace of a conversation; returns freed GPU tokens."""
        cache = self._conversations.pop(conv_id, None)
        if cache is None:
            return 0
        gpu = cache.tokens_in(*_GPU_STATES)
        self._gpu_resident -= gpu
        self._cpu_used -= cache.tokens_in(*_CPU_STATES)
        self._disk_used -= cache.tokens_in(ChunkLocation.DISK)
        if not cache.pinned:
            self._reclaimable -= cache.tokens_in(ChunkLocation.GPU_CPU)
            self._evictable -= cache.tokens_in(ChunkLocation.GPU)
        for loc in ChunkLocation:
            self._index[loc].discard(conv_id)
        return gpu

    # ------------------------------------------------------------------
    # Restore planning (Figure 5 decomposition)
    # ------------------------------------------------------------------

    def plan_restore(self, conv_id: int, new_tokens: int) -> CachePlan:
        """Plan context placement for a request with ``new_tokens`` of prompt.

        Does not mutate any state (it may be called speculatively every
        scheduling round); :meth:`commit_restore` applies the plan — and
        records the hit/recompute statistics — once the engine has
        modelled (or performed) the data movement.
        """
        if new_tokens < 0:
            raise ValueError("new_tokens must be non-negative")
        plan = CachePlan(conv_id=conv_id, new_tokens=new_tokens)
        cache = self._conversations.get(conv_id)
        if cache is not None:
            plan.gpu_hit_tokens = cache.tokens_in(*_GPU_STATES)
            plan.swap_in_chunks = cache.chunks_in(ChunkLocation.CPU)
            plan.swap_in_tokens = sum(c.num_tokens for c in plan.swap_in_chunks)
            plan.disk_read_chunks = cache.chunks_in(ChunkLocation.DISK)
            plan.disk_read_tokens = sum(
                c.num_tokens for c in plan.disk_read_chunks
            )
            plan.recompute_tokens = cache.tokens_in(ChunkLocation.DROPPED)
        return plan

    def commit_restore(self, plan: CachePlan, now: float) -> ConversationCache:
        """Apply a restore plan: all chunks become GPU-resident and the
        context is extended by the plan's new tokens.

        The caller must have ensured capacity (see :meth:`ensure_capacity`).

        Raises:
            CacheCapacityError: if the GPU tier cannot hold the result.
        """
        needed = plan.alloc_tokens
        self._bump("lookup_tokens", plan.total_context - plan.new_tokens)
        self._bump("gpu_hit_tokens", plan.gpu_hit_tokens)
        self._bump("cpu_hit_tokens", plan.swap_in_tokens)
        self._bump("disk_hit_tokens", plan.disk_read_tokens)
        self._bump("recomputed_tokens", plan.recompute_tokens)
        cache = self.open(plan.conv_id, now)
        if needed > self.gpu_free_tokens + self._reclaimable:
            raise CacheCapacityError(
                f"restore needs {needed} tokens; free={self.gpu_free_tokens}, "
                f"reclaimable={self._reclaimable}"
            )
        if needed > self.gpu_free_tokens:
            self.reclaim(needed - self.gpu_free_tokens, now, exclude=plan.conv_id)
        for chunk in cache.chunks:
            # Everything the request touches becomes GPU-resident: CPU
            # chunks are swapped in, disk chunks read back and promoted,
            # dropped chunks recomputed, and lazily-reclaimable copies are
            # promoted back to GPU-only (their CPU copy is invalidated on
            # reuse for simplicity).
            self._move(cache, chunk, ChunkLocation.GPU)
        before = cache.total_tokens
        cache.extend_to(before + plan.new_tokens)
        self._on_extend(cache, plan.new_tokens)
        cache.check_layout()
        return cache

    def append_tokens(self, conv_id: int, count: int) -> None:
        """Extend a pinned conversation's context (decode-step growth).

        Raises:
            CacheCapacityError: if the GPU tier is full even after
                reclaiming copies.
        """
        if count <= 0:
            return
        cache = self._conversations[conv_id]
        if count > self.gpu_free_tokens:
            deficit = count - self.gpu_free_tokens
            # Check before reclaiming anything: a partial reclaim mutates
            # tier state, so refusing *after* it would leave chunks evicted
            # by an operation that reports failure (non-atomic).
            available = self._reclaimable
            if not cache.pinned:
                available -= cache.tokens_in(ChunkLocation.GPU_CPU)
            if deficit > available:
                raise CacheCapacityError(
                    f"decode growth of {count} tokens does not fit "
                    f"(free={self.gpu_free_tokens}, reclaimable={available})"
                )
            reclaimed = self.reclaim(deficit, now=cache.last_active, exclude=conv_id)
            assert reclaimed >= deficit, (reclaimed, deficit)
        cache.extend_to(cache.total_tokens + count)
        self._on_extend(cache, count)

    def invalidate_cpu_prefix(
        self, conv_id: int, upto: Optional[Chunk] = None
    ) -> int:
        """Recovery path for a failed or corrupt swap-in: drop the
        conversation's stored (disk + CPU) chunks from the front through
        ``upto`` (all of them when ``None``) so the next restore plan
        recomputes those tokens from the raw-token store (§4.3.4 fallback).

        Only the leading prefix may be invalidated — stored chunks sit
        right after the ``DROPPED`` prefix (disk first, then CPU), so
        growing that prefix keeps the Figure 5 layout legal by
        construction.  When ``upto`` is a CPU chunk, every disk chunk
        necessarily precedes it and is invalidated too: a surviving
        ``DISK`` chunk after a new ``DROPPED`` one would break
        monotonicity.  Returns tokens invalidated (0 for an unknown
        conversation — recovery must not raise anew).
        """
        cache = self._conversations.get(conv_id)
        if cache is None:
            return 0
        invalidated = 0
        for chunk in cache.chunks_in(ChunkLocation.DISK, ChunkLocation.CPU):
            if upto is not None and chunk.index > upto.index:
                break
            self._move(cache, chunk, ChunkLocation.DROPPED)
            self._bump("dropped_tokens", chunk.num_tokens)
            invalidated += chunk.num_tokens
        cache.check_layout()
        return invalidated

    def invalidate_disk_prefix(
        self, conv_id: int, upto: Optional[Chunk] = None
    ) -> int:
        """Recovery path for a failed or corrupt *disk* read: drop the
        conversation's ``DISK`` chunks from the front through ``upto``
        (all of them when ``None``).

        Disk chunks sit immediately after the ``DROPPED`` prefix, so this
        never touches CPU chunks and always leaves a legal layout — the
        narrower sibling of :meth:`invalidate_cpu_prefix` used when the
        CPU-resident portion of the context is still healthy.  Returns
        tokens invalidated.
        """
        cache = self._conversations.get(conv_id)
        if cache is None:
            return 0
        invalidated = 0
        for chunk in cache.chunks_in(ChunkLocation.DISK):
            if upto is not None and chunk.index > upto.index:
                break
            self._move(cache, chunk, ChunkLocation.DROPPED)
            self._bump("dropped_tokens", chunk.num_tokens)
            invalidated += chunk.num_tokens
        cache.check_layout()
        return invalidated

    # ------------------------------------------------------------------
    # Eviction machinery
    # ------------------------------------------------------------------

    def _require_scorer(self) -> EvictionScorer:
        if self.scorer is None:
            raise RuntimeError("no eviction scorer configured")
        return self.scorer

    def _candidates(
        self, location: ChunkLocation, now: float, exclude: Optional[int] = None
    ) -> List[Tuple[float, Chunk, ConversationCache]]:
        """Frontier chunks in ``location``, scored, ascending.

        Only the *earliest* chunk of each conversation in the given
        location is a candidate, which preserves the Figure 5 layout
        invariant during front-to-back eviction.
        """
        scorer = self._require_scorer()
        out = []
        for conv_id in self._index[location]:
            cache = self._conversations[conv_id]
            if cache.pinned or conv_id == exclude:
                continue
            chunk = cache.frontier(location)
            if chunk is not None:
                out.append((scorer(chunk, cache.last_active, now), chunk, cache))
        out.sort(key=lambda item: (item[0], item[1].conv_id, item[1].index))
        return out

    def swap_out(self, tokens_needed: int, now: float) -> List[Chunk]:
        """Make ``tokens_needed`` GPU tokens obtainable by copying GPU-only
        chunks to the CPU tier (ahead-of-time swap-out, §4.3.2) — and, when
        the CPU tier is saturated, by dropping the cheapest chunks outright.

        Copied chunks move ``GPU -> GPU_CPU``; their GPU slots stay
        occupied until :meth:`reclaim`.  Progress is counted as
        reclaimable tokens plus tokens freed by drops.  Returns the chunks
        copied, in order, so the engine can model the PCIe traffic.
        """
        copied: List[Chunk] = []
        free_start = self.gpu_free_tokens

        def progress() -> int:
            return self._reclaimable + (self.gpu_free_tokens - free_start)

        while progress() < tokens_needed:
            candidates = self._candidates(ChunkLocation.GPU, now)
            if not candidates:
                break
            score, chunk, cache = candidates[0]
            if self.whole_conversation_eviction:
                # Granularity ablation: take the whole conversation, even
                # past the target (the overshoot is the cost of coarse
                # eviction the paper's design avoids).
                for victim in list(cache.chunks_in(ChunkLocation.GPU)):
                    self._swap_out_chunk(cache, victim, now, copied, score=score)
            else:
                self._swap_out_chunk(cache, chunk, now, copied, score=score)
        return copied

    def _swap_out_chunk(
        self,
        cache: ConversationCache,
        chunk: Chunk,
        now: float,
        copied: List[Chunk],
        score: Optional[float] = None,
    ) -> str:
        """Move one GPU chunk toward the CPU tier.

        Returns ``"copied"`` or ``"dropped"``; either way the chunk's GPU
        slots have been made reclaimable or free (guaranteed progress).
        ``score`` is the victim's retention score, recorded on the
        eviction trace event so traces carry the score distribution the
        policy acted on.
        """
        outcome = self._swap_out_chunk_inner(cache, chunk, now, copied)
        if self.tracer.enabled:
            self.tracer.instant(
                "evict",
                t=now,
                track="cache",
                conv_id=cache.conv_id,
                chunk=chunk.index,
                tokens=chunk.num_tokens,
                outcome=outcome,
                score=score,
            )
        return outcome

    def _swap_out_chunk_inner(
        self,
        cache: ConversationCache,
        chunk: Chunk,
        now: float,
        copied: List[Chunk],
    ) -> str:
        if self.cpu_capacity_tokens == 0:
            # GPU-cache-only variant: dropping instead of copying.
            self._move(cache, chunk, ChunkLocation.DROPPED)
            self._bump("dropped_tokens", chunk.num_tokens)
            cache.check_layout()
            return "dropped"
        if self.fault_plan is not None and self.fault_plan.fires(FaultSite.SWAP_OUT):
            # The D2H copy failed: degrade by discarding the candidate's
            # leading prefix outright — the tokens recompute on return
            # (§4.3.4), so no served output is ever lost, and the chunk's
            # GPU slots still free up (guaranteed progress).
            self.fault_counters.swap_out_failures += 1
            self._drop_leading_prefix(cache, chunk)
            return "dropped"
        if self.cpu_free_tokens < chunk.num_tokens:
            self.drop_from_cpu(
                chunk.num_tokens - self.cpu_free_tokens, now, allow_revert=False
            )
            if self.cpu_free_tokens < chunk.num_tokens:
                # CPU tier saturated with data that may not be dropped
                # (pinned conversations' chunks, or copies backing
                # reclaimable GPU slots).  Fall back to discarding the
                # candidate conversation's leading chunks outright —
                # Figure 5 keeps the layout legal because the dropped
                # prefix only ever grows from the front.
                self._drop_leading_prefix(cache, chunk)
                return "dropped"
        self._move(cache, chunk, ChunkLocation.GPU_CPU)
        self._bump("swapped_out_tokens", chunk.num_tokens)
        copied.append(chunk)
        cache.check_layout()
        return "copied"

    def _drop_leading_prefix(self, cache: ConversationCache, upto: Chunk) -> None:
        """Drop a conversation's chunks from the front through ``upto``.

        Any ``GPU_CPU`` chunk in the prefix loses both its GPU slots and
        its CPU copy; ``CPU`` chunks free CPU space; the target ``GPU``
        chunk frees GPU slots.
        """
        for chunk in cache.chunks:
            if chunk.location is not ChunkLocation.DROPPED:
                if chunk.location is ChunkLocation.DISK:
                    self._bump("disk_dropped_tokens", chunk.num_tokens)
                self._bump("dropped_tokens", chunk.num_tokens)
                self._move(cache, chunk, ChunkLocation.DROPPED)
            if chunk is upto:
                break
        cache.check_layout()

    def reclaim(
        self, tokens_needed: int, now: float, exclude: Optional[int] = None
    ) -> int:
        """Actually free GPU slots of already-copied chunks
        (``GPU_CPU -> CPU``).  Returns tokens freed (may fall short)."""
        freed = 0
        while freed < tokens_needed:
            candidates = self._candidates(ChunkLocation.GPU_CPU, now, exclude=exclude)
            if not candidates:
                break
            score, chunk, cache = candidates[0]
            self._move(cache, chunk, ChunkLocation.CPU)
            freed += chunk.num_tokens
            cache.check_layout()
            if self.tracer.enabled:
                self.tracer.count("cache.reclaimed_tokens", chunk.num_tokens)
                self.tracer.instant(
                    "reclaim",
                    t=now,
                    track="cache",
                    conv_id=cache.conv_id,
                    chunk=chunk.index,
                    tokens=chunk.num_tokens,
                    score=score,
                )
        return freed

    def drop_from_cpu(
        self, tokens_needed: int, now: float, allow_revert: bool = True
    ) -> int:
        """Free CPU-tier space under memory pressure.

        Each victim (ascending retention score) is *demoted* to the disk
        tier when one is configured and the cross-tier placement policy
        approves (``CPU -> DISK``), and dropped outright otherwise
        (``CPU -> DROPPED``).  Either way its CPU tokens free up, so
        progress accounting is identical to the two-tier behaviour.

        Returns tokens freed.  With ``allow_revert``, chunks still lazily
        resident on the GPU (``GPU_CPU``) may lose their CPU copy as a last
        resort — reverting them to plain ``GPU`` frees CPU space without
        losing data.  :meth:`swap_out` disables this to guarantee forward
        progress (a revert would un-do the reclaimability it is building).
        """
        freed = 0
        while freed < tokens_needed:
            candidates = self._candidates(ChunkLocation.CPU, now)
            if candidates:
                score, chunk, cache = candidates[0]
                outcome = self._demote_or_drop(cache, chunk, score, now)
                freed += chunk.num_tokens
                cache.check_layout()
                if self.tracer.enabled:
                    self.tracer.instant(
                        "cpu_drop",
                        t=now,
                        track="cache",
                        conv_id=cache.conv_id,
                        chunk=chunk.index,
                        tokens=chunk.num_tokens,
                        outcome=outcome,
                        score=score,
                    )
                continue
            if not allow_revert:
                break
            # Fall back to invalidating the CPU copies of lazily-reclaimable
            # chunks (cheap: the data is still on the GPU).  Pick the
            # highest-score conversation (whose copies would be reclaimed
            # last anyway) and revert its *trailing* GPU_CPU chunk — the
            # reverted chunk then extends the GPU suffix, keeping the
            # Figure 5 layout legal.
            candidates = self._candidates(ChunkLocation.GPU_CPU, now)
            if not candidates:
                break
            _, _, cache = candidates[-1]
            chunk = cache.rear(ChunkLocation.GPU_CPU)
            assert chunk is not None
            self._move(cache, chunk, ChunkLocation.GPU)
            freed += chunk.num_tokens
            cache.check_layout()
        return freed

    def _demote_or_drop(
        self, cache: ConversationCache, chunk: Chunk, score: float, now: float
    ) -> str:
        """Send one CPU frontier chunk down the hierarchy.

        The cross-tier extension of the paper's retention value: the chunk
        lands on disk iff (a) the tier exists, (b) the placement policy
        says its score justifies NVMe traffic, and (c) room exists or can
        be made by evicting *strictly lower-scored* disk chunks — a chunk
        never displaces disk residents worth more than itself.  Otherwise
        it is dropped for §4.3.4 recomputation.

        Returns ``"demoted"`` or ``"dropped"``.
        """
        if self.disk_capacity_tokens > 0 and chunk.num_tokens <= self.disk_capacity_tokens:
            target = (
                self.placement(chunk, cache.last_active, now)
                if self.placement is not None
                else ChunkLocation.DISK
            )
            if target is ChunkLocation.DISK:
                if self.disk_free_tokens < chunk.num_tokens:
                    self.drop_from_disk(
                        chunk.num_tokens - self.disk_free_tokens,
                        now,
                        max_score=score,
                    )
                if self.disk_free_tokens >= chunk.num_tokens:
                    self._move(cache, chunk, ChunkLocation.DISK)
                    self._bump("demoted_tokens", chunk.num_tokens)
                    return "demoted"
        # Figure 5: the dropped prefix only grows from the front, so any of
        # the conversation's chunks still on disk *ahead* of this one must
        # be discarded with it.
        for victim in cache.chunks:
            if victim.location is not ChunkLocation.DROPPED:
                if victim.location is ChunkLocation.DISK:
                    self._bump("disk_dropped_tokens", victim.num_tokens)
                self._move(cache, victim, ChunkLocation.DROPPED)
                self._bump("dropped_tokens", victim.num_tokens)
            if victim is chunk:
                break
        return "dropped"

    def drop_from_disk(
        self, tokens_needed: int, now: float, max_score: Optional[float] = None
    ) -> int:
        """Evict disk-tier chunks (``DISK -> DROPPED``), cheapest first.

        With ``max_score`` set (the displacement path of
        :meth:`_demote_or_drop`), only chunks scoring *strictly below* it
        are evicted — the incoming chunk may not displace disk residents
        the policy values at least as much.  Returns tokens freed.
        """
        freed = 0
        while freed < tokens_needed:
            candidates = self._candidates(ChunkLocation.DISK, now)
            if not candidates:
                break
            score, chunk, cache = candidates[0]
            if max_score is not None and score >= max_score:
                break
            self._move(cache, chunk, ChunkLocation.DROPPED)
            self._bump("disk_dropped_tokens", chunk.num_tokens)
            self._bump("dropped_tokens", chunk.num_tokens)
            freed += chunk.num_tokens
            cache.check_layout()
            if self.tracer.enabled:
                self.tracer.instant(
                    "disk_drop",
                    t=now,
                    track="cache",
                    conv_id=cache.conv_id,
                    chunk=chunk.index,
                    tokens=chunk.num_tokens,
                    score=score,
                )
        return freed

    # ------------------------------------------------------------------
    # Capacity orchestration for the scheduler
    # ------------------------------------------------------------------

    def ensure_capacity(self, tokens_needed: int, now: float) -> List[Chunk]:
        """Make ``tokens_needed`` GPU tokens obtainable, swapping out (and,
        if necessary, dropping) as required.

        Returns chunks newly copied to the CPU so the caller can model the
        transfer.  After this call ``gpu_available_tokens >=
        tokens_needed`` unless even total capacity is insufficient, in
        which case :class:`CacheCapacityError` is raised.
        """
        if tokens_needed > self.gpu_capacity_tokens:
            raise CacheCapacityError(
                f"request needs {tokens_needed} tokens; GPU capacity is "
                f"{self.gpu_capacity_tokens}"
            )
        if self.gpu_available_tokens >= tokens_needed:
            return []
        copied = self.swap_out(tokens_needed - self.gpu_free_tokens, now)
        if self.gpu_available_tokens < tokens_needed:
            raise CacheCapacityError(
                f"cannot obtain {tokens_needed} GPU tokens "
                f"(available={self.gpu_available_tokens})"
            )
        return copied

    def release_conversation_gpu(self, conv_id: int, now: float) -> Tuple[int, int]:
        """Force a conversation's GPU chunks out (suspension, §4.3.5).

        GPU-only chunks are copied to the CPU tier when it has room and
        dropped otherwise; already-copied (``GPU_CPU``) chunks are simply
        reclaimed.  Returns ``(copied_tokens, dropped_tokens)`` — the first
        is the PCIe traffic the caller must model.
        """
        cache = self._conversations[conv_id]
        self._set_pinned(cache, False)
        # Already-copied chunks (possible only if the conversation was
        # never promoted after an ahead-of-time copy) reclaim for free.
        # They precede all GPU chunks, so this keeps the layout legal.
        for chunk in cache.chunks_in(ChunkLocation.GPU_CPU):
            self._move(cache, chunk, ChunkLocation.CPU)
        gpu_chunks = cache.chunks_in(ChunkLocation.GPU)
        # When the CPU tier cannot hold everything, drop *leading* chunks
        # (cheapest to recompute, §4.3.1) and keep the trailing ones —
        # which also preserves the Figure 5 layout by construction.
        gpu_tokens = sum(c.num_tokens for c in gpu_chunks)
        room = 0 if self.cpu_capacity_tokens == 0 else self.cpu_free_tokens
        if (
            gpu_tokens > 0
            and room > 0
            and self.fault_plan is not None
            and self.fault_plan.fires(FaultSite.SWAP_OUT)
        ):
            # The suspension's batched D2H copy failed: degrade every chunk
            # to a drop; the suspended request recomputes them on resume.
            self.fault_counters.swap_out_failures += 1
            room = 0
        copied = 0
        dropped = 0
        for chunk in gpu_chunks:
            if gpu_tokens - dropped > room:
                self._move(cache, chunk, ChunkLocation.DROPPED)
                self._bump("dropped_tokens", chunk.num_tokens)
                dropped += chunk.num_tokens
            else:
                self._move(cache, chunk, ChunkLocation.CPU)
                self._bump("swapped_out_tokens", chunk.num_tokens)
                copied += chunk.num_tokens
        cache.check_layout()
        return copied, dropped


#: Backward-compatible name from before the disk tier existed; with
#: ``disk_capacity_tokens=0`` (the default) the manager behaves exactly
#: as the two-tier original.
TwoTierCacheManager = TieredCacheManager
