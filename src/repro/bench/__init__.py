"""Performance-trajectory benchmark harness (``repro bench``).

Times the vectorized kernel layer (:mod:`repro.kernels.batched`) and the
:class:`~repro.model.transformer.PagedTransformer` fast paths against the
per-request reference implementations, verifies numerical equivalence
while doing so, and writes the machine-readable ``BENCH_kernels.json``
consumed by CI and tracked across PRs.
"""

from repro.bench.harness import (
    BACKEND_MIN_SPEEDUP,
    BenchResult,
    DECODE_SCHED_MIN_SPEEDUP,
    HISTORY_CAP,
    MIN_SPEEDUP,
    MIN_THRESHOLD_BATCH,
    PACKING_MIN_SPEEDUP,
    TOLERANCE,
    check_thresholds,
    format_table,
    run_all,
    summarize,
    write_json,
)
from repro.bench.watchdog import (
    FAMILY_KEYS,
    HistoryVerdict,
    check_history,
    check_history_file,
    format_report,
    load_history_ledger,
    overall_status,
)

__all__ = [
    "BACKEND_MIN_SPEEDUP",
    "BenchResult",
    "DECODE_SCHED_MIN_SPEEDUP",
    "FAMILY_KEYS",
    "HISTORY_CAP",
    "HistoryVerdict",
    "MIN_SPEEDUP",
    "MIN_THRESHOLD_BATCH",
    "PACKING_MIN_SPEEDUP",
    "TOLERANCE",
    "check_history",
    "check_history_file",
    "check_thresholds",
    "format_report",
    "format_table",
    "load_history_ledger",
    "overall_status",
    "run_all",
    "summarize",
    "write_json",
]
