"""Performance-trajectory benchmark harness (``repro bench``).

Times the vectorized kernel layer (:mod:`repro.kernels.batched`) and the
:class:`~repro.model.transformer.PagedTransformer` fast paths against the
per-request reference implementations, verifies numerical equivalence
while doing so, and writes the machine-readable ``BENCH_kernels.json``
consumed by CI and tracked across PRs.
"""

from repro.bench.harness import (
    BenchResult,
    DECODE_SCHED_MIN_SPEEDUP,
    HISTORY_CAP,
    MIN_SPEEDUP,
    MIN_THRESHOLD_BATCH,
    PACKING_MIN_SPEEDUP,
    TOLERANCE,
    check_thresholds,
    format_table,
    run_all,
    write_json,
)

__all__ = [
    "BenchResult",
    "DECODE_SCHED_MIN_SPEEDUP",
    "HISTORY_CAP",
    "MIN_SPEEDUP",
    "MIN_THRESHOLD_BATCH",
    "PACKING_MIN_SPEEDUP",
    "TOLERANCE",
    "check_thresholds",
    "format_table",
    "run_all",
    "write_json",
]
