"""Bench-history regression watchdog (``repro bench --check-history``).

``BENCH_kernels.json`` (schema 4) carries an append-only ``history``
ledger of per-run summaries.  The watchdog compares the *current* run's
per-family best speedups against the **trailing median** of that ledger
and classifies each family:

- ``pass`` — current >= :data:`WARN_RATIO` x median (noise band);
- ``warn`` — current in [:data:`FAIL_RATIO`, :data:`WARN_RATIO`) x median
  (suspicious drift, not yet conclusive);
- ``fail`` — current < :data:`FAIL_RATIO` x median (a real regression: a
  20% slowdown always lands here);
- ``new`` — no usable history for the family (first run, legacy schema,
  or a corrupt ledger).  Degrades the overall status to ``warn`` at
  worst — **never** a crash and never a hard failure, so a corrupt or
  missing ledger cannot break CI.

The median (not the mean) makes the baseline robust to a single outlier
run in the ledger; the window (:data:`WINDOW`) bounds how far back the
baseline reaches so genuine long-term improvements reset it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FAIL_RATIO",
    "FAMILY_KEYS",
    "HistoryVerdict",
    "WARN_RATIO",
    "WINDOW",
    "check_history",
    "check_history_file",
    "format_report",
    "load_history_ledger",
    "overall_status",
]

#: Summary-dict key per bench family (schema 4).
FAMILY_KEYS: Dict[str, str] = {
    "decode": "decode_kernel_best_speedup",
    "prefill": "prefill_kernel_best_speedup",
    "mixed": "mixed_kernel_best_speedup",
    "e2e": "e2e_best_speedup",
    "swap": "swap_best_speedup",
    "disk": "disk_best_speedup",
    "idle": "idle_restore_speedup",
    "packing": "packing_best_speedup",
    "decode_sched": "decode_sched_speedup",
    "backend": "backend_best_speedup",
}

#: current/median below this is at least a warning (5% noise band).
WARN_RATIO = 0.95
#: current/median below this is a regression (so a 20% slowdown fails).
FAIL_RATIO = 0.85
#: Trailing history entries considered for the median baseline.
WINDOW = 20

_STATUS_RANK = {"pass": 0, "new": 1, "warn": 2, "fail": 3}


@dataclass(frozen=True)
class HistoryVerdict:
    """One family's classification against its trailing-median baseline."""

    family: str
    status: str  # pass | warn | fail | new
    current: Optional[float]
    median: Optional[float]
    ratio: Optional[float]
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "status": self.status,
            "current": self.current,
            "median": self.median,
            "ratio": None if self.ratio is None else round(self.ratio, 4),
            "detail": self.detail,
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _family_history(
    history: Sequence[object], key: str, window: int
) -> List[float]:
    """Usable speedup samples for one summary key, oldest first.

    Tolerates every malformed shape a legacy/corrupt ledger can contain:
    non-dict entries, missing/non-dict ``summary``, non-numeric values,
    and zero/negative placeholders (families that didn't run).
    """
    values: List[float] = []
    for entry in history:
        if not isinstance(entry, dict):
            continue
        summary = entry.get("summary")
        if not isinstance(summary, dict):
            continue
        value = summary.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if value <= 0:
            continue
        values.append(float(value))
    return values[-window:]


def trailing_median(
    history: Sequence[object], key: str, window: int = WINDOW
) -> Optional[float]:
    """Trailing-median baseline for one summary key; ``None`` without
    usable history."""
    values = _family_history(history, key, window)
    if not values:
        return None
    return _median(values)


def check_history(
    summary: Dict[str, object],
    history: Sequence[object],
    window: int = WINDOW,
    warn_ratio: float = WARN_RATIO,
    fail_ratio: float = FAIL_RATIO,
) -> List[HistoryVerdict]:
    """Classify every family of ``summary`` against the ledger.

    Never raises on malformed input — unusable history degrades the
    affected family to ``new`` (an overall ``warn`` at worst).
    """
    verdicts: List[HistoryVerdict] = []
    if not isinstance(history, (list, tuple)):
        history = []
    for family in sorted(FAMILY_KEYS):
        key = FAMILY_KEYS[family]
        raw = summary.get(key) if isinstance(summary, dict) else None
        current: Optional[float] = None
        if (
            not isinstance(raw, bool)
            and isinstance(raw, (int, float))
            and raw > 0
        ):
            current = float(raw)
        median = trailing_median(history, key, window)
        if current is None:
            verdicts.append(
                HistoryVerdict(
                    family, "new", None, median, None,
                    "family missing from current run",
                )
            )
            continue
        if median is None:
            verdicts.append(
                HistoryVerdict(
                    family, "new", current, None, None,
                    "no usable history for family",
                )
            )
            continue
        ratio = current / median
        if ratio < fail_ratio:
            status, detail = "fail", (
                f"regression: {current:.2f}x is "
                f"{(1 - ratio) * 100:.0f}% below the trailing median"
            )
        elif ratio < warn_ratio:
            status, detail = "warn", (
                f"drift: {current:.2f}x is "
                f"{(1 - ratio) * 100:.0f}% below the trailing median"
            )
        else:
            status, detail = "pass", (
                "matches or beats the trailing median"
                if ratio <= 1.05
                else f"improved {(ratio - 1) * 100:.0f}% over the median"
            )
        verdicts.append(
            HistoryVerdict(family, status, current, median, ratio, detail)
        )
    return verdicts


def overall_status(verdicts: Sequence[HistoryVerdict]) -> str:
    """``fail`` if any family failed, ``warn`` on warnings/new families,
    else ``pass``."""
    worst = "pass"
    for verdict in verdicts:
        status = "warn" if verdict.status == "new" else verdict.status
        if _STATUS_RANK[status] > _STATUS_RANK[worst]:
            worst = status
    return worst


def format_report(
    verdicts: Sequence[HistoryVerdict], history_len: int = 0
) -> str:
    """Terminal report: one row per family plus the overall verdict."""
    lines = [
        "== bench history watchdog ==",
        f"baseline: trailing median over last {WINDOW} of "
        f"{history_len} ledger entries "
        f"(warn < {WARN_RATIO:.2f}x, fail < {FAIL_RATIO:.2f}x)",
        "",
        f"{'family':<14} {'status':<6} {'current':>9} {'median':>9} "
        f"{'ratio':>7}  detail",
    ]
    for verdict in verdicts:
        current = "-" if verdict.current is None else f"{verdict.current:.2f}x"
        median = "-" if verdict.median is None else f"{verdict.median:.2f}x"
        ratio = "-" if verdict.ratio is None else f"{verdict.ratio:.3f}"
        lines.append(
            f"{verdict.family:<14} {verdict.status.upper():<6} {current:>9} "
            f"{median:>9} {ratio:>7}  {verdict.detail}"
        )
    lines.append("")
    lines.append(f"overall: {overall_status(verdicts).upper()}")
    return "\n".join(lines)


def load_history_ledger(path: str) -> List[object]:
    """History entries from an existing ``BENCH_kernels.json``; empty on
    any unreadable/legacy/corrupt file (never raises)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return []
    history = payload.get("history") if isinstance(payload, dict) else None
    return history if isinstance(history, list) else []


def check_history_file(
    summary: Dict[str, object], path: str
) -> List[HistoryVerdict]:
    """Convenience wrapper: classify ``summary`` against the ledger found
    at ``path`` (``repro bench --check-history`` entry point)."""
    return check_history(summary, load_history_ledger(path))
