"""Kernel and forward-pass benchmark harness.

Every scenario runs the same inputs through a *reference* implementation
(the per-request kernels that double as the correctness oracle) and the
*optimized* one (the vectorized layer), records wall time for both, and
checks the outputs agree to :data:`TOLERANCE`.  A benchmark that reports
a speedup over outputs that diverged would be meaningless, so equivalence
is part of every measurement, and ``repro bench`` exits non-zero when any
scenario diverges — that is what the CI smoke job asserts.

Scenario families:

- ``decode``  — the batched single-token kernel vs the per-request loop;
- ``prefill`` — the vectorized multi-token kernel vs the tiled one;
- ``mixed``   — a unified prefill + generation batch through both;
- ``e2e``     — full :class:`~repro.model.transformer.PagedTransformer`
  steps with fast paths on vs off, with per-stage wall time;
- ``storage`` — the CPU-store CRC re-verification priced by reading the
  same chunks with ``verify_on_read`` on and off;
- ``swap``    — the coalesced multi-chunk swap-in data path
  (``pop_many`` + ``write_slots_stacked``) vs the per-chunk
  pop/write loop it replaced;
- ``disk``    — the same coalesced restore data path reading from the
  third (NVMe-modeled) tier's :class:`DiskChunkStore`;
- ``idle``    — the long-idle-user end-to-end scenario: conversations
  whose context was demoted to disk under CPU pressure return after a
  long think time; the three-tier server restores them from disk while
  the two-tier reference recomputes the dropped context.  Equivalence is
  bit-identical outputs (the Pensieve transparency guarantee), and the
  speedup is the disk tier's reason to exist.
- ``packing`` — the incremental decode packing cache:
  ``packing/decode-loop`` runs a multi-step decode loop through
  :func:`~repro.kernels.packed_cache.packed_decode_attention` (packed
  table + gathered-KV staging extended in place each step) against the
  batched kernel re-packing and re-gathering from scratch every
  iteration; ``packing/pack-cost`` is the metadata microbenchmark —
  per-iteration incremental-extend vs full-rebuild packing cost, no
  attention at all;
- ``decode_sched`` — the end-to-end A/B: a page-aware-scheduled
  :class:`StatefulChatServer` with the packing cache on vs the FIFO
  rebuild-every-step baseline, serving identical multi-turn batched
  workloads (equivalence = token-identical outputs).
- ``backend`` — the pluggable kernel/layout pair A/B
  (:mod:`repro.backends`): a serving-shaped decode loop run through a
  candidate backend's full allocator + packing-cache + decode-kernel
  stack against the ``paged`` baseline's, with a three-way equivalence
  matrix (candidate vs baseline vs the per-request oracle, plus the
  backend's shared prefill/mixed entry points) folded into every
  measurement.

The ``prefill``/``mixed`` families carry both the vectorized kernel and
the fully-ragged one (``ragged_multi_token_attention``); ragged scenarios
are named ``*/ragged*`` and, together with the ``swap``, ``packing``,
``decode_sched`` and (for ``paged-ring`` rows) ``backend`` families, are
subject to the CI speedup floor (:func:`check_thresholds`).

Timings take the best of ``repeats`` runs (after one warmup) to suppress
scheduler noise; all *structure* in the output — scenario list, shapes,
equivalence verdicts — is deterministic for a given seed/mode, only the
measured seconds vary run to run.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.kernels import (
    AttentionRequest,
    DecodeSlotSource,
    PackedDecodeCache,
    batched_single_token_attention,
    multi_token_attention,
    packed_decode_attention,
    ragged_multi_token_attention,
    single_token_attention,
    vectorized_multi_token_attention,
)
from repro.backends import get_backend
from repro.core.server import StatefulChatServer
from repro.kvcache.pages import BlockTable, PagePool
from repro.kvcache.storage import CpuChunkStore, DiskChunkStore, KVStorage
from repro.model.config import tiny_llama_config, tiny_opt_config
from repro.model.transformer import ForwardRequest, PagedTransformer
from repro.serving.metrics import StageTimings

#: Maximum |reference - optimized| tolerated anywhere in a scenario.
TOLERANCE = 1e-6

#: Schema version of ``BENCH_kernels.json``.  4 added the ``packing`` and
#: ``decode_sched`` families and the appended ``history`` ledger.
SCHEMA_VERSION = 4

#: CI floor: thresholded scenarios (ragged kernel + coalesced swap, at
#: ``batch >= MIN_THRESHOLD_BATCH``) must beat this speedup or
#: :func:`check_thresholds` reports them and ``repro bench
#: --enforce-thresholds`` exits non-zero.
MIN_SPEEDUP = 1.5
MIN_THRESHOLD_BATCH = 8

#: Floor for the ``packing`` family.  Lower than the ragged/swap floor
#: because both paths run the identical segment-masked attention math —
#: the cache can only win back the packing + gather share of each step
#: (measured 1.3-1.7x on the gated shapes; the floor leaves headroom for
#: noisy CI runners).
PACKING_MIN_SPEEDUP = 1.15

#: Separate (lower) floor for the end-to-end ``decode_sched`` A/B: the
#: full serving stack amortizes the kernel win over MLP/projection work,
#: so the observable floor is modest but must stay real.
DECODE_SCHED_MIN_SPEEDUP = 1.1

#: Floor for the ``backend`` family's ``paged-ring`` rows at long
#: context: both sides run identical pack/gather bookkeeping and
#: identical attention math, so the ring-compacted contiguous staging
#: can only win the BLAS-operand-layout share of each step (measured
#: ~1.3-1.4x at the gated ctx-512 shape).  ``contiguous`` rows are
#: layout coverage (same kernels as ``paged``) and are not gated.
BACKEND_MIN_SPEEDUP = 1.1

#: How many historical run summaries ``BENCH_kernels.json`` retains.
HISTORY_CAP = 200


@dataclass
class BenchResult:
    """One scenario's measurement: paired timings + equivalence verdict."""

    name: str
    #: decode | prefill | mixed | e2e | storage | swap | disk | idle |
    #: packing | decode_sched | backend
    family: str
    reference: str
    optimized: str
    batch: int
    tokens_per_call: int
    reference_s: float
    optimized_s: float
    speedup: float
    reference_tokens_per_s: float
    optimized_tokens_per_s: float
    max_abs_diff: float
    equivalent: bool
    #: e2e scenarios: mean wall seconds per stage per call (both modes).
    stages: Dict[str, float] = field(default_factory=dict)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``repeats`` calls, after one warmup call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _best_of_stateful(
    setup: Callable[[], object], fn: Callable[[], object], repeats: int
) -> float:
    """Like :func:`_best_of` for consuming operations: ``setup`` re-arms
    the state ``fn`` destroys (e.g. refills a chunk store that ``fn``
    pops) before every timed call and is excluded from the timing."""
    setup()
    fn()
    best = float("inf")
    for _ in range(repeats):
        setup()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _max_diff(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> float:
    return max(
        (float(np.abs(x - y).max()) for x, y in zip(a, b) if x.size),
        default=0.0,
    )


def _result(
    name: str,
    family: str,
    reference: str,
    optimized: str,
    batch: int,
    tokens_per_call: int,
    reference_s: float,
    optimized_s: float,
    max_abs_diff: float,
    stages: Optional[Dict[str, float]] = None,
) -> BenchResult:
    return BenchResult(
        name=name,
        family=family,
        reference=reference,
        optimized=optimized,
        batch=batch,
        tokens_per_call=tokens_per_call,
        reference_s=reference_s,
        optimized_s=optimized_s,
        speedup=reference_s / optimized_s if optimized_s > 0 else float("inf"),
        reference_tokens_per_s=tokens_per_call / reference_s,
        optimized_tokens_per_s=tokens_per_call / optimized_s,
        max_abs_diff=max_abs_diff,
        equivalent=max_abs_diff <= TOLERANCE,
        stages=dict(stages or {}),
    )


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------


def _make_cache(
    rng: np.random.Generator, num_slots: int, kv_heads: int, head_dim: int
):
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    return k_cache, v_cache


def _make_requests(
    rng: np.random.Generator,
    num_slots: int,
    q_lens: Sequence[int],
    ctx_lens: Sequence[int],
    num_heads: int,
    head_dim: int,
    query_offsets: Optional[Sequence[Optional[int]]] = None,
) -> List[AttentionRequest]:
    """Scattered requests with disjoint random slot sets.

    ``query_offsets[i]``, when given and not ``None``, positions request
    ``i``'s queries away from the context tail — the Figure 8(d)
    dropped-prefix recompute sub-request shape.
    """
    perm = rng.permutation(num_slots)
    requests, used = [], 0
    for i, (q_len, ctx) in enumerate(zip(q_lens, ctx_lens)):
        slots = list(perm[used : used + ctx])
        used += ctx
        query = rng.standard_normal((q_len, num_heads, head_dim))
        offset = query_offsets[i] if query_offsets is not None else None
        if offset is None:
            requests.append(AttentionRequest(query=query, slots=slots))
        else:
            requests.append(
                AttentionRequest(query=query, slots=slots, query_offset=offset)
            )
    return requests


def bench_decode_kernel(
    name: str,
    batch: int,
    ctx: int,
    num_heads: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
) -> BenchResult:
    """Batched single-token kernel vs the per-request loop."""
    rng = np.random.default_rng(seed)
    num_slots = batch * ctx
    k_cache, v_cache = _make_cache(rng, num_slots, kv_heads, head_dim)
    requests = _make_requests(
        rng, num_slots, [1] * batch, [ctx] * batch, num_heads, head_dim
    )
    ref = single_token_attention(requests, k_cache, v_cache)
    opt = batched_single_token_attention(requests, k_cache, v_cache)
    return _result(
        name,
        "decode",
        "single_token_attention",
        "batched_single_token_attention",
        batch=batch,
        tokens_per_call=batch,
        reference_s=_best_of(
            lambda: single_token_attention(requests, k_cache, v_cache), repeats
        ),
        optimized_s=_best_of(
            lambda: batched_single_token_attention(requests, k_cache, v_cache),
            repeats,
        ),
        max_abs_diff=_max_diff(ref, opt),
    )


def bench_multi_token_kernel(
    name: str,
    family: str,
    q_lens: Sequence[int],
    ctx_lens: Sequence[int],
    num_heads: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
) -> BenchResult:
    """Vectorized multi-token kernel vs the tiled per-request one."""
    rng = np.random.default_rng(seed)
    num_slots = int(sum(ctx_lens))
    k_cache, v_cache = _make_cache(rng, num_slots, kv_heads, head_dim)
    requests = _make_requests(
        rng, num_slots, q_lens, ctx_lens, num_heads, head_dim
    )
    ref = multi_token_attention(requests, k_cache, v_cache)
    opt = vectorized_multi_token_attention(requests, k_cache, v_cache)
    return _result(
        name,
        family,
        "multi_token_attention",
        "vectorized_multi_token_attention",
        batch=len(requests),
        tokens_per_call=int(sum(q_lens)),
        reference_s=_best_of(
            lambda: multi_token_attention(requests, k_cache, v_cache), repeats
        ),
        optimized_s=_best_of(
            lambda: vectorized_multi_token_attention(requests, k_cache, v_cache),
            repeats,
        ),
        max_abs_diff=_max_diff(ref, opt),
    )


def bench_ragged_kernel(
    name: str,
    family: str,
    q_lens: Sequence[int],
    ctx_lens: Sequence[int],
    num_heads: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
    query_offsets: Optional[Sequence[Optional[int]]] = None,
) -> BenchResult:
    """Fully-ragged batched kernel vs the tiled per-request oracle.

    ``query_offsets`` builds Figure 8(d) recompute-split sub-requests
    (queries positioned before the context tail).
    """
    rng = np.random.default_rng(seed)
    num_slots = int(sum(ctx_lens))
    k_cache, v_cache = _make_cache(rng, num_slots, kv_heads, head_dim)
    requests = _make_requests(
        rng, num_slots, q_lens, ctx_lens, num_heads, head_dim, query_offsets
    )
    ref = multi_token_attention(requests, k_cache, v_cache)
    opt = ragged_multi_token_attention(requests, k_cache, v_cache)
    return _result(
        name,
        family,
        "multi_token_attention",
        "ragged_multi_token_attention",
        batch=len(requests),
        tokens_per_call=int(sum(q_lens)),
        reference_s=_best_of(
            lambda: multi_token_attention(requests, k_cache, v_cache), repeats
        ),
        optimized_s=_best_of(
            lambda: ragged_multi_token_attention(requests, k_cache, v_cache),
            repeats,
        ),
        max_abs_diff=_max_diff(ref, opt),
    )


def bench_swap_restore(
    name: str,
    num_chunks: int,
    chunk_tokens: int,
    num_layers: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
) -> BenchResult:
    """Coalesced multi-chunk swap-in vs the per-chunk restore loop.

    The reference is the data path this PR replaced: one
    ``CpuChunkStore.pop`` + ``KVStorage.write_all_layers`` per chunk.
    The optimized path moves the whole batch with one ``pop_many`` and
    one stacked scatter.  The CRC re-check is identical work in both
    paths and is priced separately by ``storage/crc-read``, so the
    stores run with ``verify_on_read=False`` to isolate the data
    movement.  Equivalence is bit-exactness of the final KV arrays.
    """
    rng = np.random.default_rng(seed)
    total = num_chunks * chunk_tokens
    config = tiny_llama_config(
        num_layers=num_layers,
        hidden_size=8 * head_dim,
        num_heads=8,
        num_kv_heads=kv_heads,
    )
    # Scattered (post-eviction) slot layout: chunks own disjoint random
    # slot sets, matching what restore_front hands the real server.
    perm = rng.permutation(total)
    groups = [
        perm[i * chunk_tokens : (i + 1) * chunk_tokens].astype(np.int64)
        for i in range(num_chunks)
    ]
    datas = [
        (
            rng.standard_normal((num_layers, chunk_tokens, kv_heads, head_dim)),
            rng.standard_normal((num_layers, chunk_tokens, kv_heads, head_dim)),
        )
        for _ in range(num_chunks)
    ]

    ref_store = CpuChunkStore(total, verify_on_read=False)
    opt_store = CpuChunkStore(total, verify_on_read=False)
    ref_storage = KVStorage(config, num_slots=total, dtype=np.float64)
    opt_storage = KVStorage(config, num_slots=total, dtype=np.float64)

    def fill(store: CpuChunkStore) -> None:
        for i, (k, v) in enumerate(datas):
            store.put(0, i, k, v)

    def run_per_chunk() -> None:
        for i, slots in enumerate(groups):
            k, v = ref_store.pop(0, i)
            ref_storage.write_all_layers(list(slots), k, v)

    def run_coalesced() -> None:
        popped, _ = opt_store.pop_many(0, list(range(num_chunks)))
        opt_storage.write_slots_stacked(groups, [data for _, data in popped])

    reference_s = _best_of_stateful(
        lambda: fill(ref_store), run_per_chunk, repeats
    )
    optimized_s = _best_of_stateful(
        lambda: fill(opt_store), run_coalesced, repeats
    )
    # The stacked scatter fills persistent KVStorage scratch instead of
    # np.concatenate-ing three temporaries; after the timed warm-up the
    # steady state must not allocate — pin the scratch identity across
    # one more full transfer.
    scratch_ids = (
        id(opt_storage._stack_idx),
        id(opt_storage._stack_k),
        id(opt_storage._stack_v),
    )
    fill(opt_store)
    run_coalesced()
    assert scratch_ids == (
        id(opt_storage._stack_idx),
        id(opt_storage._stack_k),
        id(opt_storage._stack_v),
    ), "write_slots_stacked scratch reallocated in the steady state"
    max_abs_diff = max(
        float(np.abs(ref_storage.k - opt_storage.k).max()),
        float(np.abs(ref_storage.v - opt_storage.v).max()),
    )
    return _result(
        name,
        "swap",
        "CpuChunkStore.pop + write_all_layers [per chunk]",
        "pop_many + write_slots_stacked [coalesced]",
        batch=num_chunks,
        tokens_per_call=total,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=max_abs_diff,
    )


def _e2e_model(
    arch: str, num_layers: int, num_slots: int, seed: int,
    backend: str = "paged",
):
    if arch == "opt":
        config = tiny_opt_config(
            num_layers=num_layers, hidden_size=64, num_heads=8
        )
    else:
        config = tiny_llama_config(
            num_layers=num_layers, hidden_size=64, num_heads=8, num_kv_heads=2
        )
    storage = KVStorage(config, num_slots=num_slots, dtype=np.float64)
    model = PagedTransformer(config, storage, seed=seed, backend=backend)
    return config, storage, model


def bench_e2e(
    name: str,
    arch: str,
    prefill_lens: Sequence[int],
    decode_ctxs: Sequence[int],
    num_layers: int,
    repeats: int,
    seed: int,
    backend: str = "paged",
) -> BenchResult:
    """Full forward steps: vectorized fast paths vs the per-layer baseline.

    The batch mixes ``len(prefill_lens)`` prefill requests with
    ``len(decode_ctxs)`` generation requests (either list may be empty —
    an all-decode batch exercises the batched-kernel dispatch).
    """
    rng = np.random.default_rng(seed)
    ctx_lens = list(prefill_lens) + [ctx for ctx in decode_ctxs]
    num_slots = int(sum(ctx_lens))
    config, storage, model = _e2e_model(
        arch, num_layers, num_slots, seed, backend=backend
    )
    # Pre-existing context state for the decode requests.
    storage.k[:] = rng.standard_normal(storage.k.shape)
    storage.v[:] = rng.standard_normal(storage.v.shape)

    perm = rng.permutation(num_slots)
    batch: List[ForwardRequest] = []
    used = 0
    for n in prefill_lens:
        slots = list(perm[used : used + n])
        used += n
        ids = rng.integers(0, config.vocab_size, size=n)
        batch.append(ForwardRequest(input_ids=ids, context_slots=slots))
    for ctx in decode_ctxs:
        slots = list(perm[used : used + ctx])
        used += ctx
        ids = rng.integers(0, config.vocab_size, size=1)
        batch.append(ForwardRequest(input_ids=ids, context_slots=slots))

    stage = "decode" if not prefill_lens else (
        "prefill" if not decode_ctxs else "mixed"
    )
    timings = StageTimings()

    def run_fast():
        model.use_fast_paths = True
        with timings.stage(f"{stage}/fast"):
            return model.forward(batch)

    def run_reference():
        model.use_fast_paths = False
        with timings.stage(f"{stage}/reference"):
            return model.forward(batch)

    opt = run_fast()
    ref = run_reference()
    reference_s = _best_of(run_reference, repeats)
    optimized_s = _best_of(run_fast, repeats)
    model.use_fast_paths = True
    tokens = sum(r.num_new_tokens for r in batch)
    stages = {key: timings.mean(key) for key in timings.totals}
    return _result(
        name,
        "e2e",
        "PagedTransformer[per-layer tiled]",
        "PagedTransformer[fast paths]",
        batch=len(batch),
        tokens_per_call=tokens,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=_max_diff(ref, opt),
        stages=stages,
    )


def bench_crc_verification(
    name: str,
    num_chunks: int,
    chunk_tokens: int,
    num_layers: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
) -> BenchResult:
    """Price of the CPU-store CRC re-check on every read."""
    rng = np.random.default_rng(seed)
    capacity = num_chunks * chunk_tokens

    def fill(store: CpuChunkStore) -> None:
        chunk_rng = np.random.default_rng(seed)
        for i in range(num_chunks):
            k = chunk_rng.standard_normal(
                (num_layers, chunk_tokens, kv_heads, head_dim)
            )
            v = chunk_rng.standard_normal(
                (num_layers, chunk_tokens, kv_heads, head_dim)
            )
            store.put(0, i, k, v)

    verifying = CpuChunkStore(capacity, verify_on_read=True)
    trusting = CpuChunkStore(capacity, verify_on_read=False)
    fill(verifying)
    fill(trusting)

    def read_all(store: CpuChunkStore) -> List[np.ndarray]:
        return [store.get(0, i)[0] for i in range(num_chunks)]

    ref = read_all(verifying)
    opt = read_all(trusting)
    tokens = num_chunks * chunk_tokens
    return _result(
        name,
        "storage",
        "CpuChunkStore[verify_on_read=True]",
        "CpuChunkStore[verify_on_read=False]",
        batch=num_chunks,
        tokens_per_call=tokens,
        reference_s=_best_of(lambda: read_all(verifying), repeats),
        optimized_s=_best_of(lambda: read_all(trusting), repeats),
        max_abs_diff=_max_diff(ref, opt),
    )


def bench_disk_restore(
    name: str,
    num_chunks: int,
    chunk_tokens: int,
    num_layers: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
) -> BenchResult:
    """Coalesced disk-tier restore vs the per-chunk read loop.

    Same data path as ``bench_swap_restore`` one tier further down: the
    chunks come out of a :class:`DiskChunkStore` (tier 3) instead of the
    CPU store.  The host-memory mechanics are identical by construction —
    this scenario pins that down by measuring it, so a future disk-store
    divergence (extra staging copies, say) shows up as a family
    regression.  Equivalence is bit-exactness of the final KV arrays.
    """
    rng = np.random.default_rng(seed)
    total = num_chunks * chunk_tokens
    config = tiny_llama_config(
        num_layers=num_layers,
        hidden_size=8 * head_dim,
        num_heads=8,
        num_kv_heads=kv_heads,
    )
    perm = rng.permutation(total)
    groups = [
        perm[i * chunk_tokens : (i + 1) * chunk_tokens].astype(np.int64)
        for i in range(num_chunks)
    ]
    datas = [
        (
            rng.standard_normal((num_layers, chunk_tokens, kv_heads, head_dim)),
            rng.standard_normal((num_layers, chunk_tokens, kv_heads, head_dim)),
        )
        for _ in range(num_chunks)
    ]

    ref_store = DiskChunkStore(total, verify_on_read=False)
    opt_store = DiskChunkStore(total, verify_on_read=False)
    ref_storage = KVStorage(config, num_slots=total, dtype=np.float64)
    opt_storage = KVStorage(config, num_slots=total, dtype=np.float64)

    def fill(store: DiskChunkStore) -> None:
        for i, (k, v) in enumerate(datas):
            store.put(0, i, k, v)

    def run_per_chunk() -> None:
        for i, slots in enumerate(groups):
            k, v = ref_store.pop(0, i)
            ref_storage.write_all_layers(list(slots), k, v)

    def run_coalesced() -> None:
        popped, _ = opt_store.pop_many(0, list(range(num_chunks)))
        opt_storage.write_slots_stacked(groups, [data for _, data in popped])

    reference_s = _best_of_stateful(
        lambda: fill(ref_store), run_per_chunk, repeats
    )
    optimized_s = _best_of_stateful(
        lambda: fill(opt_store), run_coalesced, repeats
    )
    max_abs_diff = max(
        float(np.abs(ref_storage.k - opt_storage.k).max()),
        float(np.abs(ref_storage.v - opt_storage.v).max()),
    )
    return _result(
        name,
        "disk",
        "DiskChunkStore.pop + write_all_layers [per chunk]",
        "pop_many + write_slots_stacked [coalesced]",
        batch=num_chunks,
        tokens_per_call=total,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=max_abs_diff,
    )


def bench_long_idle_user(
    name: str,
    num_convs: int,
    history_turns: int,
    prompt_len: int,
    new_tokens: int,
    repeats: int,
    seed: int,
) -> BenchResult:
    """The extreme-think-time return turn: disk restore vs recompute.

    Both servers run the same tight GPU/CPU budget and serve the same
    multi-turn histories, which squeezes every idle conversation's
    context out of the CPU tier.  The three-tier server demotes it to
    disk; the two-tier reference drops it.  The timed phase is each
    conversation's return turn after the long idle — the reference
    recomputes the dropped context through the model (§4.3.4) while the
    optimized server reads it back from the disk store.  Outputs must be
    bit-identical (``max_abs_diff`` is 0.0 when every returned token
    matches, 1.0 otherwise).
    """
    config = tiny_opt_config()
    caps = dict(
        gpu_capacity_tokens=192,
        cpu_capacity_tokens=96,
        chunk_size=16,
        page_size=8,
        seed=0,
    )

    def build(disk_tokens: int) -> StatefulChatServer:
        server = StatefulChatServer(
            config, disk_capacity_tokens=disk_tokens, **caps
        )
        for turn in range(history_turns):
            for conv in range(num_convs):
                prompt = [
                    (conv * 17 + turn * 5 + i) % config.vocab_size
                    for i in range(prompt_len)
                ]
                server.chat(conv, prompt_ids=prompt, max_new_tokens=new_tokens)
        return server

    def return_turns(server: StatefulChatServer) -> List[List[int]]:
        return [
            server.chat(
                conv,
                prompt_ids=[
                    (conv * 29 + 7 + i) % config.vocab_size
                    for i in range(prompt_len)
                ],
                max_new_tokens=new_tokens,
            )
            for conv in range(num_convs)
        ]

    state: Dict[str, object] = {}
    outputs: Dict[str, List[List[int]]] = {}

    def ref_setup() -> None:
        state["ref"] = build(0)

    def ref_run() -> None:
        outputs["ref"] = return_turns(state["ref"])

    def opt_setup() -> None:
        state["opt"] = build(1 << 20)

    def opt_run() -> None:
        outputs["opt"] = return_turns(state["opt"])

    reference_s = _best_of_stateful(ref_setup, ref_run, repeats)
    optimized_s = _best_of_stateful(opt_setup, opt_run, repeats)

    # The scenario is only meaningful if the pressure actually pushed
    # context through the tiers: the two-tier run must have recomputed
    # and the three-tier run must have read the disk.
    opt_server = state["opt"]
    assert opt_server.manager.stats["demoted_tokens"] > 0, (
        f"{name}: workload never demoted context to disk"
    )
    assert opt_server.manager.stats["disk_hit_tokens"] > 0, (
        f"{name}: return turns never read the disk tier"
    )
    assert state["ref"].manager.stats["recomputed_tokens"] > 0, (
        f"{name}: reference never recomputed dropped context"
    )

    tokens = num_convs * (prompt_len + new_tokens)
    return _result(
        name,
        "idle",
        "two-tier [dropped context recomputed]",
        "three-tier [context restored from disk]",
        batch=num_convs,
        tokens_per_call=tokens,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=0.0 if outputs["ref"] == outputs["opt"] else 1.0,
    )


def bench_packed_decode(
    name: str,
    batch: int,
    ctx: int,
    steps: int,
    num_heads: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
    page_size: int = 16,
) -> BenchResult:
    """Multi-step decode loop: incremental packing cache vs re-pack/re-gather.

    Both paths drive real :class:`BlockTable`\\ s through ``steps`` decode
    iterations, appending one token per conversation per step and writing
    its K/V into the cache before attending.  The reference rebuilds the
    padded slot table and re-gathers the whole batch's K/V from scratch
    every iteration (:func:`batched_single_token_attention`, today's
    baseline); the optimized path keeps a :class:`PackedDecodeCache` alive
    across iterations, so each step extends table rows in place and
    gathers only the one new KV column per row.  Equivalence is checked
    per step over the full loop (the packed kernel runs the identical
    segment-masked math), and the timed region covers the complete loop
    including all packing/gather bookkeeping.
    """
    rng = np.random.default_rng(seed)
    pages_per_conv = -(-(ctx + steps) // page_size)
    num_pages = batch * pages_per_conv
    num_slots = num_pages * page_size
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    queries = rng.standard_normal((steps, batch, num_heads, head_dim))

    state: Dict[str, object] = {}

    def setup() -> None:
        pool = PagePool(num_pages, page_size)
        tables = []
        for _ in range(batch):
            table = BlockTable(pool)
            table.append_tokens(ctx)
            tables.append(table)
        state["tables"] = tables
        state["cache"] = PackedDecodeCache()

    def ref_run() -> List[np.ndarray]:
        tables = state["tables"]
        outs: List[np.ndarray] = []
        for step in range(steps):
            requests = []
            for i, table in enumerate(tables):
                table.append_tokens(1)
                requests.append(
                    AttentionRequest(
                        query=queries[step, i : i + 1],
                        slots=table.slots_array(0, table.length),
                    )
                )
            outs.append(
                np.concatenate(
                    batched_single_token_attention(requests, k_cache, v_cache)
                )
            )
        return outs

    def opt_run() -> List[np.ndarray]:
        tables = state["tables"]
        cache = state["cache"]
        outs: List[np.ndarray] = []
        for step in range(steps):
            for table in tables:
                table.append_tokens(1)
            packed = cache.pack(
                [DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)]
            )
            outs.append(
                packed_decode_attention(queries[step], packed, 0, k_cache, v_cache)
            )
        return outs

    # Equivalence: one full loop per path on identically-seeded state
    # (fresh pools allocate identical slot layouts), compared step by step.
    setup()
    ref_outs = ref_run()
    setup()
    opt_outs = opt_run()
    max_abs_diff = _max_diff(ref_outs, opt_outs)

    reference_s = _best_of_stateful(setup, ref_run, repeats)
    optimized_s = _best_of_stateful(setup, opt_run, repeats)

    # The steady state the cache exists for: the initial pack builds every
    # row once, then every later step extends rows in place.
    stats = state["cache"].stats
    assert stats["rebuilt_rows"] == batch, (
        f"{name}: packing cache rebuilt rows mid-loop ({stats})"
    )
    assert stats["extended_rows"] == (steps - 1) * batch, (
        f"{name}: packing cache fell out of the extend path ({stats})"
    )

    return _result(
        name,
        "packing",
        "rebuild+regather per step [batched_single_token_attention]",
        "packed_decode_attention [incremental cache]",
        batch=batch,
        tokens_per_call=batch * steps,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=max_abs_diff,
    )


def bench_pack_cost(
    name: str,
    batch: int,
    ctx: int,
    steps: int,
    repeats: int,
    seed: int,
    page_size: int = 16,
) -> BenchResult:
    """Metadata microbenchmark: pack-rebuild vs incremental-extend.

    No attention, no KV gather — this isolates the per-iteration cost of
    producing the padded ``[batch, max_context]`` slot table.  The
    reference calls :meth:`PackedDecodeCache.pack_from_scratch` (the
    oracle full rebuild) every step; the optimized path's
    :meth:`PackedDecodeCache.pack` extends each row by its one new slot.
    Equivalence is exact array equality of the final table and lengths
    (``max_abs_diff`` 0.0/1.0) — the incremental table must be
    indistinguishable from the rebuilt one, padding included.
    """
    del seed  # slot layout is deterministic; no randomness needed
    pages_per_conv = -(-(ctx + steps) // page_size)
    num_pages = batch * pages_per_conv

    state: Dict[str, object] = {}

    def setup() -> None:
        pool = PagePool(num_pages, page_size)
        tables = []
        for _ in range(batch):
            table = BlockTable(pool)
            table.append_tokens(ctx)
            tables.append(table)
        state["tables"] = tables
        state["cache"] = PackedDecodeCache()

    def ref_run() -> tuple:
        tables = state["tables"]
        for _ in range(steps):
            for table in tables:
                table.append_tokens(1)
            sources = [
                DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)
            ]
            table_arr, lengths = PackedDecodeCache.pack_from_scratch(sources)
        return table_arr, lengths

    def opt_run() -> tuple:
        tables = state["tables"]
        cache = state["cache"]
        for _ in range(steps):
            for table in tables:
                table.append_tokens(1)
            packed = cache.pack(
                [DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)]
            )
        return np.asarray(packed.table), np.asarray(packed.lengths)

    setup()
    ref_table, ref_lengths = ref_run()
    setup()
    opt_table, opt_lengths = opt_run()
    exact = np.array_equal(ref_table, opt_table) and np.array_equal(
        ref_lengths, opt_lengths
    )

    reference_s = _best_of_stateful(setup, ref_run, repeats)
    optimized_s = _best_of_stateful(setup, opt_run, repeats)

    return _result(
        name,
        "packing",
        "pack_from_scratch per step",
        "incremental extend [PackedDecodeCache.pack]",
        batch=batch,
        tokens_per_call=batch * steps,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=0.0 if exact else 1.0,
    )


def bench_backend_decode(
    name: str,
    backend_name: str,
    batch: int,
    ctx: int,
    steps: int,
    num_heads: int,
    kv_heads: int,
    head_dim: int,
    repeats: int,
    seed: int,
    page_size: int = 16,
) -> BenchResult:
    """Decode-loop A/B: the ``paged`` baseline vs backend ``backend_name``.

    Both sides run the same serving-shaped loop through their backend's
    *full* kernel/layout pair: tables come from the backend's allocator,
    each step appends one token per conversation, writes its K/V into
    flat storage at whatever slot the layout chose, packs through the
    backend's decode cache and attends through its decode kernel.  K/V
    values are keyed by (conversation, position) — never by slot — so
    backends with different slot layouts (``contiguous`` extents vs
    scattered pages) still must produce identical attention outputs.

    Equivalence is a cross-backend matrix folded into ``max_abs_diff``:
    the candidate loop vs the ``paged`` loop, the candidate loop vs the
    per-request oracle (``single_token_attention`` over explicit slot
    lists), and the backend's shared prefill/mixed entry points vs the
    per-request ``multi_token_attention`` oracle — every ``--backend``
    choice is re-proven numerically inside the measurement itself.
    """
    rng = np.random.default_rng(seed)
    tokens_per_conv = ctx + steps
    reserve_tokens = -(-tokens_per_conv // page_size) * page_size
    num_pages = batch * (reserve_tokens // page_size)
    keys = rng.standard_normal((batch, tokens_per_conv, kv_heads, head_dim))
    vals = rng.standard_normal((batch, tokens_per_conv, kv_heads, head_dim))
    queries = rng.standard_normal((steps, batch, num_heads, head_dim))

    state: Dict[str, object] = {}

    def make_setup(backend_key: str) -> Callable[[], None]:
        def setup() -> None:
            backend = get_backend(backend_key)
            pool = PagePool(num_pages, page_size)
            allocator = backend.create_allocator(
                pool, reserve_tokens=reserve_tokens, max_tables=batch
            )
            k_cache = np.zeros((allocator.storage_slots, kv_heads, head_dim))
            v_cache = np.zeros((allocator.storage_slots, kv_heads, head_dim))
            tables = []
            for i in range(batch):
                table = allocator.new_table()
                table.append_tokens(ctx)
                slots = table.slots_array(0, ctx)
                k_cache[slots] = keys[i, :ctx]
                v_cache[slots] = vals[i, :ctx]
                tables.append(table)
            state["backend"] = backend
            state["tables"] = tables
            state["cache"] = backend.create_decode_cache()
            state["k"] = k_cache
            state["v"] = v_cache

        return setup

    def append_step(step: int) -> None:
        tables = state["tables"]
        k_cache, v_cache = state["k"], state["v"]
        pos = ctx + step
        for i, table in enumerate(tables):
            table.append_tokens(1)
            slot = table.slot(pos)
            k_cache[slot] = keys[i, pos]
            v_cache[slot] = vals[i, pos]

    def run_loop() -> List[np.ndarray]:
        backend = state["backend"]
        tables, cache = state["tables"], state["cache"]
        k_cache, v_cache = state["k"], state["v"]
        outs: List[np.ndarray] = []
        for step in range(steps):
            append_step(step)
            packed = cache.pack(
                [DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)]
            )
            outs.append(
                backend.decode_attention(queries[step], packed, 0, k_cache, v_cache)
            )
        return outs

    def oracle_loop() -> List[np.ndarray]:
        tables = state["tables"]
        k_cache, v_cache = state["k"], state["v"]
        outs: List[np.ndarray] = []
        for step in range(steps):
            append_step(step)
            requests = [
                AttentionRequest(
                    query=queries[step, i : i + 1],
                    slots=table.slots_array(0, table.length),
                )
                for i, table in enumerate(tables)
            ]
            outs.append(
                np.concatenate(single_token_attention(requests, k_cache, v_cache))
            )
        return outs

    ref_setup = make_setup("paged")
    opt_setup = make_setup(backend_name)

    # Equivalence matrix: candidate vs baseline vs per-request oracle,
    # each on identically-valued (conversation, position) KV state.
    ref_setup()
    ref_outs = run_loop()
    opt_setup()
    opt_outs = run_loop()
    opt_setup()
    oracle_outs = oracle_loop()
    max_abs_diff = max(
        _max_diff(ref_outs, opt_outs),
        _max_diff(opt_outs, oracle_outs),
    )

    # The shared prefill/mixed entry points route through the same
    # backend object in serving — prove them against the per-request
    # oracle inside the same measurement.
    opt_backend = get_backend(backend_name)
    mix_rng = np.random.default_rng(seed + 1)
    mix_slots = 4 * 32
    mk, mv = _make_cache(mix_rng, mix_slots, kv_heads, head_dim)
    prefill_reqs = _make_requests(
        mix_rng, mix_slots, [8] * 4, [32] * 4, num_heads, head_dim
    )
    mixed_reqs = _make_requests(
        mix_rng, mix_slots, [4, 4, 1, 1], [24] * 4, num_heads, head_dim
    )
    max_abs_diff = max(
        max_abs_diff,
        _max_diff(
            multi_token_attention(prefill_reqs, mk, mv),
            opt_backend.multi_token_attention(prefill_reqs, mk, mv),
        ),
        _max_diff(
            multi_token_attention(mixed_reqs, mk, mv),
            opt_backend.ragged_attention(mixed_reqs, mk, mv),
        ),
    )

    # Interleave the timed pairs rather than running all-reference then
    # all-candidate: the two loops differ only in the staging layout, so
    # CPU-contention drift across the measurement window would otherwise
    # land entirely on one side of the ratio.
    ref_setup()
    run_loop()
    opt_setup()
    run_loop()
    reference_s = optimized_s = float("inf")
    for _ in range(repeats):
        ref_setup()
        start = time.perf_counter()
        run_loop()
        reference_s = min(reference_s, time.perf_counter() - start)
        opt_setup()
        start = time.perf_counter()
        run_loop()
        optimized_s = min(optimized_s, time.perf_counter() - start)

    # Whatever the backend, its cache must have run in the incremental
    # regime: every row built once, every later step an in-place extend.
    stats = state["cache"].stats
    assert stats["rebuilt_rows"] == batch, (
        f"{name}: backend cache rebuilt rows mid-loop ({stats})"
    )
    assert stats["extended_rows"] == (steps - 1) * batch, (
        f"{name}: backend cache fell out of the extend path ({stats})"
    )

    return _result(
        name,
        "backend",
        "paged decode loop [block tables + packed staging]",
        f"{backend_name} decode loop [{opt_backend.summary}]",
        batch=batch,
        tokens_per_call=batch * steps,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=max_abs_diff,
    )


def bench_decode_sched(
    name: str,
    num_convs: int,
    turns: int,
    prompt_len: int,
    new_tokens: int,
    repeats: int,
    seed: int,
    opt_packing_cache: bool = True,
    opt_decode_sched: str = "page-aware",
    opt_backend: str = "paged",
) -> BenchResult:
    """End-to-end A/B: page-aware scheduling + packing cache vs FIFO rebuild.

    Two :class:`StatefulChatServer` instances serve identical multi-turn
    ``chat_batch`` workloads whose arrival order is shuffled differently
    every round — the reference (``decode_sched="fifo"``,
    ``packing_cache=False``) processes prompts in arrival order and packs
    every decode step from scratch; the optimized server
    (``decode_sched="page-aware"``, ``packing_cache=True``) reorders the
    batch onto its existing cache rows and GPU-resident conversations, so
    steady-state decode steps extend the packed table in place.
    Greedy-sampled outputs are order-independent per conversation, so
    equivalence is token-identical transcripts (0.0/1.0).
    """
    config = tiny_opt_config()
    caps = dict(
        gpu_capacity_tokens=1 << 14,
        cpu_capacity_tokens=1 << 14,
        chunk_size=16,
        page_size=8,
        seed=0,
    )
    order_rng = np.random.default_rng(seed)
    orders = [order_rng.permutation(num_convs) for _ in range(turns)]

    def rounds(server: StatefulChatServer) -> Dict[int, List[List[int]]]:
        transcripts: Dict[int, List[List[int]]] = {c: [] for c in range(num_convs)}
        for turn, order in enumerate(orders):
            prompts = [
                (
                    int(conv),
                    [
                        (int(conv) * 13 + turn * 3 + i) % config.vocab_size
                        for i in range(prompt_len)
                    ],
                )
                for conv in order
            ]
            replies = server.chat_batch(prompts, max_new_tokens=new_tokens)
            for conv, reply in replies.items():
                transcripts[conv].append(reply)
        return transcripts

    state: Dict[str, object] = {}
    outputs: Dict[str, Dict[int, List[List[int]]]] = {}

    def ref_setup() -> None:
        state["ref"] = StatefulChatServer(
            config, packing_cache=False, decode_sched="fifo", **caps
        )

    def ref_run() -> None:
        outputs["ref"] = rounds(state["ref"])

    def opt_setup() -> None:
        state["opt"] = StatefulChatServer(
            config,
            packing_cache=opt_packing_cache,
            decode_sched=opt_decode_sched,
            backend=opt_backend,
            **caps,
        )

    def opt_run() -> None:
        outputs["opt"] = rounds(state["opt"])

    reference_s = _best_of_stateful(ref_setup, ref_run, repeats)
    optimized_s = _best_of_stateful(opt_setup, opt_run, repeats)

    # The A/B is only meaningful if the optimized server's cache actually
    # ran in the incremental regime (unless the cache was toggled off for
    # an ablation run).
    if opt_packing_cache:
        opt_stats = state["opt"].model.decode_cache.stats
        assert opt_stats["extended_rows"] > 0, (
            f"{name}: packing cache never extended a row ({opt_stats})"
        )

    opt_label = (
        f"{opt_decode_sched} order, "
        f"{'incremental pack' if opt_packing_cache else 'per-step rebuild'} "
        f"[packing_cache={'on' if opt_packing_cache else 'off'}, "
        f"backend={opt_backend}]"
    )

    tokens = num_convs * turns * (prompt_len + new_tokens)
    return _result(
        name,
        "decode_sched",
        "fifo order, per-step rebuild [packing_cache=off]",
        opt_label,
        batch=num_convs,
        tokens_per_call=tokens,
        reference_s=reference_s,
        optimized_s=optimized_s,
        max_abs_diff=0.0 if outputs["ref"] == outputs["opt"] else 1.0,
    )


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------


def run_all(
    quick: bool = False,
    seed: int = 0,
    repeats: Optional[int] = None,
    tracer=None,
    packing_cache: bool = True,
    decode_sched: str = "page-aware",
    backend: str = "paged",
) -> List[BenchResult]:
    """Run the benchmark suite and return results in deterministic order.

    ``quick`` shrinks sizes and repeat counts for the CI smoke job; the
    scenario *families* are identical in both modes so the JSON schema is
    stable across PRs.  A :class:`repro.obs.Tracer` records one wall-clock
    span per scenario (the bench is a real-time workload, so its trace
    time axis is wall seconds).

    ``packing_cache``/``decode_sched``/``backend`` mirror the CLI flags:
    they configure the *optimized* side of the transformer/server-based
    scenarios (``e2e`` and ``decode_sched``), letting experiments toggle
    each half of the optimization independently (the kernel-level
    ``packing`` scenarios always measure the cache itself and are
    unaffected).  The ``backend`` family always runs its fixed A/B matrix
    regardless of the flag, so every run records all registered backends.
    """
    r = repeats if repeats is not None else (5 if quick else 9)
    heads, head_dim = 8, 64
    results: List[BenchResult] = []

    def run(fn: Callable[..., BenchResult], *fn_args, **fn_kwargs) -> BenchResult:
        if tracer is None or not tracer.enabled:
            return fn(*fn_args, **fn_kwargs)
        t0 = time.perf_counter()
        result = fn(*fn_args, **fn_kwargs)
        t1 = time.perf_counter()
        tracer.complete(
            f"bench.{result.name}", t0, t1, track="bench",
            family=result.family, speedup=round(result.speedup, 3),
            equivalent=result.equivalent,
        )
        tracer.count("bench.scenarios")
        return result

    # --- decode: the batched kernel's headline numbers ------------------
    # (name, batch, ctx, kv_heads, head_dim); the d8 shapes are the tiny
    # paper models (hidden 64 / 8 heads), d64 is a paper-scale head.  The
    # batched kernel wins biggest where the per-request loop is dominated
    # by Python/numpy dispatch (many small segments); MHA shapes (no
    # gqa_expand copies to save) gain less and are reported for coverage.
    decode_cfgs = [
        ("decode/gqa4/b8-c32-d8", 8, 32, 2, 8),
        ("decode/gqa4/b16-c64-d8", 16, 64, 2, 8),
        ("decode/gqa4/b32-c32-d8", 32, 32, 2, 8),
        ("decode/mha/b8-c32-d8", 8, 32, 8, 8),
    ]
    if not quick:
        decode_cfgs.append(("decode/gqa4/b8-c256-d64", 8, 256, 2, 64))
        decode_cfgs.append(("decode/mha/b16-c32-d8", 16, 32, 8, 8))
    for name, batch, ctx, kv_heads, dim in decode_cfgs:
        results.append(
            run(bench_decode_kernel, name, batch, ctx, heads, kv_heads, dim, r, seed)
        )

    # --- prefill: vectorized multi-token --------------------------------
    q, c = (16, 128) if quick else (32, 256)
    results.append(
        run(
            bench_multi_token_kernel,
            "prefill/gqa4/b4", "prefill", [q] * 4, [c] * 4, heads, 2, head_dim,
            r, seed,
        )
    )
    # Single-tile contexts exercise the non-tiled fast path.
    results.append(
        run(
            bench_multi_token_kernel,
            "prefill/single-tile/b4", "prefill", [16] * 4, [40] * 4, heads, 2,
            head_dim, r, seed,
        )
    )

    # --- prefill: fully-ragged kernel vs the tiled oracle ---------------
    # Shapes where the one-shot padded pack wins big: uniform and
    # moderately-uneven prompt batches at a paper-scale head size.
    rq, rc = (16, 64) if quick else (32, 128)
    results.append(
        run(
            bench_ragged_kernel,
            "prefill/ragged/b8", "prefill", [rq] * 8, [rc] * 8, heads, 2,
            head_dim, r, seed,
        )
    )
    uneven_q = [rq // 8 * s for s in (1, 2, 3, 4, 5, 6, 7, 8)]
    results.append(
        run(
            bench_ragged_kernel,
            "prefill/ragged-uneven/b8", "prefill", uneven_q, [rc] * 8, heads,
            2, head_dim, r, seed,
        )
    )

    # --- mixed: unified prefill + generation batch ----------------------
    results.append(
        run(
            bench_multi_token_kernel,
            "mixed/gqa4/b8",
            "mixed",
            [q, q, 1, 1, 1, 1, 1, 1],
            [c, c, c, c, c, c, c, c],
            heads, 2, head_dim, r, seed,
        )
    )
    # Ragged unified batches at the tiny-model head size (hidden 64 / 8
    # heads), where per-request dispatch dominates the oracle.
    mq, mc = (4, 32) if quick else (8, 64)
    results.append(
        run(
            bench_ragged_kernel,
            "mixed/ragged/b16-d8", "mixed", [mq, mq] + [1] * 14, [mc] * 16,
            heads, 2, 8, r, seed,
        )
    )
    # Figure 8(d) recompute splits: four dropped-prefix sub-requests
    # (queries at context position 0, segment-masked) inside a
    # decode-heavy unified batch.
    results.append(
        run(
            bench_ragged_kernel,
            "mixed/ragged-split/b16", "mixed", [mq] * 4 + [1] * 12, [mc] * 16,
            heads, 2, 8, r, seed,
            query_offsets=[0] * 4 + [None] * 12,
        )
    )

    # --- e2e: PagedTransformer steps ------------------------------------
    layers = 2 if quick else 4
    e2e_ctx = 128 if quick else 256
    for arch in ("opt", "llama"):
        results.append(
            run(
                bench_e2e,
                f"e2e/{arch}/decode-b8", arch, [], [e2e_ctx] * 8, layers, r, seed,
                backend=backend,
            )
        )
    results.append(
        run(
            bench_e2e,
            "e2e/llama/mixed-b6", "llama", [q, q], [e2e_ctx] * 4, layers, r, seed,
            backend=backend,
        )
    )

    # --- storage: CRC re-verification cost ------------------------------
    results.append(
        run(
            bench_crc_verification,
            "storage/crc-read",
            num_chunks=4 if quick else 16,
            chunk_tokens=16,
            num_layers=layers,
            kv_heads=2,
            head_dim=head_dim,
            repeats=r,
            seed=seed,
        )
    )

    # --- swap: coalesced two-tier swap-in data path ---------------------
    swap_cfgs = [("swap/restore/c32-t8", 32)]
    if not quick:
        swap_cfgs.append(("swap/restore/c64-t8", 64))
    for swap_name, chunks in swap_cfgs:
        results.append(
            run(
                bench_swap_restore,
                swap_name,
                num_chunks=chunks,
                chunk_tokens=8,
                num_layers=2,
                kv_heads=2,
                head_dim=8,
                repeats=r,
                seed=seed,
            )
        )

    # --- disk: coalesced restore from the third tier --------------------
    disk_cfgs = [("disk/restore/c32-t8", 32)]
    if not quick:
        disk_cfgs.append(("disk/restore/c64-t8", 64))
    for disk_name, chunks in disk_cfgs:
        results.append(
            run(
                bench_disk_restore,
                disk_name,
                num_chunks=chunks,
                chunk_tokens=8,
                num_layers=2,
                kv_heads=2,
                head_dim=8,
                repeats=r,
                seed=seed,
            )
        )

    # --- idle: long-idle-user return turns (disk restore vs recompute) --
    idle_turns = 2 if quick else 3
    results.append(
        run(
            bench_long_idle_user,
            f"idle/return/b6-h{idle_turns}",
            num_convs=6,
            history_turns=idle_turns,
            prompt_len=13,
            new_tokens=8,
            repeats=max(2, r // 3),
            seed=seed,
        )
    )

    # --- packing: incremental decode packing cache ----------------------
    # Contexts are sized so the reference's per-step re-pack/re-gather is
    # a meaningful share of the step (the attention math itself is common
    # to both paths and bounds the achievable speedup).
    pack_steps = 32
    pack_cfgs = [
        ("packing/decode-loop/b8-c256-d8", 8, 256, 2, 8),
        ("packing/decode-loop/b16-c128-d8", 16, 128, 2, 8),
    ]
    if not quick:
        pack_cfgs.append(("packing/decode-loop/b8-c256-d64", 8, 256, 2, 64))
    for pack_name, batch, ctx, kv_heads, dim in pack_cfgs:
        results.append(
            run(
                bench_packed_decode,
                pack_name, batch, ctx, pack_steps, heads, kv_heads, dim,
                r, seed,
            )
        )
    results.append(
        run(
            bench_pack_cost,
            "packing/pack-cost/b16-c512-s16",
            batch=16,
            ctx=512,
            steps=16,
            repeats=r,
            seed=seed,
        )
    )

    # --- decode_sched: page-aware server A/B ----------------------------
    sched_turns = 2 if quick else 3
    results.append(
        run(
            bench_decode_sched,
            f"decode_sched/server/b8-t{sched_turns}",
            num_convs=8,
            turns=sched_turns,
            prompt_len=11,
            new_tokens=24,
            repeats=max(2, r // 3),
            seed=seed,
            opt_packing_cache=packing_cache,
            opt_decode_sched=decode_sched,
            opt_backend=backend,
        )
    )

    # --- backend: pluggable kernel/layout pair A/B ----------------------
    # The gated ``paged-ring`` shape (ctx 512, batch 8, head_dim 128) is
    # where the per-step staged-KV copies the ring layout eliminates are
    # the dominant share of each decode step (copy bytes scale with
    # ``kv_heads * head_dim``; the softmax cost does not), so the win
    # clears the floor with margin even on noisy runners.  The
    # ``contiguous`` row runs the same kernels as ``paged`` over a
    # different slot layout — equivalence/layout coverage, not a gated
    # speedup — and the full-mode ``b4`` ring row sits below the gating
    # batch on purpose (small-batch coverage).
    backend_steps = 32
    backend_r = max(r, 7)
    results.append(
        run(
            bench_backend_decode,
            "backend/paged-ring/b8-c512-d128",
            "paged-ring", 8, 512, backend_steps, heads, 2, 128, backend_r, seed,
        )
    )
    results.append(
        run(
            bench_backend_decode,
            "backend/contiguous/b8-c128-d8",
            "contiguous", 8, 128, backend_steps, heads, 2, 8, backend_r, seed,
        )
    )
    if not quick:
        results.append(
            run(
                bench_backend_decode,
                "backend/paged-ring/b4-c512-d128",
                "paged-ring", 4, 512, backend_steps, heads, 2, 128, backend_r,
                seed,
            )
        )
    return results


def check_thresholds(
    results: Sequence[BenchResult],
    min_speedup: float = MIN_SPEEDUP,
    min_batch: int = MIN_THRESHOLD_BATCH,
) -> List[str]:
    """CI speedup floor over the scenarios this PR is accountable for.

    The ragged-kernel scenarios and the coalesced-swap family at
    ``batch >= min_batch`` must each beat ``min_speedup``; the
    ``packing`` family must beat :data:`PACKING_MIN_SPEEDUP`, the
    end-to-end ``decode_sched`` A/B must beat
    :data:`DECODE_SCHED_MIN_SPEEDUP`, and the ``backend`` family's
    ``paged-ring`` rows must beat :data:`BACKEND_MIN_SPEEDUP` (those
    paths share the attention / MLP math, so the floors are lower but
    still real).  Anything below is a perf regression.  Returns
    human-readable failure lines (empty list = pass).  Other families
    (decode/e2e/storage, the vectorized-kernel rows and the ungated
    ``contiguous`` backend rows) are tracked but not gated here.
    """
    failures = []
    for x in results:
        if x.family == "backend":
            if not x.optimized.startswith("paged-ring "):
                continue
            floor = BACKEND_MIN_SPEEDUP
        elif x.family == "decode_sched":
            floor = DECODE_SCHED_MIN_SPEEDUP
        elif x.family == "packing":
            floor = PACKING_MIN_SPEEDUP
        elif (
            x.optimized == "ragged_multi_token_attention" or x.family == "swap"
        ):
            floor = min_speedup
        else:
            continue
        if x.batch < min_batch:
            continue
        if x.speedup < floor:
            failures.append(
                f"{x.name}: speedup {x.speedup:.2f}x below the "
                f"{floor:.2f}x floor (batch {x.batch})"
            )
    return failures


def summarize(results: Sequence[BenchResult]) -> Dict[str, object]:
    """Headline numbers tracked across PRs."""
    def best(family: str) -> float:
        speedups = [x.speedup for x in results if x.family == family]
        return max(speedups) if speedups else 0.0

    return {
        "decode_kernel_best_speedup": round(best("decode"), 2),
        "prefill_kernel_best_speedup": round(best("prefill"), 2),
        "mixed_kernel_best_speedup": round(best("mixed"), 2),
        "e2e_best_speedup": round(best("e2e"), 2),
        "swap_best_speedup": round(best("swap"), 2),
        "disk_best_speedup": round(best("disk"), 2),
        "idle_restore_speedup": round(best("idle"), 2),
        "packing_best_speedup": round(best("packing"), 2),
        "decode_sched_speedup": round(best("decode_sched"), 2),
        "backend_best_speedup": round(
            max(
                (
                    x.speedup
                    for x in results
                    if x.family == "backend"
                    and x.optimized.startswith("paged-ring ")
                ),
                default=0.0,
            ),
            2,
        ),
        "all_equivalent": all(x.equivalent for x in results),
        "thresholds_ok": not check_thresholds(results),
    }


def _load_history(path: str) -> List[Dict[str, object]]:
    """Prior run summaries from an existing ``BENCH_kernels.json``.

    Any unreadable/legacy file (missing, corrupt, pre-history schema)
    yields an empty ledger rather than an error — the bench must never
    fail because of what a previous run left behind.
    """
    try:
        with open(path) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return []
    history = previous.get("history") if isinstance(previous, dict) else None
    if not isinstance(history, list):
        return []
    return [entry for entry in history if isinstance(entry, dict)]


def write_json(
    results: Sequence[BenchResult],
    path: str,
    quick: bool,
    seed: int,
    timestamp: Optional[str] = None,
) -> None:
    """Write ``BENCH_kernels.json`` (schema-stable, sorted keys).

    The top-level payload is the *latest* run's full results; the
    ``history`` list is an append-only ledger of per-run summaries (UTC
    timestamp + headline speedups), carried forward from any existing
    file at ``path`` and capped at :data:`HISTORY_CAP` entries, so
    speedup trajectories survive across runs instead of being
    overwritten.
    """
    if timestamp is None:
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    history = _load_history(path)
    history.append(
        {
            "timestamp": timestamp,
            "quick": quick,
            "seed": seed,
            "summary": summarize(results),
        }
    )
    payload = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "seed": seed,
        "tolerance": TOLERANCE,
        "thresholds": {
            "min_speedup": MIN_SPEEDUP,
            "min_batch": MIN_THRESHOLD_BATCH,
            "packing_min_speedup": PACKING_MIN_SPEEDUP,
            "decode_sched_min_speedup": DECODE_SCHED_MIN_SPEEDUP,
            "backend_min_speedup": BACKEND_MIN_SPEEDUP,
            "failures": check_thresholds(results),
        },
        "summary": summarize(results),
        "results": [asdict(x) for x in results],
        "history": history[-HISTORY_CAP:],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_table(results: Sequence[BenchResult]) -> str:
    """Human-readable report for the CLI."""
    header = (
        f"{'scenario':<32} {'batch':>5} {'ref ms':>9} {'fast ms':>9} "
        f"{'speedup':>8} {'tok/s (fast)':>13} {'max|diff|':>10}  ok"
    )
    lines = [header, "-" * len(header)]
    for x in results:
        lines.append(
            f"{x.name:<32} {x.batch:>5} {x.reference_s * 1e3:>9.3f} "
            f"{x.optimized_s * 1e3:>9.3f} {x.speedup:>7.2f}x "
            f"{x.optimized_tokens_per_s:>13.0f} {x.max_abs_diff:>10.2e}  "
            f"{'yes' if x.equivalent else 'NO'}"
        )
    summary = summarize(results)
    lines.append("")
    lines.append(
        "best speedups: "
        f"decode {summary['decode_kernel_best_speedup']}x, "
        f"prefill {summary['prefill_kernel_best_speedup']}x, "
        f"mixed {summary['mixed_kernel_best_speedup']}x, "
        f"e2e {summary['e2e_best_speedup']}x, "
        f"swap {summary['swap_best_speedup']}x, "
        f"disk {summary['disk_best_speedup']}x, "
        f"idle {summary['idle_restore_speedup']}x, "
        f"packing {summary['packing_best_speedup']}x, "
        f"decode_sched {summary['decode_sched_speedup']}x, "
        f"backend(ring) {summary['backend_best_speedup']}x; "
        f"equivalence {'OK' if summary['all_equivalent'] else 'FAILED'} "
        f"(tolerance {TOLERANCE})"
    )
    for failure in check_thresholds(results):
        lines.append(f"THRESHOLD FAILED: {failure}")
    return "\n".join(lines)
