"""Pensieve core: the paper's primary contribution.

- :class:`~repro.core.engine.PensieveEngine` — the simulated serving
  engine (unified scheduler, two-tier cache, ahead-of-time swapping,
  suspension, dropped-token recomputation);
- :class:`~repro.core.server.StatefulChatServer` — the functional serving
  stack running real tensors through the numpy transformer with physical
  swap/drop/recompute;
- eviction policies (:class:`RetentionValuePolicy`, :class:`LruPolicy`)
  and the cross-tier :class:`TieredPlacementPolicy` for the disk tier.
"""

from repro.core.eviction import (
    LruPolicy,
    RetentionValuePolicy,
    TieredPlacementPolicy,
)
from repro.core.engine import PensieveEngine
from repro.core.server import StatefulChatServer

__all__ = [
    "RetentionValuePolicy",
    "LruPolicy",
    "TieredPlacementPolicy",
    "PensieveEngine",
    "StatefulChatServer",
]
