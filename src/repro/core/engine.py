"""The Pensieve serving engine (the paper's primary contribution).

A stateful, unified-batching engine built on:

- the tiered :class:`~repro.kvcache.manager.TieredCacheManager`
  (token-chunk eviction, lazy reclamation, Figure 5 restore planning,
  optional disk tier with cross-tier retention-value placement);
- the retention-value eviction policy (§4.3.1) driven by offline
  power-of-two profiling;
- ahead-of-time swap-out below a free-space threshold (§4.3.2);
- pipelined per-layer swap-in overlapping the PCIe transfer with
  computation (§4.3.3);
- dropped-token recomputation via Figure 8(d) sub-request shapes, which
  the cost model charges exactly like the multi-token kernel would run
  them (§4.3.4);
- suspension of the latest-arrived requests when generation outgrows the
  GPU cache (§4.3.5);
- unified prefill+generation batches enabled by the multi-token attention
  kernel (§4.2/§4.4.1) — with a ``unified=False`` switch reproducing the
  Figure 13 ablation;
- retrieval-prioritised PCIe scheduling (§5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backends import backend_names
from repro.gpu.costmodel import BatchShape, CostModel, KernelVariant
from repro.gpu.device import GpuSpec
from repro.gpu.nvme import NvmeEngine
from repro.gpu.pcie import Direction, PcieEngine
from repro.gpu.profiler import OfflineProfiler
from repro.core.eviction import LruPolicy, RetentionValuePolicy
from repro.faults import FaultPlan, FaultSite, RetryPolicy, attempt_with_retries
from repro.kvcache.chunks import Chunk, ChunkLocation, ConversationCache
from repro.kvcache.manager import (
    CacheCapacityError,
    EvictionScorer,
    TierPlacement,
    TieredCacheManager,
)
from repro.model.config import ModelConfig
from repro.serving.batching import BatchConfig
from repro.serving.engine import EngineBase
from repro.serving.request import Request, RequestState
from repro.sim.events import EventLoop


@dataclass
class _PrefillInfo:
    """Shape bookkeeping for a request admitted this lifetime."""

    recompute_tokens: int
    prompt_tokens: int
    total_context: int


class PensieveEngine(EngineBase):
    """Stateful multi-turn conversation serving (§4).

    Class attributes:
        DECODE_SCHEDS: legal ``decode_sched`` policies.
        ADMIT_WINDOW: how many wait-queue heads the page-aware schedule
            may stably reorder per iteration (FIFO beyond it, bounding
            starvation).

    Args:
        loop: discrete-event loop.
        config: model hyper-parameters.
        spec: GPU hardware description.
        batch_config: admission thresholds (§4.3 defaults).
        cpu_cache_tokens: CPU-tier capacity in tokens; ``None`` derives it
            from ``spec.cpu_memory_bytes`` (x num_gpus), ``0`` produces the
            paper's "Pensieve (GPU cache)" variant.
        disk_cache_tokens: disk (NVMe) tier capacity in tokens behind the
            CPU tier; 0 (the default) disables the tier, reproducing the
            two-tier behaviour exactly.  Demotions and disk reads are
            priced by an :class:`~repro.gpu.nvme.NvmeEngine` built from
            the spec's ``nvme_*`` fields.
        placement: cross-tier placement policy (see
            :class:`~repro.core.eviction.TieredPlacementPolicy`); ``None``
            demotes to disk whenever the tier has room.
        policy: ``"retention"`` (default), ``"lru"``, or a custom scorer.
        chunk_size: eviction granularity (32 in the paper).
        unified: batch prefill and generation together (§4.2); ``False``
            reproduces the separate-scheduling ablation of Figure 13.
        pipelined_swap_in: overlap per-layer transfers with compute
            (§4.3.3); ``False`` blocks on the full transfer (ablation).
        prioritize_retrieval: §5 PCIe scheduling optimisation.
        decode_sched: ``"fifo"`` (default, paper-faithful) or
            ``"page-aware"``.  Page-aware scheduling changes two
            decisions: the §4.3.5 suspension victim becomes the decoder
            with the *smallest* GPU-resident fraction (evicting it
            forfeits the least cached state) instead of the
            latest-arrived, and the admission scan stably reorders the
            first :attr:`ADMIT_WINDOW` waiters by descending residency so
            cheap re-admissions fill the batch before deep swap-ins.
            Reordering is window-bounded, so requests beyond the window
            keep strict FIFO order.
        packing_cache: record whether the functional layer's incremental
            decode packing cache is enabled.  The discrete-event engine
            carries the flag for experiment metadata and CLI symmetry
            only — its cost model prices kernel *shapes*, which the
            packing cache does not change.
        backend: which kernel/allocator backend the functional layer
            would run (see :mod:`repro.backends`).  Carried for
            experiment metadata and CLI symmetry only, like
            ``packing_cache``: backends are numerically equivalent and
            the cost model prices kernel shapes, which no backend
            changes.
        name: engine label override.
        fault_plan: optional seeded failure schedule (chaos runs); the
            engine recovers along the retry → recompute-fallback →
            per-request-failure ladder and counts the degradation in
            ``metrics.faults``.
        retry_policy: bounded-backoff budget for transient faults.
    """

    DECODE_SCHEDS = ("fifo", "page-aware")
    ADMIT_WINDOW = 16

    def __init__(
        self,
        loop: EventLoop,
        config: ModelConfig,
        spec: GpuSpec,
        batch_config: Optional[BatchConfig] = None,
        cpu_cache_tokens: Optional[int] = None,
        disk_cache_tokens: int = 0,
        placement: Optional[TierPlacement] = None,
        policy: object = "retention",
        chunk_size: int = 32,
        unified: bool = True,
        pipelined_swap_in: bool = True,
        prioritize_retrieval: bool = True,
        decode_sched: str = "fifo",
        packing_cache: bool = True,
        backend: str = "paged",
        name: Optional[str] = None,
        keep_trace: bool = False,
        whole_conversation_eviction: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        cost_model = CostModel(config, spec)
        if name is None:
            name = "Pensieve" if cpu_cache_tokens != 0 else "Pensieve (GPU cache)"
        super().__init__(name, loop, cost_model, batch_config, keep_trace)
        self.model_config = config
        self.spec = spec
        self.unified = unified
        self.pipelined_swap_in = pipelined_swap_in
        if decode_sched not in self.DECODE_SCHEDS:
            raise ValueError(
                f"decode_sched must be one of {self.DECODE_SCHEDS}, "
                f"got {decode_sched!r}"
            )
        self.decode_sched = decode_sched
        self.packing_cache = packing_cache
        if backend not in backend_names():
            raise ValueError(
                f"backend must be one of {backend_names()}, got {backend!r}"
            )
        self.backend = backend

        kv = config.kv_bytes_per_token
        gpu_tokens = int(spec.kv_cache_bytes * config.num_gpus // kv)
        if cpu_cache_tokens is None:
            cpu_cache_tokens = int(spec.cpu_memory_bytes * config.num_gpus // kv)
        scorer = self._resolve_policy(policy, cost_model, chunk_size)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        self.manager = TieredCacheManager(
            gpu_capacity_tokens=gpu_tokens,
            cpu_capacity_tokens=cpu_cache_tokens,
            disk_capacity_tokens=disk_cache_tokens,
            placement=placement,
            chunk_size=chunk_size,
            scorer=scorer,
            whole_conversation_eviction=whole_conversation_eviction,
            fault_plan=fault_plan,
            fault_counters=self.metrics.faults,
        )
        # Demotions (CPU -> DISK) happen inside manager eviction calls;
        # the observer collects them so each call site can price the
        # whole cluster as ONE coalesced NVMe write.
        self.manager.observer = self._on_transition
        self._pending_demotions: List[int] = []
        # Tensor parallelism shards the KV feature dimension, so each of
        # the N workers moves 1/N of the bytes over its own PCIe link
        # (§4.4.2): aggregate host-link bandwidth scales with num_gpus.
        self.pcie = PcieEngine(
            bandwidth=spec.pcie_bandwidth * config.num_gpus,
            duplex_penalty=spec.pcie_duplex_penalty,
            prioritize_retrieval=prioritize_retrieval,
        )
        # The NVMe drive is a host-side device: unlike the PCIe links its
        # bandwidth does not scale with tensor-parallel width.
        self.nvme = NvmeEngine(
            read_bandwidth=spec.nvme_read_bandwidth,
            write_bandwidth=spec.nvme_write_bandwidth,
            mixed_penalty=spec.nvme_mixed_penalty,
            min_latency=spec.nvme_min_latency,
        )
        self._prefill_info: Dict[int, _PrefillInfo] = {}
        # Per-iteration stash set by _form_batch, consumed by _execute.
        self._iter_swap_in_seconds = 0.0
        # Simulated seconds spent in fault-retry backoff this iteration.
        self._iter_fault_delay = 0.0
        self.suspensions = 0
        # Copy-settlement ledger (§4.3.2): ahead-of-time copies become
        # *reclaimable in time* only once their D2H transfer lands.  Each
        # entry is ``(transfer_end_time, tokens)``; ``_settled_tokens``
        # accumulates entries whose end time has passed.
        self._copy_log: deque = deque()
        self._settled_tokens = 0

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------

    def set_tracer(self, tracer) -> None:
        super().set_tracer(tracer)
        self.manager.tracer = self.tracer
        self.pcie.tracer = self.tracer
        self.nvme.tracer = self.tracer

    def _trace_gauges(self, now: float) -> None:
        tracer = self.tracer
        manager = self.manager
        tracer.gauge("kv.gpu_resident_tokens", manager.gpu_resident_tokens, t=now)
        tracer.gauge("kv.gpu_free_tokens", manager.gpu_free_tokens, t=now)
        tracer.gauge("kv.reclaimable_tokens", manager.reclaimable_tokens, t=now)
        tracer.gauge("kv.evictable_tokens", manager.evictable_gpu_tokens, t=now)
        tracer.gauge("kv.cpu_used_tokens", manager.cpu_used_tokens, t=now)
        if manager.disk_capacity_tokens > 0:
            tracer.gauge("kv.disk_used_tokens", manager.disk_used_tokens, t=now)
        tracer.gauge(
            "kv.fragmentation_tokens", manager.fragmentation_tokens(), t=now
        )

    @staticmethod
    def _resolve_policy(
        policy: object, cost_model: CostModel, chunk_size: int
    ) -> EvictionScorer:
        if policy == "retention":
            profile = OfflineProfiler.from_cost_model(cost_model).profile(
                chunk_size=chunk_size, max_context=16384
            )
            return RetentionValuePolicy(profile)
        if policy == "lru":
            return LruPolicy()
        if callable(policy):
            return policy  # custom scorer
        raise ValueError(f"unknown eviction policy {policy!r}")

    # ------------------------------------------------------------------
    # Disk-tier (NVMe) traffic
    # ------------------------------------------------------------------

    def _on_transition(
        self,
        cache: ConversationCache,
        chunk: Chunk,
        old: ChunkLocation,
        new: ChunkLocation,
    ) -> None:
        """Collect CPU -> DISK demotions for coalesced NVMe pricing."""
        if old is ChunkLocation.CPU and new is ChunkLocation.DISK:
            self._pending_demotions.append(chunk.num_tokens)

    def _flush_demotions(self, now: float) -> None:
        """Price every demotion since the last flush as ONE stacked NVMe
        write — the disk-tier analogue of coalesced PCIe swap-out."""
        if not self._pending_demotions:
            return
        tokens = sum(self._pending_demotions)
        chunks = len(self._pending_demotions)
        self._pending_demotions.clear()
        record = self.nvme.write(
            now,
            tokens * self.model_config.kv_bytes_per_token,
            num_chunks=chunks,
        )
        if self.metrics.hist.enabled:
            self.metrics.hist.hist("swap_out_seconds", tier="disk").record(
                record.end_time - now
            )
        self.trace.record(now, "disk_demote", tokens=tokens, chunks=chunks)
        if self.tracer.enabled:
            self.tracer.complete(
                "disk_demote", now, record.end_time, track="cache",
                tokens=tokens, chunks=chunks,
            )

    # ------------------------------------------------------------------
    # Batch formation (§4.2)
    # ------------------------------------------------------------------

    def _attempt(self, site: FaultSite, request: Optional[Request] = None) -> bool:
        """Try one faultable operation, retrying with bounded backoff.

        Retries and their simulated delay are charged to this iteration
        (the backoff lands on the sim clock via the iteration duration).
        Returns False on terminal failure.
        """
        if self.fault_plan is None:
            return True
        ok, retries, delay = attempt_with_retries(
            self.fault_plan, site, self.retry_policy, tracer=self.tracer
        )
        self.metrics.faults.retries += retries
        self._iter_fault_delay += delay
        if site is FaultSite.GPU_ALLOC and (retries > 0 or not ok):
            self.metrics.faults.alloc_faults += 1
        flight = self.metrics.flight
        if flight.enabled and request is not None:
            if retries > 0:
                flight.record(
                    request.request_id, "retry", self.loop.now,
                    count=retries, site=site.name.lower(),
                )
            if not ok:
                flight.record(
                    request.request_id, "fault", self.loop.now,
                    site=site.name.lower(),
                )
        return ok

    def _form_batch(self, now: float) -> List[Request]:
        self._iter_swap_in_seconds = 0.0
        self._iter_fault_delay = 0.0
        self._iter_reclaim_wait = 0.0
        decoders = self._grow_decoders(now)
        admitted = self._admit(now)
        if admitted and not self.unified:
            # Figure 13 ablation: prefill runs as its own (often small)
            # batch while decoders stall for the iteration.
            return admitted
        return decoders + admitted

    def _gpu_resident_fraction(self, conv_id: int) -> float:
        """Fraction of a conversation's cached tokens still holding GPU
        pages (``GPU`` + ``GPU_CPU`` in the Figure 5 layout)."""
        cache = self.manager.conversation(conv_id)
        if cache is None or cache.total_tokens == 0:
            return 0.0
        seg = cache.segments()
        resident = seg.get(ChunkLocation.GPU, 0) + seg.get(
            ChunkLocation.GPU_CPU, 0
        )
        return resident / cache.total_tokens

    def _pick_suspension_victim(self, decoders: List[Request]) -> Request:
        """§4.3.5 victim choice.  FIFO suspends the latest-arrived
        request (the paper's rule).  Page-aware suspends the decoder with
        the smallest GPU-resident fraction — the one whose eviction
        forfeits the least cached state — falling back to latest-arrived
        among equals, so a fully-resident batch behaves exactly like
        FIFO."""
        if self.decode_sched == "page-aware":
            return min(
                decoders,
                key=lambda r: (
                    self._gpu_resident_fraction(r.conv_id),
                    -r.arrival_time,
                    -r.request_id,
                ),
            )
        return max(decoders, key=lambda r: (r.arrival_time, r.request_id))

    def _grow_decoders(self, now: float) -> List[Request]:
        """Allocate each running request's next KV slot, suspending
        requests if the GPU cache is exhausted (§4.3.5; victim choice
        depends on ``decode_sched``).  Surviving decoders keep their
        running order, so batch composition stays stable between
        iterations."""
        decoders = [r for r in self.running if r.state is RequestState.RUNNING]
        while decoders and self.manager.gpu_available_tokens < len(decoders):
            victim = self._pick_suspension_victim(decoders)
            self._suspend(victim, now)
            decoders.remove(victim)
        grown: List[Request] = []
        for request in decoders:
            if not self._attempt(FaultSite.GPU_ALLOC, request):
                # Allocation kept failing past the retry budget: this
                # request alone degrades; its siblings keep decoding.
                self._fail_request(request, now, "gpu_alloc")
                continue
            try:
                self.manager.append_tokens(request.conv_id, 1)
            except CacheCapacityError:
                self._suspend(request, now)
                continue
            grown.append(request)
        return grown

    def _suspend(self, victim: Request, now: float) -> None:
        copied, dropped = self.manager.release_conversation_gpu(victim.conv_id, now)
        if copied:
            # Coalesced: all of the victim's chunks cross as one DMA op.
            # Copied chunks are full-size except at most the tail, so the
            # ceiling division recovers the exact chunk count.
            chunk_size = self.manager.chunk_size
            record = self.pcie.swap_out(
                now,
                copied * self.model_config.kv_bytes_per_token,
                num_chunks=(copied + chunk_size - 1) // chunk_size,
            )
            if self.metrics.hist.enabled:
                self.metrics.hist.hist("swap_out_seconds", tier="cpu").record(
                    record.end_time - now
                )
        victim.state = RequestState.WAITING
        victim.last_enqueue_time = now
        self.running.remove(victim)
        self.wait_queue.appendleft(victim)
        self.suspensions += 1
        self.trace.record(
            now, "suspend", request_id=victim.request_id,
            copied_tokens=copied, dropped_tokens=dropped,
        )
        if self.metrics.flight.enabled:
            self.metrics.flight.record(
                victim.request_id, "suspend", now,
                copied_tokens=copied, dropped_tokens=dropped,
            )
            if copied:
                self.metrics.flight.record(
                    victim.request_id, "swap_out", now, tier="cpu",
                    tokens=copied,
                )
        if self.tracer.enabled:
            self.tracer.count("engine.suspensions")
            self.tracer.instant(
                "suspend", t=now, track="engine",
                request_id=victim.request_id, conv_id=victim.conv_id,
                copied_tokens=copied, dropped_tokens=dropped,
            )

    def _reclaim_budget(self, now: float) -> int:
        """Tokens whose ahead-of-time copies have settled and are still
        unconsumed — the amount of lazy reclamation permissible *now*.

        Every exit from the ``GPU_CPU`` state (a reclaim, or a promotion
        back to ``GPU`` when the owning conversation returns) consumes one
        completed copy; the budget is settled copies minus exits.
        """
        while self._copy_log and self._copy_log[0][0] <= now:
            self._settled_tokens += self._copy_log.popleft()[1]
        return max(
            0, self._settled_tokens - self.manager.stats["gpu_cpu_exit_tokens"]
        )

    def _log_copy(self, end_time: float, tokens: int) -> None:
        self._copy_log.append((end_time, tokens))

    def _reorder_admission_window(self) -> None:
        """Page-aware admission: stably sort the first
        :attr:`ADMIT_WINDOW` waiters by descending GPU residency, so
        conversations whose pages are still resident (cheap, often
        zero-transfer re-admissions) fill the batch before deep swap-ins,
        and consecutive iterations see a stable head order.  Requests
        beyond the window keep strict FIFO order, bounding starvation."""
        if len(self.wait_queue) <= 1:
            return
        window = min(len(self.wait_queue), self.ADMIT_WINDOW)
        head = [self.wait_queue.popleft() for _ in range(window)]
        head.sort(key=lambda r: -self._gpu_resident_fraction(r.conv_id))
        self.wait_queue.extendleft(reversed(head))

    def _admit(self, now: float) -> List[Request]:
        if self.decode_sched == "page-aware":
            self._reorder_admission_window()
        admitted: List[Request] = []
        batch_tokens = 0
        cfg = self.config
        capacity = self.manager.gpu_capacity_tokens
        base_reserve = int(cfg.generation_reserve * capacity)
        while self.wait_queue:
            request = self.wait_queue[0]
            # Pin while evaluating: the capacity check must not count the
            # candidate's *own* lazily-copied chunks as reclaimable —
            # admitting promotes them back to plain GPU residence.
            self.manager.open(request.conv_id, now)
            plan = self.manager.plan_restore(request.conv_id, request.prompt_tokens)
            prefill = plan.prefill_tokens

            def refuse() -> None:
                self.manager.close(request.conv_id, now)

            if len(self.running) + len(admitted) >= cfg.max_running:
                refuse()
                break
            if admitted and batch_tokens + prefill > cfg.max_batch_tokens:
                refuse()
                break
            # §4.3.5: keep 10% of slots free for running generations —
            # but never make a feasible request permanently inadmissible.
            reserve = min(base_reserve, max(0, capacity - plan.alloc_tokens))
            if self.manager.gpu_available_tokens - plan.alloc_tokens < reserve:
                self._demand_swap_out(plan.alloc_tokens + reserve, now)
                refuse()
                break
            # Reclaimed slots are only usable once their ahead-of-time
            # copies have physically landed on the CPU.
            needed_reclaim = plan.alloc_tokens - self.manager.gpu_free_tokens
            if needed_reclaim > 0 and needed_reclaim > self._reclaim_budget(now):
                refuse()
                break
            if not self._attempt(FaultSite.GPU_ALLOC, request):
                # Terminal allocation fault: degrade this request alone
                # (structured error path); admission continues behind it.
                self._fail_request(request, now, "gpu_alloc")
                continue
            self._do_admit(request, plan, now)
            admitted.append(request)
            batch_tokens += prefill
        return admitted

    def _do_admit(self, request, plan, now: float) -> None:
        self.wait_queue.popleft()
        if plan.disk_read_tokens > 0:
            plan = self._disk_read_with_faults(request, plan, now)
        if plan.swap_in_tokens > 0:
            plan = self._swap_in_with_faults(request, plan, now)
        h2d_enqueue = now
        if plan.disk_read_tokens > 0:
            # One coalesced NVMe read brings the disk prefix into host
            # memory; its bytes then ride the same H2D transfer as the
            # CPU-resident chunks, enqueued when the read lands.
            disk_bytes = (
                plan.disk_read_tokens * self.model_config.kv_bytes_per_token
            )
            record = self.nvme.read(
                now, disk_bytes, num_chunks=len(plan.disk_read_chunks)
            )
            h2d_enqueue = record.end_time
            if self.metrics.hist.enabled:
                self.metrics.hist.hist("swap_in_seconds", tier="disk").record(
                    record.end_time - now
                )
            if self.metrics.flight.enabled:
                self.metrics.flight.record(
                    request.request_id, "swap_in", now, tier="disk",
                    tokens=plan.disk_read_tokens,
                )
            self.trace.record(
                now, "disk_read", request_id=request.request_id,
                tokens=plan.disk_read_tokens, seconds=record.end_time - now,
            )
            if self.tracer.enabled:
                self.tracer.complete(
                    "disk_read", now, record.end_time, track="cache",
                    request_id=request.request_id, conv_id=request.conv_id,
                    tokens=plan.disk_read_tokens,
                )
        h2d_tokens = plan.swap_in_tokens + plan.disk_read_tokens
        if h2d_tokens > 0:
            swap_bytes = h2d_tokens * self.model_config.kv_bytes_per_token
            # One coalesced H2D transfer for every chunk in the plan.
            record = self.pcie.swap_in(
                h2d_enqueue,
                swap_bytes,
                num_chunks=len(plan.swap_in_chunks) + len(plan.disk_read_chunks),
            )
            self._iter_swap_in_seconds = max(
                self._iter_swap_in_seconds, record.end_time - now
            )
            if self.metrics.hist.enabled:
                self.metrics.hist.hist("swap_in_seconds", tier="cpu").record(
                    record.end_time - now
                )
            if self.metrics.flight.enabled:
                self.metrics.flight.record(
                    request.request_id, "swap_in", now, tier="cpu",
                    tokens=h2d_tokens,
                )
            self.trace.record(
                now, "swap_in", request_id=request.request_id,
                tokens=h2d_tokens, seconds=record.end_time - now,
            )
            if self.tracer.enabled:
                self.tracer.complete(
                    "swap_in", now, record.end_time, track="cache",
                    request_id=request.request_id, conv_id=request.conv_id,
                    tokens=h2d_tokens,
                )
        self.manager.commit_restore(plan, now)
        request.prefill_tokens = plan.prefill_tokens
        request.prefill_done = False
        request.state = RequestState.RUNNING
        self.running.append(request)
        self._note_batch_join(request, now)
        metrics = self.metrics
        if plan.recompute_tokens > 0:
            if metrics.hist.enabled:
                metrics.hist.hist("recompute_tokens").record(
                    plan.recompute_tokens
                )
                # Attribute the modeled cost of re-prefetching dropped
                # tokens: priced exactly like the Figure 8(d) sub-request
                # the kernel would run.
                metrics.hist.hist("recompute_est_seconds").record(
                    self.cost_model.iteration_time(
                        BatchShape.of(
                            [(plan.recompute_tokens, plan.recompute_tokens)]
                        ),
                        variant=KernelVariant.PENSIEVE_PAGED,
                    )
                )
            if metrics.flight.enabled:
                metrics.flight.record(
                    request.request_id, "recompute", now,
                    tokens=plan.recompute_tokens,
                )
        self._prefill_info[request.request_id] = _PrefillInfo(
            recompute_tokens=plan.recompute_tokens,
            prompt_tokens=plan.new_tokens,
            total_context=plan.total_context,
        )
        self.trace.record(
            now, "admit", request_id=request.request_id,
            gpu_hits=plan.gpu_hit_tokens, swap_in=plan.swap_in_tokens,
            disk_read=plan.disk_read_tokens,
            recompute=plan.recompute_tokens, new=plan.new_tokens,
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "admit", t=now, track="engine",
                request_id=request.request_id, conv_id=request.conv_id,
                gpu_hits=plan.gpu_hit_tokens, swap_in=plan.swap_in_tokens,
                disk_read=plan.disk_read_tokens,
                recompute=plan.recompute_tokens, new=plan.new_tokens,
            )
            if plan.recompute_tokens > 0:
                self.tracer.instant(
                    "recompute", t=now, track="cache",
                    request_id=request.request_id, conv_id=request.conv_id,
                    tokens=plan.recompute_tokens,
                )

    def _swap_in_with_faults(self, request, plan, now: float):
        """Model the H2D retrieval's failure modes before it is priced.

        A terminally-failed transfer, or a corrupt CPU read caught by the
        store checksum, falls back to the §4.3.4 recomputation path: the
        conversation's CPU chunks are invalidated (``CPU -> DROPPED``) and
        the restore plan is recomputed — ``alloc_tokens`` is unchanged
        (swap-in tokens become recompute tokens), so the admission checks
        already performed remain valid.  Returns the effective plan.
        """
        if self.fault_plan is None:
            return plan
        ok, retries, delay = attempt_with_retries(
            self.fault_plan, FaultSite.SWAP_IN, self.retry_policy,
            tracer=self.tracer,
        )
        self.metrics.faults.retries += retries
        self._iter_fault_delay += delay
        if self.metrics.flight.enabled and retries > 0:
            self.metrics.flight.record(
                request.request_id, "retry", now, count=retries,
                site="swap_in",
            )
        corrupt = ok and self.fault_plan.fires(FaultSite.CPU_READ)
        if ok and not corrupt:
            return plan
        if not ok:
            self.metrics.faults.swap_in_failures += 1
        if corrupt:
            self.metrics.faults.corrupted_chunks += len(plan.swap_in_chunks)
        self.metrics.faults.recompute_fallbacks += 1
        invalidated = self.manager.invalidate_cpu_prefix(request.conv_id)
        if self.metrics.flight.enabled:
            self.metrics.flight.record(
                request.request_id, "fault", now, site="swap_in",
                corrupt=corrupt, tokens=invalidated,
            )
        self.trace.record(
            now, "swap_in_fallback", request_id=request.request_id,
            tokens=invalidated, corrupt=corrupt,
        )
        if self.tracer.enabled:
            self.tracer.count("fault.recompute_fallbacks")
            self.tracer.instant(
                "swap_in_fallback", t=now, track="cache",
                request_id=request.request_id, conv_id=request.conv_id,
                tokens=invalidated, corrupt=corrupt,
            )
        return self.manager.plan_restore(request.conv_id, request.prompt_tokens)

    def _disk_read_with_faults(self, request, plan, now: float):
        """Model the NVMe read's failure modes before it is priced.

        A terminal stall, or a corrupt disk chunk caught by the store
        checksum, invalidates the disk prefix only (``DISK -> DROPPED``) —
        CPU-resident chunks behind it still swap in normally — and the
        plan is recomputed; ``alloc_tokens`` is unchanged (disk-read
        tokens become recompute tokens), so the admission checks already
        performed remain valid.  Returns the effective plan.
        """
        if self.fault_plan is None:
            return plan
        ok, retries, delay = attempt_with_retries(
            self.fault_plan, FaultSite.NVME_STALL, self.retry_policy,
            tracer=self.tracer,
        )
        self.metrics.faults.retries += retries
        self._iter_fault_delay += delay
        if self.metrics.flight.enabled and retries > 0:
            self.metrics.flight.record(
                request.request_id, "retry", now, count=retries,
                site="nvme_stall",
            )
        if retries > 0 or not ok:
            self.metrics.faults.nvme_stalls += 1
        corrupt = ok and self.fault_plan.fires(FaultSite.DISK_READ)
        if ok and not corrupt:
            return plan
        if not ok:
            self.metrics.faults.disk_read_failures += 1
        if corrupt:
            self.metrics.faults.corrupted_chunks += len(plan.disk_read_chunks)
        self.metrics.faults.recompute_fallbacks += 1
        invalidated = self.manager.invalidate_disk_prefix(request.conv_id)
        if self.metrics.flight.enabled:
            self.metrics.flight.record(
                request.request_id, "fault", now, site="disk_read",
                corrupt=corrupt, tokens=invalidated,
            )
        self.trace.record(
            now, "disk_read_fallback", request_id=request.request_id,
            tokens=invalidated, corrupt=corrupt,
        )
        if self.tracer.enabled:
            self.tracer.count("fault.recompute_fallbacks")
            self.tracer.instant(
                "disk_read_fallback", t=now, track="cache",
                request_id=request.request_id, conv_id=request.conv_id,
                tokens=invalidated, corrupt=corrupt,
            )
        return self.manager.plan_restore(request.conv_id, request.prompt_tokens)

    def _idle_retry_delay(self, now: float) -> Optional[float]:
        """Retry blocked admissions when the next pending copy settles
        (or shortly, when progress came from instant drops)."""
        if self._copy_log:
            return max(self._copy_log[0][0] - now, 1e-6)
        return 0.005

    def _demand_swap_out(self, tokens_target: int, now: float) -> None:
        """Eagerly copy more chunks out when admission is memory-blocked
        beyond what ahead-of-time swapping anticipated."""
        deficit = tokens_target - self.manager.gpu_available_tokens
        if deficit <= 0:
            return
        copied = self.manager.swap_out(self.manager.reclaimable_tokens + deficit, now)
        self._flush_demotions(now)
        copied_tokens = sum(c.num_tokens for c in copied)
        if copied_tokens:
            record = self.pcie.swap_out(
                now,
                copied_tokens * self.model_config.kv_bytes_per_token,
                num_chunks=len(copied),
            )
            self._log_copy(record.end_time, copied_tokens)
            if self.metrics.hist.enabled:
                self.metrics.hist.hist("swap_out_seconds", tier="cpu").record(
                    record.end_time - now
                )
            self.trace.record(now, "demand_swap_out", tokens=copied_tokens)
            if self.tracer.enabled:
                self.tracer.complete(
                    "swap_out", now, record.end_time, track="cache",
                    kind="demand", tokens=copied_tokens,
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, batch: Sequence[Request], now: float) -> float:
        items = []
        for request in batch:
            if request.prefill_done:
                ctx = self.manager.conversation(request.conv_id).total_tokens
                items.append((1, ctx))
            else:
                info = self._prefill_info[request.request_id]
                # Figure 8(d): the recomputed prefix and the new prompt are
                # two sub-requests sharing the context.
                if info.recompute_tokens > 0:
                    items.append((info.recompute_tokens, info.recompute_tokens))
                if info.prompt_tokens > 0:
                    items.append((info.prompt_tokens, info.total_context))
        shape = BatchShape.of(items)
        compute = self.cost_model.iteration_time(
            shape, variant=KernelVariant.PENSIEVE_PAGED
        )
        # Retry backoff spent this iteration, plus any injected worker
        # stall: with tensor parallelism every iteration ends in an
        # all-reduce, so one straggling worker stalls the whole step.
        extra = self._iter_fault_delay
        if (
            self.fault_plan is not None
            and self.model_config.num_gpus > 1
            and self.fault_plan.fires(FaultSite.WORKER_STEP)
        ):
            extra += self.fault_plan.stall_seconds
            self.metrics.faults.worker_stalls += 1
        transfer = self._iter_swap_in_seconds
        if transfer <= 0.0:
            return compute + extra
        if not self.pipelined_swap_in:
            return transfer + compute + extra
        # §4.3.3: per-layer transfer overlapped with per-layer compute;
        # ``transfer`` already reflects PCIe queueing and duplex effects.
        return extra + CostModel.pipelined_time(
            compute, transfer, self.model_config.num_layers
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete(self, batch: Sequence[Request]) -> None:
        super()._complete(batch)
        self._ahead_of_time_swap(self.loop.now)

    def _ahead_of_time_swap(self, now: float) -> None:
        """Maintain the §4.3.2 free-space threshold by copying chunks to
        the CPU tier in the background."""
        cfg = self.config
        target = int(cfg.swap_out_threshold * self.manager.gpu_capacity_tokens)
        available = self.manager.gpu_available_tokens
        if available >= target:
            return
        copied = self.manager.swap_out(
            self.manager.reclaimable_tokens + (target - available), now
        )
        self._flush_demotions(now)
        copied_tokens = sum(c.num_tokens for c in copied)
        if copied_tokens:
            record = self.pcie.swap_out(
                now,
                copied_tokens * self.model_config.kv_bytes_per_token,
                num_chunks=len(copied),
            )
            self._log_copy(record.end_time, copied_tokens)
            if self.metrics.hist.enabled:
                self.metrics.hist.hist("swap_out_seconds", tier="cpu").record(
                    record.end_time - now
                )
            self.trace.record(now, "aot_swap_out", tokens=copied_tokens)
            if self.tracer.enabled:
                self.tracer.complete(
                    "swap_out", now, record.end_time, track="cache",
                    kind="ahead_of_time", tokens=copied_tokens,
                )

    def _on_fail(self, request: Request, now: float) -> None:
        """Degraded request: unpin its conversation but keep the cached
        KV-tokens — a later turn restores or recomputes them normally."""
        if self.manager.conversation(request.conv_id) is not None:
            self.manager.close(request.conv_id, now)

    def _on_finish(self, request: Request, now: float) -> None:
        """Stateful: the conversation's KV-tokens stay cached (§4.3)."""
        try:
            # Account the final output token's KV row as well, so the
            # cached context matches the full conversation history.
            self.manager.append_tokens(request.conv_id, 1)
        except CacheCapacityError:
            pass  # cache brim-full; the next turn recomputes one token
        self.manager.close(request.conv_id, now)
