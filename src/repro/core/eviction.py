"""Eviction policies (§4.3.1).

A policy is an :data:`~repro.kvcache.manager.EvictionScorer`: a callable
``(chunk, last_active, now) -> score``; the cache manager evicts candidate
chunks in **ascending** score order.  Because only the earliest chunk of
each conversation in a given tier is ever a candidate, front-to-back
ordering within a conversation is structural; the policy chooses *between*
conversations.

Two policies are provided:

- :class:`RetentionValuePolicy` — Pensieve's policy.  The retention value
  of a chunk is ``V = Cost(s, l) / T`` where ``Cost`` is the (profiled,
  interpolated) cost of recomputing the chunk with its attended context of
  size ``l`` and ``T`` is the time since the owning conversation was last
  active.  Low-value chunks (cheap to recompute, long-idle conversation)
  are evicted first.
- :class:`LruPolicy` — the classic baseline of Figure 14: evict the least
  recently active conversation first, ignoring recomputation cost.
"""

from __future__ import annotations

from repro.gpu.profiler import AttentionCostProfile
from repro.kvcache.chunks import Chunk


class RetentionValuePolicy:
    """Pensieve's cost-over-idle-time retention score.

    Args:
        profile: offline-profiled attention cost table
            (:class:`~repro.gpu.profiler.AttentionCostProfile`).
        min_idle: floor on the idle time ``T`` so a just-deactivated
            conversation has a finite (large) retention value instead of a
            division by zero.
    """

    name = "retention-value"

    def __init__(self, profile: AttentionCostProfile, min_idle: float = 1e-3) -> None:
        if min_idle <= 0.0:
            raise ValueError(f"min_idle must be positive, got {min_idle}")
        self.profile = profile
        self.min_idle = min_idle

    def __call__(self, chunk: Chunk, last_active: float, now: float) -> float:
        idle = max(now - last_active, self.min_idle)
        # ``l`` is the context size the chunk attends to during
        # recomputation: everything up to and including the chunk itself.
        cost = self.profile.recompute_cost(chunk.end)
        return cost / idle

    def __repr__(self) -> str:
        return f"RetentionValuePolicy(chunk_size={self.profile.chunk_size})"


class LruPolicy:
    """Least-recently-used at conversation granularity.

    The score is simply the conversation's last-active time: older
    conversations (smaller timestamps) evict first, and ties fall back to
    the manager's deterministic ``(conv_id, chunk index)`` ordering.
    """

    name = "lru"

    def __call__(self, chunk: Chunk, last_active: float, now: float) -> float:
        return last_active

    def __repr__(self) -> str:
        return "LruPolicy()"
