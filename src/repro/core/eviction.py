"""Eviction policies (§4.3.1).

A policy is an :data:`~repro.kvcache.manager.EvictionScorer`: a callable
``(chunk, last_active, now) -> score``; the cache manager evicts candidate
chunks in **ascending** score order.  Because only the earliest chunk of
each conversation in a given tier is ever a candidate, front-to-back
ordering within a conversation is structural; the policy chooses *between*
conversations.

Two scoring policies are provided:

- :class:`RetentionValuePolicy` — Pensieve's policy.  The retention value
  of a chunk is ``V = Cost(s, l) / T`` where ``Cost`` is the (profiled,
  interpolated) cost of recomputing the chunk with its attended context of
  size ``l`` and ``T`` is the time since the owning conversation was last
  active.  Low-value chunks (cheap to recompute, long-idle conversation)
  are evicted first.
- :class:`LruPolicy` — the classic baseline of Figure 14: evict the least
  recently active conversation first, ignoring recomputation cost.

With the disk tier enabled, the same score additionally chooses *which
tier* a chunk leaving the CPU lands in: :class:`TieredPlacementPolicy`
wraps any scorer and demotes a chunk to disk only when its retention
value clears a configurable floor (below it, the NVMe write is not worth
the rescue — the chunk recomputes more cheaply than it restores).  The
manager layers displacement on top: an approved chunk may still be
dropped if disk room can only be made by evicting higher-valued
residents.
"""

from __future__ import annotations

from typing import Callable

from repro.gpu.profiler import AttentionCostProfile
from repro.kvcache.chunks import Chunk, ChunkLocation


class RetentionValuePolicy:
    """Pensieve's cost-over-idle-time retention score.

    Args:
        profile: offline-profiled attention cost table
            (:class:`~repro.gpu.profiler.AttentionCostProfile`).
        min_idle: floor on the idle time ``T`` so a just-deactivated
            conversation has a finite (large) retention value instead of a
            division by zero.
    """

    name = "retention-value"

    def __init__(self, profile: AttentionCostProfile, min_idle: float = 1e-3) -> None:
        if min_idle <= 0.0:
            raise ValueError(f"min_idle must be positive, got {min_idle}")
        self.profile = profile
        self.min_idle = min_idle

    def __call__(self, chunk: Chunk, last_active: float, now: float) -> float:
        idle = max(now - last_active, self.min_idle)
        # ``l`` is the context size the chunk attends to during
        # recomputation: everything up to and including the chunk itself.
        cost = self.profile.recompute_cost(chunk.end)
        return cost / idle

    def __repr__(self) -> str:
        return f"RetentionValuePolicy(chunk_size={self.profile.chunk_size})"


class LruPolicy:
    """Least-recently-used at conversation granularity.

    The score is simply the conversation's last-active time: older
    conversations (smaller timestamps) evict first, and ties fall back to
    the manager's deterministic ``(conv_id, chunk index)`` ordering.
    """

    name = "lru"

    def __call__(self, chunk: Chunk, last_active: float, now: float) -> float:
        return last_active

    def __repr__(self) -> str:
        return "LruPolicy()"


class TieredPlacementPolicy:
    """Cross-tier extension of the retention score (disk tier, ROADMAP 3).

    Decides where a chunk leaving the CPU tier lands: ``DISK`` when its
    retention value ``V = Cost(s, l) / T`` is at least ``min_disk_value``,
    ``DROPPED`` otherwise.  The intuition mirrors §4.3.1: ``V`` prices
    what per-second rescue of the chunk is worth, so a floor on it is a
    floor on how valuable a chunk must be before the system spends NVMe
    write bandwidth (and disk capacity) keeping it restorable instead of
    recomputable.

    ``min_disk_value=0.0`` (the default) demotes everything the disk can
    hold — pure capacity extension; raising it makes the disk tier
    selective.  The manager applies this policy *per eviction decision*
    and separately enforces value-ordered displacement within the disk
    tier, so the full cross-tier ordering is: GPU ⊇ CPU ⊇ DISK by
    descending retention value, with DROPPED below the floor.

    Args:
        scorer: any eviction scorer (``(chunk, last_active, now) ->
            score``); typically the same :class:`RetentionValuePolicy`
            instance the manager evicts with, so both decisions read one
            consistent value.
        min_disk_value: retention-value floor for disk placement.
    """

    name = "tiered-placement"

    def __init__(
        self,
        scorer: Callable[[Chunk, float, float], float],
        min_disk_value: float = 0.0,
    ) -> None:
        if min_disk_value < 0.0:
            raise ValueError(
                f"min_disk_value must be non-negative, got {min_disk_value}"
            )
        self.scorer = scorer
        self.min_disk_value = min_disk_value

    def __call__(
        self, chunk: Chunk, last_active: float, now: float
    ) -> ChunkLocation:
        score = self.scorer(chunk, last_active, now)
        if score >= self.min_disk_value:
            return ChunkLocation.DISK
        return ChunkLocation.DROPPED

    def __repr__(self) -> str:
        return (
            f"TieredPlacementPolicy(scorer={self.scorer!r}, "
            f"min_disk_value={self.min_disk_value})"
        )
