"""A functional stateful chat server: Pensieve end-to-end on real tensors.

:class:`StatefulChatServer` is the executable counterpart of the simulated
:class:`~repro.core.engine.PensieveEngine`: it serves multi-turn
conversations through the numpy :class:`~repro.model.PagedTransformer`,
physically moving KV data exactly as the cache manager decides —

- finished turns leave their KV-tokens in GPU pages (stateful serving);
- under GPU pressure, leading chunks are *copied* to the CPU store
  (§4.3.2), their pages vacated only on reclaim;
- under CPU pressure, leading chunks are demoted to the disk store (when
  a disk tier is configured and the cross-tier retention score approves)
  or dropped and later *recomputed* from the raw-token persistent store
  via the Figure 8 sub-request path;
- returning conversations swap their CPU chunks back into (different!)
  GPU pages, exercising the non-contiguous multi-token attention kernel.

Because every movement is real, tests can assert the headline correctness
property: a server under heavy eviction produces *exactly* the same output
tokens as one with abundant memory.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.eviction import LruPolicy
from repro.faults import (
    ChunkCorruptionError,
    FaultCounters,
    FaultPlan,
    FaultSite,
    RequestFaultedError,
    RetryPolicy,
    attempt_with_retries,
)
from repro.backends import Backend, SlotAllocator, get_backend, resolve_backend
from repro.kvcache.chunks import Chunk, ChunkLocation, ConversationCache
from repro.kvcache.manager import (
    EvictionScorer,
    TierPlacement,
    TieredCacheManager,
)
from repro.kvcache.pages import BlockTable, PagePool
from repro.kvcache.storage import CpuChunkStore, DiskChunkStore, KVStorage
from repro.kernels.packed_cache import DecodeSlotSource
from repro.model.config import ModelConfig, tiny_opt_config
from repro.model.sampling import GREEDY, SamplingParams, sample_token
from repro.model.transformer import ForwardRequest, PagedTransformer
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.workload.tokenizer import SimpleTokenizer


class StatefulChatServer:
    """Serve multi-turn chats with a tiered KV cache over real tensors.

    Args:
        config: model configuration (tiny presets recommended; weights are
            random, so this demonstrates systems behaviour, not language
            quality).
        gpu_capacity_tokens: GPU-tier size in KV-token slots.
        cpu_capacity_tokens: CPU-tier size (0 = GPU-cache-only variant).
        disk_capacity_tokens: disk (NVMe) tier size behind the CPU; 0
            (the default) disables the tier, reproducing the two-tier
            behaviour exactly.
        placement: cross-tier placement policy deciding whether a chunk
            leaving the CPU is demoted to disk or dropped (see
            :class:`~repro.core.eviction.TieredPlacementPolicy`);
            ``None`` demotes whenever the disk tier has room.
        chunk_size: eviction granularity; must be a multiple of
            ``page_size``.
        page_size: tokens per GPU page.
        scorer: eviction policy (default LRU — the functional layer does
            not need the profiled cost table, though one can be passed).
        seed: model weight seed.
        max_conversations: bound on concurrently tracked conversations,
            used to size the page pool's internal-fragmentation allowance
            (each conversation wastes at most one partially-filled tail
            page, exactly like a vLLM sequence).
        fault_plan: optional seeded failure schedule (chaos testing); the
            server recovers along the retry → recompute-fallback →
            per-request-failure ladder, counting into ``fault_counters``.
        retry_policy: bounded-backoff budget for transient faults.
        verify_on_read: re-check CPU-store chunk CRCs on every read
            (default on; the benchmark harness turns it off to price it).
        use_fast_paths: dispatch forward passes through the vectorized
            kernel layer (default on; off = per-layer tiled baseline).
        packing_cache: keep the transformer's incremental decode packing
            cache (packed slot table + gathered-KV staging reused across
            decode iterations).  Numerically transparent; off = the
            rebuild-every-step batched-kernel baseline.
        decode_sched: ``"page-aware"`` (default) orders ``chat_batch``
            conversations so packing-cache occupants keep their rows and
            swapped-out newcomers sort by GPU page residency;
            ``"fifo"`` preserves the caller's order.  With greedy
            sampling both produce identical per-conversation outputs.
        backend: kernel/allocator backend name (see
            :mod:`repro.backends`).  ``None`` falls back to the
            ``REPRO_BACKEND`` environment variable, then ``"paged"``.
            All backends are numerically equivalent (≤1e-6, enforced in
            the bench harness); they differ in staging layout and slot
            allocation.
    """

    #: Legal ``decode_sched`` policies.
    DECODE_SCHEDS = ("fifo", "page-aware")

    def __init__(
        self,
        config: Optional[ModelConfig] = None,
        gpu_capacity_tokens: int = 512,
        cpu_capacity_tokens: int = 2048,
        disk_capacity_tokens: int = 0,
        placement: Optional[TierPlacement] = None,
        chunk_size: int = 16,
        page_size: int = 8,
        scorer: Optional[EvictionScorer] = None,
        seed: int = 0,
        tokenizer: Optional[SimpleTokenizer] = None,
        max_conversations: int = 64,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        verify_on_read: bool = True,
        use_fast_paths: bool = True,
        packing_cache: bool = True,
        decode_sched: str = "page-aware",
        backend: Optional[str] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        if decode_sched not in self.DECODE_SCHEDS:
            raise ValueError(
                f"decode_sched must be one of {self.DECODE_SCHEDS}, "
                f"got {decode_sched!r}"
            )
        self.decode_sched = decode_sched
        self.backend_name = resolve_backend(backend)
        self._backend: Backend = get_backend(self.backend_name)
        if chunk_size % page_size != 0:
            raise ValueError(
                f"chunk_size ({chunk_size}) must be a multiple of "
                f"page_size ({page_size}) so evictions stay page-aligned"
            )
        if gpu_capacity_tokens % page_size != 0:
            raise ValueError("gpu_capacity_tokens must be a multiple of page_size")
        self.config = config or tiny_opt_config()
        self.max_conversations = max_conversations
        # The manager accounts logical tokens; the pool additionally loses
        # up to one page per conversation to tail fragmentation.
        pool_tokens = gpu_capacity_tokens + page_size * max_conversations
        self.pool = PagePool(
            num_pages=pool_tokens // page_size, page_size=page_size
        )
        # The backend owns slot layout: paged backends hand out plain
        # pool-backed tables; the contiguous backend reserves one virtual
        # extent per conversation (sized so `max_position` always fits,
        # making reservation overflow unreachable in serving) plus one
        # for the pinned system prompt.  Either way, physical capacity is
        # accounted against the shared pool, so pressure surfaces as the
        # same PagePoolExhausted the swap machinery already handles.
        reserve_tokens = -(-self.config.max_position // page_size) * page_size
        self._allocator: SlotAllocator = self._backend.create_allocator(
            self.pool,
            reserve_tokens=reserve_tokens,
            max_tables=max_conversations + 1,
        )
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        #: Degradation counters (same schema as the simulated engine's
        #: ``metrics.faults``); all-zero when no fault plan is armed.
        self.fault_counters = FaultCounters()
        #: Structured errors of individually-failed requests, in order.
        self.failures: List[RequestFaultedError] = []
        self.storage = KVStorage(
            self.config, num_slots=self._allocator.storage_slots
        )
        self.cpu_store = CpuChunkStore(
            cpu_capacity_tokens,
            fault_plan=fault_plan,
            verify_on_read=verify_on_read,
        )
        self.disk_store = DiskChunkStore(
            disk_capacity_tokens,
            fault_plan=fault_plan,
            verify_on_read=verify_on_read,
        )
        self.model = PagedTransformer(
            self.config,
            self.storage,
            seed=seed,
            use_fast_paths=use_fast_paths,
            packing_cache=packing_cache,
            backend=self._backend,
        )
        self.tokenizer = tokenizer or SimpleTokenizer(self.config.vocab_size)
        self.manager = TieredCacheManager(
            gpu_capacity_tokens=gpu_capacity_tokens,
            cpu_capacity_tokens=cpu_capacity_tokens,
            disk_capacity_tokens=disk_capacity_tokens,
            placement=placement,
            chunk_size=chunk_size,
            scorer=scorer or LruPolicy(),
            fault_plan=fault_plan,
            fault_counters=self.fault_counters,
        )
        self.manager.observer = self._on_transition
        self._tables: Dict[int, BlockTable] = {}
        #: The "persistent store" of Figure 7: every conversation's raw
        #: token ids, used to recompute dropped chunks.
        self.raw_tokens: Dict[int, List[int]] = {}
        self._clock = 0.0
        # Dedicated sampling stream, independent of the weight seed.
        self._sampling_rng = np.random.default_rng(seed + 104729)
        # Shared system-prompt state (paper footnote 3): prefilled once,
        # pinned forever, prepended to every conversation's context.
        self._system_slots: List[int] = []
        self._system_slots_arr: np.ndarray = np.empty(0, dtype=np.int64)
        self._system_ids: List[int] = []
        # Deferred ahead-of-time D2H copies: inside a ``_coalesce_copies``
        # scope, GPU->CPU-bound chunks queue ``(conv_id, chunk_index,
        # slots)`` here and cross as ONE stacked gather + batched insert
        # at scope exit.  ``None`` = no scope active (copy immediately).
        self._pending_copies: Optional[List[Tuple[int, int, np.ndarray]]] = None
        #: Observability sink (``repro.obs``); the null default keeps the
        #: serving path allocation-free when tracing is off.
        self.tracer = NULL_TRACER
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)

    def set_tracer(self, tracer: NullTracer) -> None:
        """Attach a tracer, propagating it to the cache tiers."""
        self.tracer = tracer
        self.manager.tracer = tracer
        self.cpu_store.tracer = tracer
        self.disk_store.tracer = tracer

    # ------------------------------------------------------------------
    # Physical mirror of the manager's tier transitions
    # ------------------------------------------------------------------

    def _on_transition(
        self,
        cache: ConversationCache,
        chunk: Chunk,
        old: ChunkLocation,
        new: ChunkLocation,
    ) -> None:
        table = self._tables[cache.conv_id]
        if old is ChunkLocation.GPU and new is ChunkLocation.GPU_CPU:
            # Ahead-of-time copy: data lands in the CPU store, pages stay.
            # Inside a coalescing scope the copy is deferred: the slots
            # are captured now (nothing can reallocate them before the
            # flush) and the data crosses with the batched transfer.
            slots = table.slots_array(chunk.start, chunk.end)
            if self._pending_copies is not None:
                self._pending_copies.append((cache.conv_id, chunk.index, slots))
            else:
                k, v = self.storage.read_all_layers(slots)
                self.cpu_store.put(cache.conv_id, chunk.index, k, v)
        elif old is ChunkLocation.GPU_CPU and new is ChunkLocation.CPU:
            # Reclaim: the pages are handed back (data only in CPU now).
            # A still-pending deferred copy stays valid: the KVStorage
            # rows are untouched until the pages are *re-allocated*,
            # which cannot happen inside a coalescing scope.
            table.vacate_front(chunk.num_tokens)
        elif old is ChunkLocation.GPU_CPU and new is ChunkLocation.GPU:
            # Promotion on reuse: invalidate the (stale-to-be) CPU copy.
            # If that copy is still queued in the coalescing scope, flush
            # first so the store and its counters see the same put+drop
            # sequence as the per-chunk path.
            if self._has_pending_copy(cache.conv_id, chunk.index):
                self._flush_pending_copies()
            self.cpu_store.drop(cache.conv_id, chunk.index)
        elif old is ChunkLocation.GPU and new is ChunkLocation.CPU:
            # Suspension path: copy and vacate in one go.
            slots = table.slots_array(chunk.start, chunk.end)
            if self._pending_copies is not None:
                self._pending_copies.append((cache.conv_id, chunk.index, slots))
            else:
                k, v = self.storage.read_all_layers(slots)
                self.cpu_store.put(cache.conv_id, chunk.index, k, v)
            table.vacate_front(chunk.num_tokens)
        elif old is ChunkLocation.GPU and new is ChunkLocation.DROPPED:
            table.vacate_front(chunk.num_tokens)
        elif old is ChunkLocation.GPU_CPU and new is ChunkLocation.DROPPED:
            # Pressure fallback: discard both the GPU slots and the copy.
            if self._has_pending_copy(cache.conv_id, chunk.index):
                self._flush_pending_copies()
            self.cpu_store.drop(cache.conv_id, chunk.index)
            table.vacate_front(chunk.num_tokens)
        elif old is ChunkLocation.CPU and new is ChunkLocation.DROPPED:
            if self._has_pending_copy(cache.conv_id, chunk.index):
                self._flush_pending_copies()
            # The entry may already be gone when a partially-popped swap-in
            # prefix is being invalidated after a corrupt read.
            if self.cpu_store.contains(cache.conv_id, chunk.index):
                self.cpu_store.drop(cache.conv_id, chunk.index)
        elif old is ChunkLocation.CPU and new is ChunkLocation.DISK:
            # Demotion under host-memory pressure: the bytes move to the
            # disk store together with their *insertion-time* checksum —
            # no re-verify on the way down, so corruption acquired in host
            # DRAM is still caught at the eventual disk read (end-to-end
            # integrity).  A still-deferred D2H copy must land first.
            if self._has_pending_copy(cache.conv_id, chunk.index):
                self._flush_pending_copies()
            self.cpu_store.transfer_to(self.disk_store, cache.conv_id, chunk.index)
        elif old is ChunkLocation.DISK and new is ChunkLocation.DROPPED:
            # Disk eviction or post-read invalidation; the entry may
            # already be gone when a popped disk prefix is invalidated
            # after a corrupt read.
            if self.disk_store.contains(cache.conv_id, chunk.index):
                self.disk_store.drop(cache.conv_id, chunk.index)
        elif old is ChunkLocation.DISK and new is ChunkLocation.GPU:
            # Disk restore is orchestrated by chat() alongside the CPU
            # swap-in batch; nothing here.
            pass
        elif old is ChunkLocation.CPU and new is ChunkLocation.GPU:
            # Swap-in is orchestrated by chat() (restore_front needs the
            # whole vacated prefix handled in one batch); nothing here.
            pass
        elif old is ChunkLocation.DROPPED and new is ChunkLocation.GPU:
            pass  # recomputation fills the restored slots during prefill
        else:  # pragma: no cover - no other legal transition exists
            raise AssertionError(f"unexpected transition {old} -> {new}")

    # ------------------------------------------------------------------
    # Coalesced D2H copy path (stacked gather + batched CPU-store insert)
    # ------------------------------------------------------------------

    def _has_pending_copy(self, conv_id: int, chunk_index: int) -> bool:
        return bool(self._pending_copies) and any(
            c == conv_id and i == chunk_index
            for c, i, _ in self._pending_copies
        )

    def _flush_pending_copies(self) -> None:
        """Move every deferred chunk copy to the CPU store as ONE stacked
        all-layer gather and one batched insert."""
        pending = self._pending_copies
        if not pending:
            return
        self._pending_copies = []
        data = self.storage.read_slots_stacked(
            [slots for _, _, slots in pending]
        )
        self.cpu_store.put_many(
            [
                (conv_id, chunk_index, k, v)
                for (conv_id, chunk_index, _), (k, v) in zip(pending, data)
            ]
        )

    @contextmanager
    def _coalesce_copies(self) -> Iterator[None]:
        """Scope within which ahead-of-time D2H chunk copies coalesce.

        Tier transitions fired by the manager inside the scope queue
        their copies instead of moving one chunk at a time; the flush at
        scope exit performs a single stacked transfer.  Deferral is safe
        because no GPU page can be re-allocated before the flush: page
        allocation (``restore_front`` / ``append_tokens``) only happens
        after the capacity-making calls the scope wraps.  Re-entrant —
        an inner scope defers to the outer one's flush.
        """
        if self._pending_copies is not None:
            yield
            return
        self._pending_copies = []
        try:
            yield
        finally:
            try:
                self._flush_pending_copies()
            finally:
                self._pending_copies = None

    # ------------------------------------------------------------------
    # Shared system prompt (paper footnote 3)
    # ------------------------------------------------------------------

    #: Reserved conversation id used to pin the system prompt's slots in
    #: the manager's accounting.
    SYSTEM_CONV_ID = -1

    @property
    def system_prompt_tokens(self) -> int:
        return len(self._system_ids)

    def set_system_prompt(
        self,
        text: str = "",
        prompt_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Designate a common system prompt whose KV state is computed
        once and shared (read-only) by every conversation.

        The paper notes that a chatbot's common system prompt "can be
        handled by explicitly designating the system prompt state as
        reusable" — this is that mechanism.  Must be called before any
        conversation is served.

        Raises:
            RuntimeError: if conversations already exist or a system
                prompt was already set.
            ValueError: on an empty prompt.
        """
        if self._system_ids:
            raise RuntimeError("system prompt already set")
        if self._tables:
            raise RuntimeError("set_system_prompt must precede all chats")
        if prompt_ids is None:
            prompt_ids = self.tokenizer.encode(text)
        ids = list(prompt_ids)
        if not ids:
            raise ValueError("empty system prompt")

        # Pin the slots in the manager's accounting via a reserved,
        # permanently-pinned conversation so eviction can never touch them.
        self.manager.open(self.SYSTEM_CONV_ID, 0.0)
        plan = self.manager.plan_restore(self.SYSTEM_CONV_ID, len(ids))
        self.manager.commit_restore(plan, 0.0)

        table = self._allocator.new_table()
        table.append_tokens(len(ids))
        self._tables[self.SYSTEM_CONV_ID] = table
        self._system_slots = table.slots(0, len(ids))
        self._system_slots_arr = np.asarray(self._system_slots, dtype=np.int64)
        self._system_ids = ids

        # Prefill once; every later request reuses the cached KV rows.
        request = ForwardRequest(
            input_ids=np.asarray(ids, dtype=np.int64),
            context_slots=self._system_slots,
        )
        self.model.forward([request])

    def _full_context(self, table: BlockTable) -> np.ndarray:
        """System-prompt slots followed by the conversation's own slots."""
        return np.concatenate(
            [self._system_slots_arr, table.slots_array(0, table.length)]
        )

    def _decode_request(
        self, conv_id: int, table: BlockTable, last_token: int
    ) -> ForwardRequest:
        """One generation step's request.  With the packing cache active
        the context is passed *by reference* (a slot view keyed on the
        conversation), so the transformer's incremental decode path packs
        only the slots that changed since the previous step instead of
        re-materialising the whole context array."""
        input_ids = np.asarray([last_token], dtype=np.int64)
        shared = len(self._system_slots)
        if self.model.decode_cache is not None:
            return ForwardRequest(
                input_ids=input_ids,
                context_slots=None,
                shared_prefix=shared,
                slot_view=DecodeSlotSource(
                    key=conv_id, table=table, prefix=self._system_slots_arr
                ),
            )
        return ForwardRequest(
            input_ids=input_ids,
            context_slots=self._full_context(table),
            shared_prefix=shared,
        )

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------

    def _attempt(self, site: FaultSite) -> Tuple[bool, int]:
        """Try one faultable operation with bounded backoff on the server
        clock; returns ``(success, attempts)``."""
        if self.fault_plan is None:
            return True, 1
        ok, retries, delay = attempt_with_retries(
            self.fault_plan, site, self.retry_policy, tracer=self.tracer
        )
        self._clock += delay
        self.fault_counters.retries += retries
        return ok, 1 + retries

    def _abort_conversation(self, conv_id: int) -> None:
        """Discard every trace of a conversation after an unrecoverable
        mid-decode fault, leaving the server consistent for other convs.

        The conversation is lost (its next turn starts fresh) — the
        documented last rung of the degradation ladder.
        """
        self.manager.forget(conv_id)
        table = self._tables.pop(conv_id, None)
        if table is not None:
            table.release()
        if self.model.decode_cache is not None:
            # A recycled conversation id must never alias the dead row.
            self.model.decode_cache.drop(conv_id)
        # ``forget`` bypasses the observer, so mirror the cleanup here.
        for chunk_index in self.cpu_store.chunks_of(conv_id):
            self.cpu_store.drop(conv_id, chunk_index)
        for chunk_index in self.disk_store.chunks_of(conv_id):
            self.disk_store.drop(conv_id, chunk_index)
        self.raw_tokens.pop(conv_id, None)

    def _fail_request(
        self, conv_id: int, site: FaultSite, attempts: int
    ) -> RequestFaultedError:
        error = RequestFaultedError(conv_id=conv_id, site=site, attempts=attempts)
        self.fault_counters.degraded_requests += 1
        self.failures.append(error)
        return error

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def chat(
        self,
        conv_id: int,
        user_text: str = "",
        prompt_ids: Optional[Sequence[int]] = None,
        max_new_tokens: int = 16,
        sampling: SamplingParams = GREEDY,
    ) -> List[int]:
        """Serve one turn: prefill the (possibly partially cached) context
        and greedily decode ``max_new_tokens`` tokens.

        Args:
            conv_id: conversation identifier.
            user_text: the user's message (tokenised internally); ignored
                if ``prompt_ids`` is given.
            prompt_ids: raw prompt token ids (for tests/scripted runs).
            max_new_tokens: number of tokens to generate.
            sampling: decoding strategy (greedy by default; stochastic
                strategies draw from the server's seeded sampling stream).

        Returns:
            The generated token ids (decode with ``server.tokenizer``).

        Raises:
            RequestFaultedError: if an injected fault outlives its retry
                budget; the error is structured (conversation, site,
                attempts) and the server remains consistent for every
                other conversation.
        """
        self._clock += 1.0
        now = self._clock
        if conv_id == self.SYSTEM_CONV_ID:
            raise ValueError(f"conversation id {conv_id} is reserved")
        if prompt_ids is None:
            prompt_ids = self.tokenizer.encode(user_text)
        prompt_ids = list(prompt_ids)
        if not prompt_ids:
            raise ValueError("empty prompt")

        tracer = self.tracer
        req_span = 0
        if tracer.enabled:
            req_span = tracer.begin(
                "request", t=now, track="requests",
                conv_id=conv_id, prompt_tokens=len(prompt_ids),
            )
        try:
            prefill_span = 0
            if tracer.enabled:
                prefill_span = tracer.begin(
                    "prefill", t=now, parent=req_span, track="server",
                    conv_id=conv_id,
                )
            table, dropped, input_ids = self._restore_context(
                conv_id, prompt_ids, now
            )
            history = self.raw_tokens[conv_id]
            request = ForwardRequest(
                input_ids=np.asarray(input_ids, dtype=np.int64),
                context_slots=self._full_context(table),
                dropped=dropped,
                shared_prefix=len(self._system_slots),
            )
            logits = self.model.forward([request])[0]
            next_token = sample_token(logits[-1], sampling, self._sampling_rng)
            if tracer.enabled:
                tracer.end(
                    prefill_span, t=self._clock,
                    tokens=len(input_ids), recomputed=dropped,
                )

            decode_span = 0
            if tracer.enabled:
                decode_span = tracer.begin(
                    "decode", t=self._clock, parent=req_span, track="server",
                    conv_id=conv_id,
                )
            generated = [next_token]
            for _ in range(max_new_tokens - 1):
                self._grow(conv_id, table, now)
                step = self._decode_request(conv_id, table, generated[-1])
                step_logits = self.model.next_token_logits([step])[0]
                generated.append(
                    sample_token(step_logits, sampling, self._sampling_rng)
                )

            # Account the final token's KV as part of the cached context.
            self._grow(conv_id, table, now)
            step = self._decode_request(conv_id, table, generated[-1])
            self.model.forward([step])
            if tracer.enabled:
                tracer.end(decode_span, t=self._clock, tokens=len(generated))
        except RequestFaultedError:
            if tracer.enabled:
                tracer.count("requests.failed")
                tracer.end(req_span, t=self._clock, outcome="failed")
            raise

        history.extend(prompt_ids)
        history.extend(generated)
        self.manager.close(conv_id, now)
        if tracer.enabled:
            tracer.count("requests.finished")
            tracer.end(
                req_span, t=self._clock,
                outcome="finished", output_tokens=len(generated),
            )
        return generated

    def _restore_context(
        self, conv_id: int, prompt_ids: List[int], now: float
    ) -> Tuple[BlockTable, int, List[int]]:
        """Bring a conversation's context fully GPU-resident for a turn.

        Pins the conversation, makes room (possibly evicting others),
        physically swaps CPU chunks back in, allocates slots for the new
        prompt, and returns ``(block_table, dropped, input_ids)`` where
        ``input_ids`` is the Figure 8(a) concatenation of recomputed raw
        tokens and the new prompt.
        """
        history = self.raw_tokens.setdefault(conv_id, [])
        table = self._tables.get(conv_id)
        if table is None:
            table = self._tables.setdefault(conv_id, self._allocator.new_table())

        # Pin first so capacity-making below cannot evict this
        # conversation's own chunks out from under the plan.
        self.manager.open(conv_id, now)
        # Transient GPU-allocation fault gate, retried with backoff on the
        # server clock.  A terminal failure degrades this request alone —
        # nothing was mutated yet, so unpinning restores the status quo.
        ok, attempts = self._attempt(FaultSite.GPU_ALLOC)
        if not ok:
            cache = self.manager.conversation(conv_id)
            if cache is not None and cache.total_tokens > 0:
                # Prior turns' context survives the failed turn, unpinned.
                self.manager.close(conv_id, now)
            else:
                self._abort_conversation(conv_id)
            raise self._fail_request(conv_id, FaultSite.GPU_ALLOC, attempts)
        plan = self.manager.plan_restore(conv_id, len(prompt_ids))

        # NVMe read fault (disk tier): a terminal stall falls back to
        # recomputing the disk-resident prefix only — the CPU-resident
        # chunks behind it are unaffected and still swap in normally.
        # ``alloc_tokens`` is unchanged (disk-read tokens become recompute
        # tokens), so the capacity work below is identical either way.
        if plan.disk_read_chunks:
            ok, _ = self._attempt(FaultSite.NVME_STALL)
            if not ok:
                self.fault_counters.disk_read_failures += 1
                self.fault_counters.recompute_fallbacks += 1
                self.manager.invalidate_disk_prefix(conv_id)
                plan = self.manager.plan_restore(conv_id, len(prompt_ids))

        # PCIe swap-in transfer fault: a terminal failure falls back to
        # the §4.3.4 recompute path.  ``alloc_tokens`` is unchanged (the
        # swap-in tokens become recompute tokens), so the capacity work
        # below is identical either way.  Invalidating the CPU prefix
        # necessarily takes any preceding disk chunks with it (Figure 5:
        # the dropped prefix only grows from the front).
        if plan.swap_in_chunks:
            ok, _ = self._attempt(FaultSite.SWAP_IN)
            if not ok:
                self.fault_counters.swap_in_failures += 1
                self.fault_counters.recompute_fallbacks += 1
                self.manager.invalidate_cpu_prefix(conv_id)
                plan = self.manager.plan_restore(conv_id, len(prompt_ids))

        # Make room (may evict other conversations — the observer moves
        # their tensors; reclaim happens lazily inside commit_restore).
        # Ahead-of-time copies fired in here coalesce into one stacked
        # gather + batched CPU-store insert at scope exit.
        with self._coalesce_copies():
            self.manager.ensure_capacity(plan.alloc_tokens, now)
            self.manager.reclaim(
                max(0, plan.alloc_tokens - self.manager.gpu_free_tokens),
                now,
                exclude=conv_id,
            )

        # Pull the stored chunks' data out of the disk and CPU stores
        # *before* commit flips their state (the observer drops CPU
        # entries on promotion of GPU_CPU chunks only; DISK->GPU and
        # CPU->GPU data is handled here).  Each tier's chunks move in ONE
        # coalesced batch; each chunk is still CRC re-verified
        # individually against its insertion-time checksum — for a
        # disk-resident chunk that checksum dates from its original GPU
        # departure, so the check spans the whole CPU->disk journey.
        # Capture ranges now: commit_restore may extend the partial tail
        # chunk in place, but the stored data covers the pre-extension
        # token range.
        restored_data = []
        corrupt_upto: Optional[Chunk] = None
        stored_chunks = plan.disk_read_chunks + plan.swap_in_chunks
        if stored_chunks:
            by_index = {chunk.index: chunk for chunk in stored_chunks}
            popped: List[Tuple[int, Tuple[np.ndarray, np.ndarray]]] = []
            corrupt: List[int] = []
            if plan.disk_read_chunks:
                disk_popped, disk_corrupt = self.disk_store.pop_many(
                    conv_id, [chunk.index for chunk in plan.disk_read_chunks]
                )
                popped.extend(disk_popped)
                corrupt.extend(disk_corrupt)
            if plan.swap_in_chunks:
                cpu_popped, cpu_corrupt = self.cpu_store.pop_many(
                    conv_id, [chunk.index for chunk in plan.swap_in_chunks]
                )
                popped.extend(cpu_popped)
                corrupt.extend(cpu_corrupt)
            self.fault_counters.corrupted_chunks += len(corrupt)
            if corrupt:
                # Disk chunks precede CPU chunks (Figure 5 extended), and
                # each pop preserves request order, so the list ascends.
                corrupt_upto = by_index[corrupt[-1]]
            restored_data = [
                (by_index[index].start, by_index[index].end, data)
                for index, data in popped
            ]
        if corrupt_upto is not None:
            # Checksum caught corruption: invalidate the stored (disk +
            # CPU) prefix through the (last) corrupt chunk — the Figure 5
            # layout only lets the DROPPED prefix grow, so already-popped
            # predecessors are discarded too — and recompute those tokens.
            self.fault_counters.recompute_fallbacks += 1
            self.manager.invalidate_cpu_prefix(conv_id, upto=corrupt_upto)
            restored_data = [
                item for item in restored_data if item[0] >= corrupt_upto.end
            ]
            plan = self.manager.plan_restore(conv_id, len(prompt_ids))
        if self.tracer.enabled:
            self.tracer.instant(
                "restore", t=now, track="server", conv_id=conv_id,
                gpu_hits=plan.gpu_hit_tokens, swap_in=plan.swap_in_tokens,
                disk_read=plan.disk_read_tokens,
                recompute=plan.recompute_tokens, new=plan.new_tokens,
            )
        self.manager.commit_restore(plan, now)

        # Physically restore the vacated prefix: dropped tokens get fresh
        # (empty) slots to be filled by recomputation; disk and CPU tokens
        # get fresh slots filled from their stores.
        restore_tokens = (
            plan.recompute_tokens + plan.swap_in_tokens + plan.disk_read_tokens
        )
        if restore_tokens:
            table.restore_front(restore_tokens)
        if restored_data:
            # One stacked scatter instead of a write per chunk.
            self.storage.write_slots_stacked(
                [table.slots_array(start, end) for start, end, _ in restored_data],
                [data for _, _, data in restored_data],
            )
        table.append_tokens(len(prompt_ids))

        # Figure 8(a): recomputed raw tokens are prepended to the prompt.
        dropped = plan.recompute_tokens
        input_ids = history[:dropped] + prompt_ids
        return table, dropped, input_ids

    def _grow(self, conv_id: int, table: BlockTable, now: float) -> None:
        """Extend a running conversation by one decode token, swapping
        other conversations out of the way if the GPU tier is full.

        Raises:
            RequestFaultedError: if an injected allocation fault outlives
                its retry budget mid-decode; the conversation is discarded
                (the last rung of the degradation ladder) and the server
                stays consistent for every other conversation.
        """
        ok, attempts = self._attempt(FaultSite.GPU_ALLOC)
        if not ok:
            self._abort_conversation(conv_id)
            raise self._fail_request(conv_id, FaultSite.GPU_ALLOC, attempts)
        if self.manager.gpu_available_tokens < 1:
            with self._coalesce_copies():
                self.manager.ensure_capacity(1, now)
        self.manager.append_tokens(conv_id, 1)
        table.append_tokens(1)

    # ------------------------------------------------------------------
    # Batched serving (unified batching, functional layer)
    # ------------------------------------------------------------------

    def chat_batch(
        self,
        prompts: Sequence[Tuple[int, Sequence[int]]],
        max_new_tokens: int = 16,
        sampling: SamplingParams = GREEDY,
    ) -> Dict[int, List[int]]:
        """Serve several conversations' turns in unified batches.

        All prefills run in one forward pass (mixing fresh and returning
        conversations, exactly the §4.2 unified batch) and every decode
        step advances all conversations together.  With greedy sampling
        the outputs are identical to serving the turns sequentially —
        batching is purely a throughput optimisation.

        Under the default ``page-aware`` decode schedule the batch is
        reordered before serving: conversations already occupying packing
        -cache rows keep their row order (so the cache extends in place
        instead of rebuilding), and the rest sort by GPU page residency —
        fully-resident conversations first, deep swap-ins last.  With
        greedy sampling the reorder is output-invariant per conversation.

        Args:
            prompts: ``(conv_id, prompt_ids)`` pairs; conversation ids
                must be distinct within one batch.
            max_new_tokens: tokens to generate per conversation.
            sampling: decoding strategy (stochastic strategies consume the
                sampling stream in batch — i.e. scheduled — order, so
                they match sequential serving only in distribution, not
                token-for-token).

        Returns:
            Mapping of conversation id to its generated token ids.
            Conversations whose requests failed individually under an
            armed fault plan are omitted (see ``self.failures``).
        """
        self._clock += 1.0
        now = self._clock
        conv_ids = [conv_id for conv_id, _ in prompts]
        if len(set(conv_ids)) != len(conv_ids):
            raise ValueError("duplicate conversation ids in one batch")
        if self.SYSTEM_CONV_ID in conv_ids:
            raise ValueError(f"conversation id {self.SYSTEM_CONV_ID} is reserved")
        if self.decode_sched == "page-aware" and len(prompts) > 1:
            prompts = self._page_aware_order(prompts)
        if self.tracer.enabled:
            self.tracer.instant(
                "batch_turn", t=now, track="server", batch_size=len(prompts)
            )

        # Phase 1: restore/extend every conversation's context (pins all,
        # so later restores cannot evict earlier batch members).  A
        # request that exhausts its fault retries drops out individually;
        # the rest of the batch is served normally.
        prepared = []
        for conv_id, prompt_ids in prompts:
            prompt_ids = list(prompt_ids)
            if not prompt_ids:
                raise ValueError(f"empty prompt for conversation {conv_id}")
            try:
                table, dropped, input_ids = self._restore_context(
                    conv_id, prompt_ids, now
                )
            except RequestFaultedError:
                continue  # recorded in self.failures; batch goes on
            prepared.append((conv_id, prompt_ids, table, dropped, input_ids))
        if not prepared:
            return {}

        # Phase 2: one unified prefill batch.
        shared = len(self._system_slots)
        requests = [
            ForwardRequest(
                input_ids=np.asarray(input_ids, dtype=np.int64),
                context_slots=self._full_context(table),
                dropped=dropped,
                shared_prefix=shared,
            )
            for _, _, table, dropped, input_ids in prepared
        ]
        logits = self.model.forward(requests)
        generated: Dict[int, List[int]] = {
            conv_id: [sample_token(l[-1], sampling, self._sampling_rng)]
            for (conv_id, _, _, _, _), l in zip(prepared, logits)
        }

        # Phase 3: batched decode steps (every conversation advances by
        # one token per iteration, like the simulated engine).  A
        # mid-decode terminal fault removes only the affected
        # conversation; its siblings keep decoding.
        for _ in range(max_new_tokens):
            steps = []
            survivors = []
            for item in prepared:
                conv_id, _, table, _, _ = item
                try:
                    self._grow(conv_id, table, now)
                except RequestFaultedError:
                    generated.pop(conv_id, None)
                    continue
                survivors.append(item)
                steps.append(
                    self._decode_request(conv_id, table, generated[conv_id][-1])
                )
            prepared = survivors
            if not prepared:
                return {}
            step_logits = self.model.forward(steps)
            if len(generated[prepared[0][0]]) >= max_new_tokens:
                break  # final iteration only wrote the last tokens' KV
            for (conv_id, _, _, _, _), l in zip(prepared, step_logits):
                generated[conv_id].append(
                    sample_token(l[-1], sampling, self._sampling_rng)
                )

        # Phase 4: persist raw tokens and unpin.
        for conv_id, prompt_ids, _, _, _ in prepared:
            history = self.raw_tokens.setdefault(conv_id, [])
            history.extend(prompt_ids)
            history.extend(generated[conv_id])
            self.manager.close(conv_id, now)
        return generated

    def _gpu_resident_fraction(self, conv_id: int) -> float:
        """Fraction of a conversation's cached tokens still holding GPU
        pages (GPU + GPU_CPU in the Figure 5 layout)."""
        cache = self.manager.conversation(conv_id)
        if cache is None or cache.total_tokens == 0:
            return 0.0
        seg = cache.segments()
        resident = seg.get(ChunkLocation.GPU, 0) + seg.get(
            ChunkLocation.GPU_CPU, 0
        )
        return resident / cache.total_tokens

    def _page_aware_order(
        self, prompts: Sequence[Tuple[int, Sequence[int]]]
    ) -> List[Tuple[int, Sequence[int]]]:
        """Schedule a batch page-aware: packing-cache occupants first, in
        their cached row order (keeping the packed table's extend fast
        path alive across turns), then the rest by descending GPU page
        residency so deep swap-ins land at the batch tail.  Ties keep the
        caller's order (stable)."""
        cache = self.model.decode_cache

        def sort_key(item: Tuple[int, Tuple[int, Sequence[int]]]):
            index, (conv_id, _) = item
            row = cache.row_index(conv_id) if cache is not None else None
            if row is not None:
                return (0, row, index)
            return (1, -self._gpu_resident_fraction(conv_id), index)

        return [pair for _, pair in sorted(enumerate(prompts), key=sort_key)]

    def chat_text(self, conv_id: int, user_text: str, max_new_tokens: int = 16) -> str:
        """Convenience wrapper returning decoded text."""
        ids = self.chat(conv_id, user_text=user_text, max_new_tokens=max_new_tokens)
        return self.tokenizer.decode(ids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def context_length(self, conv_id: int) -> int:
        """Cached context length of a conversation (0 if unknown)."""
        cache = self.manager.conversation(conv_id)
        return cache.total_tokens if cache else 0

    def placement(self, conv_id: int) -> Dict[str, int]:
        """Figure 5 decomposition of a conversation's cached context."""
        cache = self.manager.conversation(conv_id)
        if cache is None:
            return {}
        seg = cache.segments()
        return {loc.value: tokens for loc, tokens in seg.items() if tokens}
