"""Discrete-event simulation core.

This subpackage provides the minimal machinery used by the performance layer
of the Pensieve reproduction: a simulated clock, a priority-queue event loop,
and an event trace recorder.  The serving engines (:mod:`repro.core`,
:mod:`repro.serving`) schedule kernel executions and PCIe transfers as timed
events on this loop instead of running them on real hardware.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventLoop, SimulationError
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Clock",
    "Event",
    "EventLoop",
    "SimulationError",
    "TraceEvent",
    "TraceRecorder",
]
