"""Priority-queue event loop for discrete-event simulation.

The loop dispatches callbacks in timestamp order; ties are broken by
insertion order so that a sequence of events scheduled for the same instant
runs in FIFO order, which keeps scheduler behaviour deterministic.

Typical usage::

    loop = EventLoop()
    loop.schedule(1.5, handle_arrival, request)
    loop.run()          # runs until the queue drains
    print(loop.now)     # 1.5
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import Clock


class SimulationError(RuntimeError):
    """Raised when the event loop is used incorrectly."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events sort by ``(time, seq)``.  ``seq`` is a monotonically increasing
    insertion counter, giving same-time events FIFO semantics.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """A deterministic discrete-event loop.

    The loop owns a :class:`~repro.sim.clock.Clock`.  Callbacks may schedule
    further events (at or after the current time).  ``run`` processes events
    until the queue is empty or an optional horizon is reached.
    """

    #: Gauge the event-queue depth every this many dispatches (traced runs).
    TRACE_GAUGE_EVERY = 512

    def __init__(self) -> None:
        self._clock = Clock()
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._dispatched = 0
        #: Observability sink; the shared null tracer costs one attribute
        #: check per dispatch when tracing is off.
        self.tracer = NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def dispatched(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run at absolute ``time``.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule event at {time!r} before now={self._clock.now!r}"
            )
        event = Event(time=float(time), seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self._clock.now + delay, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch queued events in order.

        Args:
            until: stop once the next event would occur strictly after this
                time.  The clock is advanced to ``until`` when it is reached.
            max_events: safety valve; raise if more events dispatch.

        Returns:
            The number of events dispatched by this call.

        Raises:
            SimulationError: on re-entrant ``run`` or when ``max_events`` is
                exceeded (which almost always indicates a scheduling loop).
        """
        if self._running:
            raise SimulationError("EventLoop.run is not re-entrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._clock.advance_to(event.time)
                event.callback(*event.args)
                dispatched += 1
                self._dispatched += 1
                if self.tracer.enabled:
                    self.tracer.count("sim.events_dispatched")
                    if self._dispatched % self.TRACE_GAUGE_EVERY == 0:
                        self.tracer.gauge(
                            "sim.pending_events", self.pending, t=self._clock.now
                        )
                if max_events is not None and dispatched > max_events:
                    raise SimulationError(
                        f"dispatched more than max_events={max_events} events; "
                        "likely a scheduling loop"
                    )
            if until is not None and self._clock.now < until:
                self._clock.advance_to(until)
        finally:
            self._running = False
        return dispatched

    def __repr__(self) -> str:
        return f"EventLoop(now={self.now:.6f}, pending={self.pending})"
