"""Simulated wall-clock time.

All times in the simulation are expressed in *seconds* as floats.  The clock
is owned by the :class:`repro.sim.events.EventLoop` and only advances when
the loop dispatches an event; user code must never set it backwards.
"""

from __future__ import annotations


class Clock:
    """A monotonically non-decreasing simulated clock.

    The clock starts at ``0.0`` seconds.  It is advanced exclusively through
    :meth:`advance_to`, which enforces monotonicity so that causality bugs in
    the event loop surface immediately instead of silently corrupting
    latency measurements.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time``.

        Raises:
            ValueError: if ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now!r}, target={time!r}"
            )
        self._now = float(time)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
