"""Structured trace recording for simulation runs.

Engines emit :class:`TraceEvent` records (batch launches, swaps, evictions,
suspensions) into a :class:`TraceRecorder`.  Experiments use the trace to
compute derived statistics such as cache hit rates and recomputed-token
counts (Figure 14 of the paper).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Counter as CounterT, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single timestamped trace record.

    Attributes:
        time: simulated time in seconds at which the event occurred.
        kind: short machine-readable category, e.g. ``"batch"``, ``"swap_in"``.
        data: free-form payload describing the event.
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Accumulates trace events and answers simple aggregate queries.

    Recording can be disabled (the default for large sweeps) in which case
    :meth:`record` is a no-op, but counters are still maintained so cheap
    aggregates remain available.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self._keep_events = keep_events
        self._events: List[TraceEvent] = []
        self._counts: CounterT[str] = Counter()
        self._sums: Dict[str, float] = {}

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Record one event of ``kind`` at ``time`` with payload ``data``.

        Numeric payload values are accumulated into per-``(kind, key)`` sums
        so aggregates survive even when full event storage is disabled.
        """
        self._counts[kind] += 1
        for key, value in data.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                sum_key = f"{kind}.{key}"
                self._sums[sum_key] = self._sums.get(sum_key, 0.0) + value
        if self._keep_events:
            self._events.append(TraceEvent(time=time, kind=kind, data=dict(data)))

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return self._counts[kind]

    def total(self, kind: str, key: str) -> float:
        """Sum of the numeric payload ``key`` across all events of ``kind``."""
        return self._sums.get(f"{kind}.{key}", 0.0)

    def events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        """Iterate stored events, optionally filtered by ``kind``."""
        if not self._keep_events and (self._counts and not self._events):
            raise RuntimeError("event storage was disabled for this recorder")
        for event in self._events:
            if kind is None or event.kind == kind:
                yield event

    def clear(self) -> None:
        """Drop all recorded events and counters."""
        self._events.clear()
        self._counts.clear()
        self._sums.clear()

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __repr__(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"TraceRecorder({kinds})"
