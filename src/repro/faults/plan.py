"""Deterministic fault-injection plans.

A :class:`FaultPlan` decides, at each *injection site*, whether the next
operation there fails.  Decisions are a pure function of the plan's seed
and the per-site occurrence counter, so a chaos run is exactly
reproducible: the same seed yields the same failure schedule regardless of
wall-clock time, and each site draws from an independent random stream so
injecting faults at one site never perturbs another site's schedule.

Two scheduling mechanisms compose:

- **rates**: every occurrence at a site fails independently with the
  configured probability (drawn from the site's seeded stream);
- **schedules**: explicit occurrence indices that fail unconditionally
  (index 0 is the first operation at that site) — the tool of choice for
  tests that need a failure at an exact point.

``max_failures`` caps the total failures a site may inject, which lets
chaos tests guarantee that bounded-retry recovery eventually succeeds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

import numpy as np


class FaultSite(enum.Enum):
    """Where a fault can be injected."""

    SWAP_IN = "swap_in"          #: PCIe H2D transfer (KV retrieval).
    SWAP_OUT = "swap_out"        #: PCIe D2H transfer (ahead-of-time copy).
    GPU_ALLOC = "gpu_alloc"      #: GPU page/slot allocation.
    CPU_READ = "cpu_read"        #: CPU-store read (checksum corruption).
    WORKER_STEP = "worker_step"  #: one worker's iteration (multi-GPU stall).
    # New sites are appended so earlier sites keep their derived RNG
    # streams (``[seed, ordinal]``) and existing chaos schedules replay
    # bit-identically.
    DISK_READ = "disk_read"      #: disk-store read (checksum corruption).
    NVME_STALL = "nvme_stall"    #: NVMe transfer stall (disk-tier I/O).


class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Args:
        seed: root seed; each site derives an independent stream from it.
        rates: per-site independent failure probability (unlisted sites
            never fail by rate).
        schedules: per-site occurrence indices that fail unconditionally.
        max_failures: per-site cap on injected failures (``None`` = no cap).
        stall_seconds: duration of one injected worker stall (§4.4.2 path).
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[FaultSite, float]] = None,
        schedules: Optional[Mapping[FaultSite, Iterable[int]]] = None,
        max_failures: Optional[Mapping[FaultSite, int]] = None,
        stall_seconds: float = 0.05,
    ) -> None:
        rates = dict(rates or {})
        for site, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site} must be in [0, 1], got {rate}")
        if stall_seconds < 0:
            raise ValueError(f"stall_seconds must be >= 0, got {stall_seconds}")
        self.seed = seed
        self.rates = rates
        self.schedules: Dict[FaultSite, FrozenSet[int]] = {
            site: frozenset(idx) for site, idx in (schedules or {}).items()
        }
        self.max_failures: Dict[FaultSite, int] = dict(max_failures or {})
        self.stall_seconds = stall_seconds
        sites = list(FaultSite)
        self._rng = {
            site: np.random.default_rng([seed, ordinal])
            for ordinal, site in enumerate(sites)
        }
        #: Operations seen per site (the occurrence counter).
        self.occurrences: Dict[FaultSite, int] = {s: 0 for s in sites}
        #: Failures injected per site.
        self.fired: Dict[FaultSite, int] = {s: 0 for s in sites}

    @classmethod
    def quiet(cls, seed: int = 0) -> "FaultPlan":
        """A plan that never injects anything (useful as a default)."""
        return cls(seed=seed)

    def fires(self, site: FaultSite) -> bool:
        """Consume one occurrence at ``site``; True when it must fail.

        The site's random stream is advanced on *every* call, so adding or
        removing an explicit schedule entry never shifts the rate-driven
        part of the plan.
        """
        index = self.occurrences[site]
        self.occurrences[site] = index + 1
        draw = float(self._rng[site].random())
        cap = self.max_failures.get(site)
        if cap is not None and self.fired[site] >= cap:
            return False
        fire = index in self.schedules.get(site, ()) or draw < self.rates.get(
            site, 0.0
        )
        if fire:
            self.fired[site] += 1
        return fire

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def __repr__(self) -> str:
        fired = {s.value: n for s, n in self.fired.items() if n}
        return f"FaultPlan(seed={self.seed}, fired={fired})"


@dataclass
class FaultCounters:
    """Recovery-level fault accounting (surfaced by serving metrics).

    Counts *what the system did about* injected faults, as opposed to
    :attr:`FaultPlan.fired` which counts the raw injections:

    - ``swap_in_failures`` / ``swap_out_failures``: PCIe transfers that
      failed terminally (after retries);
    - ``alloc_faults``: GPU allocation attempts that faulted at least once;
    - ``corrupted_chunks``: CPU- or disk-store chunks caught by checksum;
    - ``recompute_fallbacks``: restores that fell back to the §4.3.4
      recomputation path after a failed/corrupt swap-in;
    - ``retries``: individual retry attempts across all sites;
    - ``degraded_requests``: requests that failed individually after
      exhausting their retry budget (the batch continued without them);
    - ``worker_stalls``: injected multi-GPU worker stalls absorbed;
    - ``nvme_stalls``: injected NVMe transfer stalls absorbed (retried
      in the functional server, modeled as added latency in the engine);
    - ``disk_read_failures``: disk-tier reads that failed terminally
      (after retries) and degraded the disk prefix to recompute.
    """

    swap_in_failures: int = 0
    swap_out_failures: int = 0
    alloc_faults: int = 0
    corrupted_chunks: int = 0
    recompute_fallbacks: int = 0
    retries: int = 0
    degraded_requests: int = 0
    worker_stalls: int = 0
    nvme_stalls: int = 0
    disk_read_failures: int = 0
    _extra: Dict[str, int] = field(default_factory=dict, repr=False)

    def as_dict(self) -> Dict[str, int]:
        return {
            "swap_in_failures": self.swap_in_failures,
            "swap_out_failures": self.swap_out_failures,
            "alloc_faults": self.alloc_faults,
            "corrupted_chunks": self.corrupted_chunks,
            "recompute_fallbacks": self.recompute_fallbacks,
            "retries": self.retries,
            "degraded_requests": self.degraded_requests,
            "worker_stalls": self.worker_stalls,
            "nvme_stalls": self.nvme_stalls,
            "disk_read_failures": self.disk_read_failures,
        }

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())
