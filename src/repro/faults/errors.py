"""Structured fault and degradation errors.

Every injected failure that escapes its recovery ladder surfaces as one of
these exceptions, carrying enough structure (site, conversation, attempt
count) for callers to degrade a *single* request while the rest of the
batch keeps running.
"""

from __future__ import annotations

from typing import Optional


class FaultError(RuntimeError):
    """Base class of all injected-fault errors."""


class TransferFaultError(FaultError):
    """A PCIe swap-in or swap-out transfer failed."""

    def __init__(self, direction: str, conv_id: Optional[int] = None) -> None:
        self.direction = direction
        self.conv_id = conv_id
        super().__init__(f"{direction} transfer failed (conv={conv_id})")


class GpuAllocationFaultError(FaultError):
    """A transient GPU page/slot allocation failure."""

    def __init__(self, conv_id: Optional[int] = None) -> None:
        self.conv_id = conv_id
        super().__init__(f"GPU allocation failed (conv={conv_id})")


class ChunkCorruptionError(FaultError):
    """A CPU-store chunk failed its checksum on read.

    Attributes:
        conv_id: owning conversation.
        chunk_index: corrupted chunk's ordinal within the conversation.
    """

    def __init__(self, conv_id: int, chunk_index: int) -> None:
        self.conv_id = conv_id
        self.chunk_index = chunk_index
        super().__init__(
            f"checksum mismatch on CPU chunk (conv={conv_id}, "
            f"chunk={chunk_index})"
        )


class RequestFaultedError(FaultError):
    """A request exhausted its retry budget and failed individually.

    The serving layer raises this for exactly one request; sibling requests
    in the same batch are unaffected (graceful degradation).

    Attributes:
        conv_id: the failed request's conversation.
        site: the :class:`~repro.faults.plan.FaultSite` value that faulted.
        attempts: total attempts made (1 initial + retries).
    """

    def __init__(self, conv_id: int, site: object, attempts: int) -> None:
        self.conv_id = conv_id
        self.site = site
        self.attempts = attempts
        super().__init__(
            f"request for conversation {conv_id} failed at {site} "
            f"after {attempts} attempt(s)"
        )
