"""Deterministic fault injection and graceful-degradation support.

The serving stack assumes by default that every PCIe transfer, page
allocation and worker step succeeds.  This package makes failure a
first-class, *reproducible* input: a seeded :class:`FaultPlan` schedules
failures at well-defined injection sites, and the cache manager, both
engines and the CPU store recover along a fixed ladder —

    retry (bounded backoff)  →  swap-in falls back to recomputation
    (§4.3.4)  →  the single affected request fails with a structured
    error while the batch continues.

See ``ARCHITECTURE.md`` ("Fault model & degradation paths") for the full
site/recovery matrix.
"""

from repro.faults.errors import (
    ChunkCorruptionError,
    FaultError,
    GpuAllocationFaultError,
    RequestFaultedError,
    TransferFaultError,
)
from repro.faults.plan import FaultCounters, FaultPlan, FaultSite
from repro.faults.retry import RetryPolicy, attempt_with_retries
from repro.faults.sites import SITES, SiteSpec, site_names

__all__ = [
    "ChunkCorruptionError",
    "FaultCounters",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "GpuAllocationFaultError",
    "RequestFaultedError",
    "RetryPolicy",
    "SITES",
    "SiteSpec",
    "TransferFaultError",
    "attempt_with_retries",
    "site_names",
]
