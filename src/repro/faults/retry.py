"""Bounded retry with exponential backoff on the simulated clock.

Transient faults (GPU allocation hiccups, flaky PCIe transfers) are retried
a bounded number of times; each retry costs simulated time, which engines
charge to the iteration (discrete-event layer) or to the server clock
(functional layer).  The policy is pure data so both layers share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.faults.plan import FaultPlan, FaultSite
from repro.obs.tracer import NULL_TRACER, NullTracer


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget.

    Args:
        max_retries: retries allowed after the first failed attempt.
        base_backoff: simulated seconds before the first retry.
        multiplier: backoff growth factor per retry.
    """

    max_retries: int = 3
    base_backoff: float = 0.002
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff < 0:
            raise ValueError(f"base_backoff must be >= 0, got {self.base_backoff}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def backoffs(self) -> Iterator[float]:
        """Backoff delays, one per permitted retry."""
        delay = self.base_backoff
        for _ in range(self.max_retries):
            yield delay
            delay *= self.multiplier

    @property
    def total_backoff(self) -> float:
        """Worst-case simulated seconds spent backing off."""
        return sum(self.backoffs())


def attempt_with_retries(
    plan: FaultPlan,
    site: FaultSite,
    policy: RetryPolicy,
    tracer: NullTracer = NULL_TRACER,
) -> Tuple[bool, int, float]:
    """Draw ``site`` once, retrying per ``policy`` while it keeps failing.

    Returns ``(success, retries_used, backoff_seconds)``: the caller charges
    ``backoff_seconds`` to its clock and counts the retries; on ``False``
    the operation failed terminally and must enter its degradation path.
    ``tracer`` receives per-site retry and outcome counters.
    """
    if not plan.fires(site):
        return True, 0, 0.0
    retries = 0
    delay = 0.0
    ok = False
    for backoff in policy.backoffs():
        retries += 1
        delay += backoff
        if not plan.fires(site):
            ok = True
            break
    if tracer.enabled:
        tracer.count(f"fault.{site.value}.retries", retries)
        tracer.count(
            f"fault.{site.value}.recovered" if ok
            else f"fault.{site.value}.terminal"
        )
    return ok, retries, delay
