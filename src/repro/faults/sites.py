"""The declared fault-site registry: the single source of truth.

Every injection site the fault plan can draw has exactly one entry here,
carrying the storage/transfer *tier* it models and the default rate scale
the CLI applies when ``--fault-seed`` arms a uniform ``--fault-rate``
(checksum-style sites historically run at a quarter of the transfer
rate).  Consumers must look sites up through :data:`SITES` (or the
:class:`~repro.faults.plan.FaultSite` enum it mirrors) instead of
re-declaring string literals — ``repro lint`` rule RPR002 statically
checks both directions:

- every ``FaultSite.<NAME>`` access and every string fault-site name in
  the tree resolves to a declared site;
- this registry and the enum agree member-for-member (also enforced at
  import time below, so a drift cannot even load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.faults.plan import FaultSite

__all__ = ["SITES", "SiteSpec", "site_names"]


@dataclass(frozen=True)
class SiteSpec:
    """One declared injection site.

    Attributes:
        name: the wire name (== ``FaultSite.value``).
        tier: which modeled component the fault lives in
            (``pcie`` / ``gpu`` / ``cpu`` / ``worker`` / ``disk`` /
            ``nvme``).
        rate_scale: multiplier applied to a uniform ``--fault-rate``
            when the CLI builds a plan (corruption-style sites run
            quieter than transfer-style sites).
        description: one-line human summary.
    """

    name: str
    tier: str
    rate_scale: float
    description: str


#: Declared sites, keyed by wire name, in enum declaration order (new
#: sites are appended so seeded RNG streams stay stable — see
#: :class:`~repro.faults.plan.FaultSite`).
SITES: Dict[str, SiteSpec] = {
    "swap_in": SiteSpec(
        "swap_in", "pcie", 1.0, "PCIe H2D transfer (KV retrieval)"
    ),
    "swap_out": SiteSpec(
        "swap_out", "pcie", 1.0, "PCIe D2H transfer (ahead-of-time copy)"
    ),
    "gpu_alloc": SiteSpec(
        "gpu_alloc", "gpu", 1.0, "GPU page/slot allocation"
    ),
    "cpu_read": SiteSpec(
        "cpu_read", "cpu", 0.25, "CPU-store read (checksum corruption)"
    ),
    "worker_step": SiteSpec(
        "worker_step", "worker", 0.25, "one worker's iteration (stall)"
    ),
    "disk_read": SiteSpec(
        "disk_read", "disk", 0.25, "disk-store read (checksum corruption)"
    ),
    "nvme_stall": SiteSpec(
        "nvme_stall", "nvme", 1.0, "NVMe transfer stall (disk-tier I/O)"
    ),
}


def site_names() -> Tuple[str, ...]:
    """Declared wire names, in registration (= enum) order."""
    return tuple(SITES)


def _check_registry_matches_enum() -> None:
    declared = tuple(SITES)
    members = tuple(site.value for site in FaultSite)
    if declared != members:
        raise RuntimeError(
            "fault-site registry drifted from the FaultSite enum: "
            f"registry={declared}, enum={members}"
        )
    for name, spec in SITES.items():
        if spec.name != name:
            raise RuntimeError(
                f"fault-site registry key {name!r} carries spec.name "
                f"{spec.name!r}"
            )


_check_registry_matches_enum()
