"""Conversation workload driver.

Connects a scripted workload to an engine on the event loop:

- each conversation's first turn is submitted at its scripted start time;
- when the engine finishes turn ``i``, turn ``i + 1`` is submitted after
  the scripted user think time — preserving the causal ordering of §6.1
  ("a new user prompt is only sent after the response to the previous
  request has been received").
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.serving.engine import EngineBase
from repro.serving.metrics import ServingStats
from repro.serving.request import Conversation, Request
from repro.sim.events import EventLoop


class ConversationDriver:
    """Feeds conversations to an engine and runs the simulation."""

    def __init__(
        self,
        loop: EventLoop,
        engine: EngineBase,
        conversations: Sequence[Conversation],
    ) -> None:
        self.loop = loop
        self.engine = engine
        self.conversations = list(conversations)
        self._request_ids = itertools.count()
        self._outstanding = 0
        if engine.on_finish is not None:
            raise RuntimeError("engine already has an on_finish callback")
        engine.on_finish = self._handle_finish

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Schedule all first turns and run the event loop to completion.

        Args:
            until: optional simulation horizon (seconds).
            max_events: safety valve passed to the event loop.
        """
        for conversation in self.conversations:
            self.loop.schedule(
                max(conversation.start_time, self.loop.now),
                self._submit_turn,
                conversation,
                0,
            )
            self._outstanding += conversation.num_turns
        self.loop.run(until=until, max_events=max_events)

    @property
    def outstanding(self) -> int:
        """Turns not yet completed (0 when the workload fully drained)."""
        return self._outstanding

    def _submit_turn(self, conversation: Conversation, turn_index: int) -> None:
        request = Request(
            request_id=next(self._request_ids),
            conversation=conversation,
            turn_index=turn_index,
            arrival_time=self.loop.now,
        )
        self.engine.submit(request)

    def _handle_finish(self, request: Request, now: float) -> None:
        self._outstanding -= 1
        if not request.is_last_turn:
            think = request.conversation.think_times[request.turn_index]
            self.loop.schedule(
                now + think,
                self._submit_turn,
                request.conversation,
                request.turn_index + 1,
            )

    def stats(self, warmup: float = 0.0, until: Optional[float] = None) -> ServingStats:
        """Aggregate engine metrics over a measurement window."""
        return self.engine.metrics.stats(warmup=warmup, until=until)
