"""Workload trace files: save and replay conversation scripts.

A *trace* is the full specification of a timed workload — every
conversation's turn sizes, start time and think times — serialised as
JSON.  Traces make cross-system comparisons airtight (every engine replays
byte-identical inputs) and let users capture a generated workload once and
re-use it across machines or repository versions.

Format (version 1)::

    {
      "version": 1,
      "meta": {...free-form...},
      "conversations": [
        {"conv_id": 0, "start_time": 1.5, "think_times": [42.0, 7.7],
         "turns": [[37, 210], [12, 98], [40, 51]]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.serving.request import Conversation, Turn

TRACE_VERSION = 1


def conversations_to_dict(
    conversations: Sequence[Conversation],
    meta: Optional[Dict] = None,
) -> Dict:
    """Serialise a workload to the trace dictionary form."""
    return {
        "version": TRACE_VERSION,
        "meta": dict(meta or {}),
        "conversations": [
            {
                "conv_id": c.conv_id,
                "start_time": c.start_time,
                "think_times": list(c.think_times),
                "turns": [[t.prompt_tokens, t.output_tokens] for t in c.turns],
            }
            for c in conversations
        ],
    }


def conversations_from_dict(data: Dict) -> List[Conversation]:
    """Deserialise a trace dictionary back into conversation scripts.

    Raises:
        ValueError: on version mismatch or malformed records.
    """
    version = data.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {version!r} (expected {TRACE_VERSION})"
        )
    conversations: List[Conversation] = []
    for record in data.get("conversations", []):
        try:
            turns = [
                Turn(prompt_tokens=int(p), output_tokens=int(o))
                for p, o in record["turns"]
            ]
            conversation = Conversation(
                conv_id=int(record["conv_id"]),
                turns=turns,
                start_time=float(record["start_time"]),
                think_times=[float(t) for t in record["think_times"]],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed conversation record: {record!r}") from exc
        conversations.append(conversation)
    return conversations


def save_trace(
    conversations: Sequence[Conversation],
    path: Union[str, Path],
    meta: Optional[Dict] = None,
) -> None:
    """Write a workload trace as JSON."""
    payload = conversations_to_dict(conversations, meta=meta)
    Path(path).write_text(json.dumps(payload, indent=1))


def load_trace(path: Union[str, Path]) -> List[Conversation]:
    """Load a workload trace written by :func:`save_trace`."""
    return conversations_from_dict(json.loads(Path(path).read_text()))
