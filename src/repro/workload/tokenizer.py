"""A minimal deterministic tokenizer for the functional examples.

Whitespace/punctuation word-level tokenisation with an incrementally built
vocabulary.  Good enough to drive the numpy transformer on real text in
the examples; not intended to approximate BPE quality.
"""

from __future__ import annotations

import re
from typing import Dict, List

_TOKEN_RE = re.compile(r"\w+|[^\w\s]")


class SimpleTokenizer:
    """Word-level tokenizer with a growable vocabulary.

    Ids 0..3 are reserved: ``<pad>``, ``<bos>``, ``<eos>``, ``<unk>``.
    When the vocabulary is full, unknown words map to ``<unk>``.
    """

    PAD, BOS, EOS, UNK = 0, 1, 2, 3

    def __init__(self, vocab_size: int = 4096) -> None:
        if vocab_size < 8:
            raise ValueError("vocab_size must be at least 8")
        self.vocab_size = vocab_size
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = ["<pad>", "<bos>", "<eos>", "<unk>"]

    def encode(self, text: str) -> List[int]:
        """Tokenise ``text`` to a list of ids, growing the vocabulary."""
        ids = []
        for word in _TOKEN_RE.findall(text.lower()):
            token_id = self._word_to_id.get(word)
            if token_id is None:
                if len(self._id_to_word) < self.vocab_size:
                    token_id = len(self._id_to_word)
                    self._word_to_id[word] = token_id
                    self._id_to_word.append(word)
                else:
                    token_id = self.UNK
            ids.append(token_id)
        return ids

    def decode(self, ids: List[int]) -> str:
        """Best-effort inverse of :meth:`encode`."""
        words = []
        for token_id in ids:
            if 0 <= token_id < len(self._id_to_word):
                words.append(self._id_to_word[token_id])
            else:
                words.append("<unk>")
        return " ".join(words)

    def __len__(self) -> int:
        return len(self._id_to_word)
