"""Synthetic conversation datasets calibrated to Table 2.

Each :class:`DatasetSpec` describes one dataset's distributions:

- **turn count**: a shifted geometric distribution (real multi-turn data
  is dominated by short conversations with a long tail);
- **request input length** (the user's new prompt per turn) and **request
  output length** (the model's reply per turn): lognormal distributions —
  the standard heavy-tailed fit for utterance lengths — parameterised by
  their *target mean* so the generated corpus matches Table 2:

  ============================  =========  ==========
  statistic                     ShareGPT   UltraChat
  ============================  =========  ==========
  mean # of turns                5.56       3.86
  mean request input length      37.77      51.78
  mean request output length     204.58     257.81
  ============================  =========  ==========

Following §6.1, conversations are truncated so the total context never
exceeds ``max_context`` (16384) tokens — the paper drops the 0.57 % of
ShareGPT conversations above that limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.serving.request import Conversation, Turn
from repro.workload.arrivals import exponential_think_times, poisson_arrivals


@dataclass(frozen=True)
class DatasetSpec:
    """Distribution parameters of one conversation dataset.

    Attributes:
        name: dataset label.
        mean_turns: target mean number of turns per conversation.
        mean_input_len: target mean new-prompt length per request.
        mean_output_len: target mean reply length per request.
        input_sigma / output_sigma: lognormal shape parameters (spread of
            the heavy tail).
        max_context: cap on a conversation's total token count.
    """

    name: str
    mean_turns: float
    mean_input_len: float
    mean_output_len: float
    input_sigma: float = 1.0
    output_sigma: float = 0.9
    max_context: int = 16384

    def __post_init__(self) -> None:
        if self.mean_turns < 1.0:
            raise ValueError("mean_turns must be >= 1")
        if self.mean_input_len <= 0 or self.mean_output_len <= 0:
            raise ValueError("mean lengths must be positive")

    def sample_turns(self, rng: np.random.Generator) -> int:
        """Geometric (support >= 1) with mean ``mean_turns``."""
        if self.mean_turns <= 1.0:
            return 1
        return int(rng.geometric(1.0 / self.mean_turns))

    def _lognormal(self, rng: np.random.Generator, mean: float, sigma: float) -> int:
        """One lognormal sample with the given *arithmetic* mean."""
        mu = math.log(mean) - sigma * sigma / 2.0
        return max(1, int(round(rng.lognormal(mu, sigma))))

    def sample_input_len(self, rng: np.random.Generator) -> int:
        return self._lognormal(rng, self.mean_input_len, self.input_sigma)

    def sample_output_len(self, rng: np.random.Generator) -> int:
        return self._lognormal(rng, self.mean_output_len, self.output_sigma)


SHAREGPT = DatasetSpec(
    name="ShareGPT",
    mean_turns=5.56,
    mean_input_len=37.77,
    mean_output_len=204.58,
)

ULTRACHAT = DatasetSpec(
    name="UltraChat",
    mean_turns=3.86,
    mean_input_len=51.78,
    mean_output_len=257.81,
)


def generate_conversation(
    spec: DatasetSpec, conv_id: int, rng: np.random.Generator
) -> Conversation:
    """Draw one conversation script from the dataset distributions.

    Turns that would push the cumulative context beyond ``max_context``
    are cut off (matching the paper's 16384-token cap).
    """
    num_turns = spec.sample_turns(rng)
    turns: List[Turn] = []
    total = 0
    for _ in range(num_turns):
        prompt = spec.sample_input_len(rng)
        output = spec.sample_output_len(rng)
        if total + prompt + output > spec.max_context:
            break
        turns.append(Turn(prompt_tokens=prompt, output_tokens=output))
        total += prompt + output
    if not turns:
        # The very first turn overflowed: clamp it so every conversation
        # has at least one valid turn.
        prompt = min(spec.sample_input_len(rng), spec.max_context // 2)
        output = min(spec.sample_output_len(rng), spec.max_context - prompt)
        turns.append(Turn(prompt_tokens=prompt, output_tokens=max(1, output)))
    return Conversation(conv_id=conv_id, turns=turns)


def generate_conversations(
    spec: DatasetSpec,
    num_conversations: int,
    request_rate: float,
    think_time_mean: float = 60.0,
    seed: int = 0,
    start_offset: float = 0.0,
) -> List[Conversation]:
    """Generate a timed workload.

    Conversation start times form a Poisson process whose rate is chosen
    so the long-run *request* rate matches ``request_rate`` (requests per
    second): ``conversation_rate = request_rate / mean_turns_generated``.
    Think times between turns are exponential with ``think_time_mean``
    (§6.1), pre-drawn per conversation for reproducibility.

    Args:
        spec: dataset distributions.
        num_conversations: how many conversations to script.
        request_rate: target aggregate request arrival rate (req/s).
        think_time_mean: mean user think time in seconds.
        seed: RNG seed; the same seed yields the same workload for every
            engine under test.
        start_offset: shift applied to all start times.
    """
    if num_conversations <= 0:
        raise ValueError("num_conversations must be positive")
    if request_rate <= 0:
        raise ValueError("request_rate must be positive")
    rng = np.random.default_rng(seed)
    conversations = [
        generate_conversation(spec, conv_id, rng)
        for conv_id in range(num_conversations)
    ]
    realized_mean_turns = float(
        np.mean([c.num_turns for c in conversations])
    )
    conv_rate = request_rate / realized_mean_turns
    starts = poisson_arrivals(rng, rate=conv_rate, count=num_conversations)
    for conversation, start in zip(conversations, starts):
        conversation.start_time = start + start_offset
        conversation.think_times = exponential_think_times(
            rng, mean=think_time_mean, count=conversation.num_turns - 1
        )
    return conversations


def generate_workload(
    spec: DatasetSpec,
    request_rate: float,
    duration: float,
    think_time_mean: float = 60.0,
    seed: int = 0,
) -> List[Conversation]:
    """Generate a *sustained* workload: conversation arrivals cover the
    whole ``[0, duration]`` window.

    Unlike :func:`generate_conversations` (fixed conversation count), the
    number of conversations here is whatever the Poisson process produces
    in ``duration`` seconds at the rate matching ``request_rate`` — the
    right construction for measuring saturation throughput, where arrivals
    must not dry up before the measurement window closes.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if request_rate <= 0:
        raise ValueError("request_rate must be positive")
    rng = np.random.default_rng(seed)
    conv_rate = request_rate / spec.mean_turns
    conversations: List[Conversation] = []
    now = float(rng.exponential(1.0 / conv_rate))
    conv_id = 0
    while now <= duration:
        conversation = generate_conversation(spec, conv_id, rng)
        conversation.start_time = now
        conversation.think_times = exponential_think_times(
            rng, mean=think_time_mean, count=conversation.num_turns - 1
        )
        conversations.append(conversation)
        conv_id += 1
        now += float(rng.exponential(1.0 / conv_rate))
    if not conversations:
        conversation = generate_conversation(spec, 0, rng)
        conversation.start_time = duration / 2.0
        conversation.think_times = exponential_think_times(
            rng, mean=think_time_mean, count=conversation.num_turns - 1
        )
        conversations.append(conversation)
    return conversations


def dataset_statistics(conversations: List[Conversation]) -> Dict[str, float]:
    """Table 2 statistics of a generated corpus."""
    turns = [c.num_turns for c in conversations]
    inputs = [t.prompt_tokens for c in conversations for t in c.turns]
    outputs = [t.output_tokens for c in conversations for t in c.turns]
    return {
        "num_conversations": len(conversations),
        "mean_turns": float(np.mean(turns)),
        "mean_input_len": float(np.mean(inputs)),
        "mean_output_len": float(np.mean(outputs)),
        "total_requests": int(sum(turns)),
        "max_context": max(c.total_tokens() for c in conversations),
    }
