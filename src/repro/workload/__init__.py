"""Workloads: conversation datasets, arrival processes, drivers.

The paper evaluates on ShareGPT (real user-shared ChatGPT conversations)
and UltraChat (large-scale synthetic dialogues).  Neither raw dump is
shippable, so :mod:`repro.workload.dataset` provides statistical generators
calibrated to the paper's Table 2 (turn counts, request input/output
lengths) with heavy-tailed length distributions; fixed seeds make every
experiment reproducible.

Arrival timing follows §6.1: conversation arrivals are Poisson under a
target request rate, turns within a conversation are causally ordered, and
user think time between turns is exponentially distributed (60 s mean by
default, swept in Figure 15).
"""

from repro.workload.dataset import (
    SHAREGPT,
    ULTRACHAT,
    DatasetSpec,
    generate_conversations,
    dataset_statistics,
)
from repro.workload.arrivals import exponential_think_times, poisson_arrivals
from repro.workload.driver import ConversationDriver
from repro.workload.trace import load_trace, save_trace
from repro.workload.tokenizer import SimpleTokenizer

__all__ = [
    "DatasetSpec",
    "SHAREGPT",
    "ULTRACHAT",
    "generate_conversations",
    "dataset_statistics",
    "poisson_arrivals",
    "exponential_think_times",
    "ConversationDriver",
    "save_trace",
    "load_trace",
    "SimpleTokenizer",
]
