"""Arrival processes and think-time sampling (§6.1).

The paper simulates request arrivals with a Poisson process and user think
time — "the time taken for users to generate the next conversation turn" —
with an exponential distribution of varying mean (60 s by default, swept
up to 600 s in Figure 15).
"""

from __future__ import annotations

from typing import List

import numpy as np


def poisson_arrivals(
    rng: np.random.Generator, rate: float, count: int, start: float = 0.0
) -> List[float]:
    """Arrival times of a homogeneous Poisson process.

    Args:
        rng: random generator.
        rate: events per second (must be positive).
        count: number of arrivals to draw.
        start: time of reference (first arrival is after ``start``).

    Returns:
        ``count`` strictly increasing timestamps.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    gaps = rng.exponential(1.0 / rate, size=count)
    return list(start + np.cumsum(gaps))


def exponential_think_times(
    rng: np.random.Generator, mean: float, count: int
) -> List[float]:
    """Per-turn user think times, exponentially distributed."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    if mean == 0:
        return [0.0] * count
    return list(rng.exponential(mean, size=count))
