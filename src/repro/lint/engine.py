"""Lint engine: file loading, rule registry, suppressions, baseline.

The engine parses every ``src/repro/**/*.py`` file once into a
:class:`SourceFile` (AST with parent links, source lines, suppression
comments) and hands the whole :class:`Project` to each registered
:class:`Rule`.  Rules are project-scoped rather than file-scoped because
two of the shipped rules are cross-file set diffs (fault-site registry
vs. use sites, declared metric names vs. recorded names).

Suppression comments
--------------------
A finding is suppressed by a comment on the offending line, or on a
standalone comment line directly above it::

    k = np.ascontiguousarray(k_cache[slots])  # repro: ignore[RPR005] -- straw-man models the copy cost

The justification after ``--`` is mandatory: a bare suppression is
itself reported (code ``RPR000``), as is a suppression that matched no
finding — stale suppressions rot just like stale baselines.

Baseline
--------
Grandfathered findings live in a committed JSON baseline keyed by a
content fingerprint (rule, path, normalized source line, occurrence
index) so entries survive unrelated line-number churn.  Baselined
findings do not fail the run; baseline entries that no longer match
anything are reported as stale (an error under ``--strict``).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "register",
    "run_lint",
]

#: Engine-level findings (bare or stale suppressions) carry this code.
ENGINE_CODE = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<why>\S.*))?"
)

_LOOP_NODES = (
    ast.For,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# Findings & suppressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  #: repo-relative posix path
    line: int  #: 1-based
    col: int  #: 0-based
    message: str
    snippet: str = ""  #: stripped source line (fingerprint input)
    fingerprint: str = ""  #: stable id; filled by the engine

    def located(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Suppression:
    """One ``# repro: ignore[...]`` comment."""

    path: str
    line: int  #: line the suppression covers (comment line or line below)
    codes: Tuple[str, ...]
    justification: str
    used: bool = False


# ---------------------------------------------------------------------------
# Source files & project
# ---------------------------------------------------------------------------


class SourceFile:
    """One parsed python file: AST with parent links + raw lines.

    Attributes:
        path: absolute filesystem path.
        rel: repo-relative posix path (``src/repro/...``).
        subpath: package-relative posix path (``repro/...``) used by
            rules for scope matching.
        lines: raw source lines (1-based access via :meth:`line`).
        tree: parsed module; every node carries a ``_lint_parent``
            attribute (``None`` for the module node).
    """

    def __init__(self, path: str, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.subpath = rel[len("src/"):] if rel.startswith("src/") else rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.tree._lint_parent = None  # type: ignore[attr-defined]
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._lint_parent = parent  # type: ignore[attr-defined]

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    # -- AST helpers shared by rules -----------------------------------

    @staticmethod
    def parent(node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_lint_parent", None)

    @classmethod
    def ancestors(cls, node: ast.AST) -> Iterator[ast.AST]:
        current = cls.parent(node)
        while current is not None:
            yield current
            current = cls.parent(current)

    @classmethod
    def enclosing_function(cls, node: ast.AST) -> Optional[ast.AST]:
        for up in cls.ancestors(node):
            if isinstance(up, _FUNC_NODES):
                return up
        return None

    @classmethod
    def in_loop(cls, node: ast.AST) -> bool:
        """True when ``node`` sits inside a loop (or comprehension) that
        is itself inside the nearest enclosing function."""
        for up in cls.ancestors(node):
            if isinstance(up, _LOOP_NODES):
                return True
            if isinstance(up, _FUNC_NODES):
                return False
        return False

    @classmethod
    def guarded_by_enabled(cls, node: ast.AST) -> bool:
        """True when an ancestor ``if`` tests an ``.enabled`` flag, or
        the enclosing function bails out early on ``not <x>.enabled``."""
        for up in cls.ancestors(node):
            if isinstance(up, ast.If) and _mentions_enabled(up.test):
                return True
        func = cls.enclosing_function(node)
        if func is None:
            return False
        for stmt in func.body:
            if stmt.lineno >= node.lineno:  # type: ignore[attr-defined]
                break
            if (
                isinstance(stmt, ast.If)
                and isinstance(stmt.test, ast.UnaryOp)
                and isinstance(stmt.test.op, ast.Not)
                and _mentions_enabled(stmt.test.operand)
                and stmt.body
                and isinstance(stmt.body[-1], (ast.Return, ast.Continue))
            ):
                return True
        return False


def _mentions_enabled(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id == "enabled":
            return True
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def receiver_parts(call: ast.Call) -> List[str]:
    """Name parts of a call's receiver chain, unwrapping nested calls.

    ``self.metrics.hist.hist("x").record(v)`` (outer call) yields
    ``["self", "metrics", "hist", "hist", "record"]``.
    """
    parts: List[str] = []
    current: ast.AST = call.func
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            break
        else:
            break
    return list(reversed(parts))


def str_const(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class Project:
    """All parsed files plus lookup helpers for cross-file rules."""

    def __init__(self, root: str, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files = list(files)
        self._by_subpath = {f.subpath: f for f in self.files}

    def find(self, subpath: str) -> Optional[SourceFile]:
        """Lookup by package-relative path (``repro/faults/plan.py``)."""
        return self._by_subpath.get(subpath)

    def files_under(self, *prefixes: str) -> Iterator[SourceFile]:
        for file in self.files:
            if any(file.subpath.startswith(p) for p in prefixes):
                yield file


# ---------------------------------------------------------------------------
# Rules & registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class: subclass, set ``code``/``name``/``summary``, implement
    :meth:`run`, and decorate with :func:`register`."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.code,
            path=file.rel,
            line=line,
            col=col,
            message=message,
            snippet=file.line(line).strip(),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (unique code)."""
    if not cls.code or not cls.code.startswith("RPR"):
        raise ValueError(f"rule {cls.__name__} needs an RPRxxx code")
    if cls.code == ENGINE_CODE:
        raise ValueError(f"{ENGINE_CODE} is reserved for the engine")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class Baseline:
    """Committed grandfather list keyed by finding fingerprints."""

    VERSION = 1

    def __init__(self, entries: Optional[List[Dict[str, Any]]] = None) -> None:
        self.entries: List[Dict[str, Any]] = list(entries or [])

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path}"
            )
        return cls(payload.get("entries", []))

    def write(self, path: Union[str, "os.PathLike[str]"]) -> None:
        payload = {"version": self.VERSION, "entries": self.entries}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        entries = [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
                "justification": justification,
            }
            for f in findings
        ]
        return cls(entries)

    def fingerprints(self) -> Dict[str, Dict[str, Any]]:
        return {e["fingerprint"]: e for e in self.entries}


def _fingerprint(finding: Finding, occurrence: int) -> str:
    basis = f"{finding.rule}|{finding.path}|{finding.snippet}|{occurrence}"
    return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings: Sequence[Finding]) -> List[Finding]:
    """Stamp stable fingerprints: (rule, path, snippet, occurrence).

    Using the normalized source line instead of the line number keeps
    baselines valid across unrelated edits above the finding.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                snippet=finding.snippet,
                fingerprint=_fingerprint(finding, occurrence),
            )
        )
    return out


# ---------------------------------------------------------------------------
# Suppression scanning
# ---------------------------------------------------------------------------


def scan_suppressions(file: SourceFile) -> List[Suppression]:
    """Find every suppression comment in ``file``.

    A trailing comment on line N covers findings on line N; a standalone
    comment line covers the next line (standalone suppressions sit above
    long statements).  Only real COMMENT tokens count — the same text
    inside a docstring or string literal (e.g. documentation examples)
    is ignored.
    """
    out: List[Suppression] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(file.source).readline)
        )
    except tokenize.TokenError:
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        codes = tuple(
            c.strip() for c in match.group("codes").split(",") if c.strip()
        )
        why = (match.group("why") or "").strip()
        lineno = tok.start[0]
        covered = lineno
        if file.line(lineno).lstrip().startswith("#"):
            covered = lineno + 1  # standalone comment covers the next line
        out.append(
            Suppression(
                path=file.rel,
                line=covered,
                codes=codes,
                justification=why,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Run
# ---------------------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run, partitioned for reporting.

    ``errors`` fail the run in every mode; ``stale_baseline`` fails only
    under ``--strict``.
    """

    root: str
    errors: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[Dict[str, Any]] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.stale_baseline:
            return 1
        return 0


def load_project(root: Union[str, "os.PathLike[str]"]) -> Project:
    """Parse every python file under ``<root>/src/repro`` (falling back
    to ``<root>`` itself for fixture trees that are already a package)."""
    root = os.path.abspath(os.fspath(root))
    scan = os.path.join(root, "src", "repro")
    if not os.path.isdir(scan):
        scan = root
    files: List[SourceFile] = []
    for dirpath, dirnames, filenames in os.walk(scan):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            files.append(SourceFile(path, rel, source))
    return Project(root, files)


def run_lint(
    root: Union[str, "os.PathLike[str]"],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    project_loader: Callable[..., Project] = load_project,
) -> LintResult:
    """Lint the tree under ``root`` and partition the findings."""
    project = project_loader(root)
    if rules is None:
        rules = all_rules()
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.run(project))
    raw = assign_fingerprints(raw)

    suppressions: List[Suppression] = []
    for file in project.files:
        suppressions.extend(scan_suppressions(file))
    by_site: Dict[Tuple[str, int], List[Suppression]] = {}
    for supp in suppressions:
        by_site.setdefault((supp.path, supp.line), []).append(supp)

    result = LintResult(
        root=project.root,
        files_scanned=len(project.files),
        rules_run=[r.code for r in rules],
    )
    known = baseline.fingerprints() if baseline is not None else {}
    matched_fps: set = set()
    for finding in raw:
        supp = next(
            (
                s
                for s in by_site.get((finding.path, finding.line), [])
                if finding.rule in s.codes
            ),
            None,
        )
        if supp is not None:
            supp.used = True
            result.suppressed.append((finding, supp))
            continue
        if finding.fingerprint in known:
            matched_fps.add(finding.fingerprint)
            result.baselined.append(finding)
            continue
        result.errors.append(finding)

    # Engine findings: bare suppressions (no justification) and stale
    # suppressions (matched nothing) are errors themselves.
    for supp in suppressions:
        report_line = min(supp.line, 10**9)
        if not supp.justification:
            result.errors.append(
                Finding(
                    rule=ENGINE_CODE,
                    path=supp.path,
                    line=report_line,
                    col=0,
                    message=(
                        f"suppression of {','.join(supp.codes)} lacks a "
                        "justification (use `# repro: ignore[CODE] -- why`)"
                    ),
                )
            )
        if not supp.used:
            result.errors.append(
                Finding(
                    rule=ENGINE_CODE,
                    path=supp.path,
                    line=report_line,
                    col=0,
                    message=(
                        f"suppression of {','.join(supp.codes)} matched no "
                        "finding; remove the stale comment"
                    ),
                )
            )
    result.errors = assign_fingerprints(result.errors)

    for fingerprint, entry in known.items():
        if fingerprint not in matched_fps:
            result.stale_baseline.append(entry)
    return result
