"""Reporters for lint results: human text and machine JSON.

The text reporter is what ``repro lint`` prints by default; the JSON
reporter backs ``--json`` and the CI artifact upload (one self-contained
object, stable key order, newline-terminated).
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintResult, all_rules


def format_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines: List[str] = []
    for finding in result.errors:
        lines.append(
            f"{finding.located()}: {finding.rule}: {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose:
        for finding, supp in result.suppressed:
            why = supp.justification or "(no justification)"
            lines.append(
                f"{finding.located()}: {finding.rule}: suppressed -- {why}"
            )
        for finding in result.baselined:
            lines.append(
                f"{finding.located()}: {finding.rule}: baselined "
                f"[{finding.fingerprint}]"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"baseline: stale entry {entry.get('fingerprint')} "
            f"({entry.get('rule')} in {entry.get('path')}) no longer "
            "matches any finding; refresh with `repro lint --write-baseline`"
        )
    lines.append(
        f"repro lint: {len(result.errors)} error(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies) "
        f"[{result.files_scanned} files, {len(result.rules_run)} rules]"
    )
    return "\n".join(lines) + "\n"


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, version-stamped)."""
    payload = {
        "version": 1,
        "summary": {
            "errors": len(result.errors),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
            "files_scanned": result.files_scanned,
            "rules_run": result.rules_run,
        },
        "rules": [
            {"code": rule.code, "name": rule.name, "summary": rule.summary}
            for rule in all_rules()
        ],
        "errors": [f.as_dict() for f in result.errors],
        "suppressed": [
            {
                "finding": f.as_dict(),
                "justification": s.justification,
            }
            for f, s in result.suppressed
        ],
        "baselined": [f.as_dict() for f in result.baselined],
        "stale_baseline": sorted(
            result.stale_baseline, key=lambda e: str(e.get("fingerprint"))
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
