"""The shipped rule set (RPR001–RPR006).

Each rule encodes one repo invariant that used to be enforced only by
convention; see the class docstrings for the precise contract and
``tests/lint/fixtures`` for minimal violating/conforming examples.
Registries are read *statically* (off the AST of ``repro/faults/plan.py``,
``repro/faults/sites.py`` and ``repro/serving/metric_names.py``), so the
linter never imports the code under analysis and fixture trees can ship
their own miniature registries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    receiver_parts,
    register,
    str_const,
)

#: Package subtrees that run on the simulated clock and must stay
#: deterministic; only ``repro/obs`` and ``repro/bench`` (and the
#: experiment/CLI drivers) may read the wall clock.
SIM_PURE_PREFIXES = (
    "repro/sim/",
    "repro/core/",
    "repro/serving/",
    "repro/kvcache/",
    "repro/gpu/",
)

#: Hot-path subtrees where unarmed telemetry must not allocate.
HOT_PATH_PREFIXES = SIM_PURE_PREFIXES + ("repro/kernels/",)


# ---------------------------------------------------------------------------
# RPR001 — sim-clock purity
# ---------------------------------------------------------------------------


@register
class SimClockPurity(Rule):
    """Simulation code must never read the wall clock.

    Seeded runs are bit-reproducible only because every timestamp in the
    ``sim`` / ``core`` / ``serving`` / ``kvcache`` / ``gpu`` trees comes
    from the discrete-event clock.  This rule bans ``import time``, any
    ``from time import <reader>``, and calls/references to the wall-clock
    readers (``time.time``, ``time.perf_counter``, ``time.monotonic``,
    ``datetime.now`` and friends) in those trees.  Wall-clock measurement
    belongs in ``repro/obs`` (e.g. :mod:`repro.obs.walltime`) or
    ``repro/bench``.
    """

    code = "RPR001"
    name = "sim-clock-purity"
    summary = "no wall-clock reads in simulation/serving/kv/gpu code"

    TIME_READERS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )
    DATETIME_READERS = frozenset({"now", "utcnow", "today"})

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under(*SIM_PURE_PREFIXES):
            yield from self._check_file(file)

    def _check_file(self, file: SourceFile) -> Iterator[Finding]:
        for node in file.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        yield self.finding(
                            file,
                            node,
                            "wall-clock module `time` imported in "
                            "sim-pure code; move the measurement to "
                            "repro.obs / repro.bench",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self.TIME_READERS:
                            yield self.finding(
                                file,
                                node,
                                f"wall-clock reader `time.{alias.name}` "
                                "imported in sim-pure code",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                head, _, attr = dotted.rpartition(".")
                if (
                    head.split(".")[-1] == "time"
                    and attr in self.TIME_READERS
                ):
                    yield self.finding(
                        file,
                        node,
                        f"wall-clock read `{dotted}` in sim-pure code; "
                        "timestamps must come from the simulated clock",
                    )
                elif (
                    "datetime" in head.split(".")
                    and attr in self.DATETIME_READERS
                ):
                    yield self.finding(
                        file,
                        node,
                        f"wall-clock read `{dotted}` in sim-pure code",
                    )


# ---------------------------------------------------------------------------
# RPR002 — fault-site coverage
# ---------------------------------------------------------------------------


@register
class FaultSiteCoverage(Rule):
    """Fault-site names must resolve to the declared registry, and raw
    fault draws must stay on the retry ladder.

    Checks, all static:

    - the ``SITES`` registry (``repro/faults/sites.py``) and the
      ``FaultSite`` enum (``repro/faults/plan.py``) agree key-for-key,
      in order (order carries the per-site RNG stream derivation);
    - every ``FaultSite.<NAME>`` access names a declared member;
    - every string fault-site name — ``FaultSite("x")`` calls, ``.fires("x")``
      calls and ``site="x"`` keywords (flight-recorder attribution) — is
      a declared wire name;
    - ``attempt_with_retries(...)`` receives a ``FaultSite.<member>``
      (never a bare string);
    - raw ``plan.fires(...)`` draws appear only in the modules that own
      the recovery ladder (``repro/faults``, the engines/server, the
      cache manager, and the checksum-verifying stores) — transfer
      primitives in ``repro/gpu`` must stay fault-agnostic so every
      modeled I/O failure is reachable through retry → recompute → fail.
    """

    code = "RPR002"
    name = "fault-site-coverage"
    summary = "fault-site names resolve to repro.faults.SITES; draws stay on the ladder"

    #: Modules allowed to draw plan.fires() directly: the ladder owners.
    FIRES_ALLOWED = (
        "repro/faults/",
        "repro/core/engine.py",
        "repro/core/server.py",
        "repro/kvcache/manager.py",
        "repro/kvcache/storage.py",
    )

    def run(self, project: Project) -> Iterator[Finding]:
        members = self._enum_members(project)
        registry = self._registry_sites(project)
        if members is None:
            return  # no FaultSite enum in this tree; nothing to lint
        names = {name for name, _ in members}
        values = [value for _, value in members]

        if registry is not None:
            reg_file, reg_keys = registry
            if reg_keys != values:
                yield self.finding(
                    reg_file,
                    reg_file.tree,
                    "fault-site registry SITES drifted from the FaultSite "
                    f"enum: registry={tuple(reg_keys)}, enum={tuple(values)}",
                )

        for file in project.files_under("repro/"):
            yield from self._check_file(file, names, set(values))

    # -- registry extraction -------------------------------------------

    @staticmethod
    def _enum_members(
        project: Project,
    ) -> Optional[List[Tuple[str, str]]]:
        plan = project.find("repro/faults/plan.py")
        if plan is None:
            return None
        for node in plan.walk():
            if isinstance(node, ast.ClassDef) and node.name == "FaultSite":
                members: List[Tuple[str, str]] = []
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                    ):
                        value = str_const(stmt.value)
                        if value is not None:
                            members.append((stmt.targets[0].id, value))
                return members
        return None

    @staticmethod
    def _registry_sites(
        project: Project,
    ) -> Optional[Tuple[SourceFile, List[str]]]:
        sites = project.find("repro/faults/sites.py")
        if sites is None:
            return None
        for node in sites.walk():
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if any(
                isinstance(t, ast.Name) and t.id == "SITES" for t in targets
            ) and isinstance(value, ast.Dict):
                keys = [str_const(k) for k in value.keys]
                return sites, [k for k in keys if k is not None]
        return None

    # -- per-file checks -----------------------------------------------

    def _check_file(
        self, file: SourceFile, names: Set[str], values: Set[str]
    ) -> Iterator[Finding]:
        allowed_fires = any(
            file.subpath.startswith(p) or file.subpath == p
            for p in self.FIRES_ALLOWED
        )
        for node in file.walk():
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if (
                    dotted is not None
                    and dotted.startswith("FaultSite.")
                    and dotted.count(".") == 1
                ):
                    member = dotted.split(".", 1)[1]
                    if member not in names and member.isupper():
                        yield self.finding(
                            file,
                            node,
                            f"unknown fault site `FaultSite.{member}`; "
                            "declare it in repro.faults (enum + SITES)",
                        )
            if not isinstance(node, ast.Call):
                continue
            func_dotted = dotted_name(node.func) or ""
            attr = func_dotted.rpartition(".")[2]
            # FaultSite("literal") constructions.
            if attr == "FaultSite" and node.args:
                literal = str_const(node.args[0])
                if literal is not None and literal not in values:
                    yield self.finding(
                        file,
                        node,
                        f"fault-site name {literal!r} is not in the "
                        "declared registry (repro.faults.SITES)",
                    )
            # plan.fires("literal") and ladder containment.
            if attr == "fires":
                if node.args:
                    literal = str_const(node.args[0])
                    if literal is not None and literal not in values:
                        yield self.finding(
                            file,
                            node,
                            f"fault-site name {literal!r} passed to "
                            "fires() is not in the declared registry",
                        )
                if not allowed_fires and file.subpath != "repro/faults/sites.py":
                    yield self.finding(
                        file,
                        node,
                        "raw fault draw (.fires) outside the recovery "
                        "ladder; route modeled I/O failures through "
                        "attempt_with_retries or the engine/manager/store "
                        "recovery paths",
                    )
            # attempt_with_retries(plan, site, ...): a literal site must
            # be a FaultSite member, never a bare string (variables are
            # fine — the ladder owners dispatch over sites).
            if attr == "attempt_with_retries":
                site_arg: Optional[ast.expr] = None
                if len(node.args) >= 2:
                    site_arg = node.args[1]
                else:
                    for kw in node.keywords:
                        if kw.arg == "site":
                            site_arg = kw.value
                if site_arg is not None and str_const(site_arg) is not None:
                    yield self.finding(
                        file,
                        node,
                        "attempt_with_retries site must be a FaultSite "
                        f"member, not the string {str_const(site_arg)!r}",
                    )
            # site="literal" keywords (flight/trace attribution).
            for kw in node.keywords:
                if kw.arg == "site":
                    literal = str_const(kw.value)
                    if literal is not None and literal not in values:
                        yield self.finding(
                            file,
                            kw.value,
                            f"fault-site attribution {literal!r} is not "
                            "in the declared registry",
                        )


# ---------------------------------------------------------------------------
# RPR003 — hot-path allocation
# ---------------------------------------------------------------------------


@register
class HotPathAllocation(Rule):
    """Unarmed observability paths must not allocate.

    The null tracer / histogram set / flight recorder make a disabled
    run byte-identical to an uninstrumented build — but only if call
    sites that *compute* payloads (f-strings, dict/list displays,
    ``str()`` conversions) guard on the armed check first::

        if self.tracer.enabled:
            self.tracer.count(f"pcie.{direction}_bytes", n)

    This rule finds telemetry calls (receiver chain mentions ``tracer``
    / ``hist`` / ``flight``) in the kernel/engine/cache/transfer trees
    whose arguments allocate, without an ``.enabled`` guard on an
    enclosing ``if`` (or an early ``if not x.enabled: return``).
    """

    code = "RPR003"
    name = "hot-path-allocation"
    summary = "allocating telemetry args must sit behind an .enabled guard"

    SINKS = frozenset({"tracer", "hist", "hists", "flight"})
    METHODS = frozenset(
        {
            "count",
            "instant",
            "gauge",
            "complete",
            "begin",
            "end",
            "span",
            "record",
            "record_many",
            "hist",
            "capture",
        }
    )
    ALLOC_CALLS = frozenset(
        {"str", "format", "repr", "dict", "list", "tuple", "sorted"}
    )
    ALLOC_METHODS = frozenset({"format", "join"})

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under(*HOT_PATH_PREFIXES):
            for node in file.walk():
                if not isinstance(node, ast.Call):
                    continue
                parts = receiver_parts(node)
                if len(parts) < 2 or parts[-1] not in self.METHODS:
                    continue
                if not any(p in self.SINKS for p in parts[:-1]):
                    continue
                alloc = self._allocating_arg(node)
                if alloc is None:
                    continue
                if SourceFile.guarded_by_enabled(node):
                    continue
                yield self.finding(
                    file,
                    node,
                    f"telemetry call `{'.'.join(parts)}` allocates "
                    f"(`{ast.unparse(alloc)}`) without an `.enabled` "
                    "guard; the unarmed path must do zero work",
                )

    def _allocating_arg(self, call: ast.Call) -> Optional[ast.AST]:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(arg):
                if isinstance(
                    node,
                    (
                        ast.JoinedStr,
                        ast.Dict,
                        ast.List,
                        ast.Set,
                        ast.ListComp,
                        ast.SetComp,
                        ast.DictComp,
                        ast.GeneratorExp,
                    ),
                ):
                    return node
                if (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Mod)
                    and str_const(node.left) is not None
                ):
                    return node
                if isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id in self.ALLOC_CALLS
                    ):
                        return node
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in self.ALLOC_METHODS
                    ):
                        return node
        return None


# ---------------------------------------------------------------------------
# RPR004 — ledger-name sync
# ---------------------------------------------------------------------------


@register
class LedgerNameSync(Rule):
    """Recorded metric names must agree with the declared registry.

    ``repro/serving/metric_names.py`` is the single source of truth for
    histogram names, flight-recorder event names and tier labels; the
    Prometheus exporter and the reconciliation suites import it.  This
    rule statically extracts every name *recorded* in the tree
    (``.hist("name")``, ``flight.record(id, "event", ...)``, lookup
    calls and ``tier=`` labels) and diffs both directions:

    - a recorded name missing from the registry fails (typo, or an
      undeclared metric the exporter/reconciliation would never see);
    - a declared histogram/event name that nothing records fails (dead
      registry entries hide real coverage gaps).
    """

    code = "RPR004"
    name = "ledger-name-sync"
    summary = "metric names recorded == names declared in serving.metric_names"

    REGISTRY = "repro/serving/metric_names.py"
    HIST_LOOKUPS = frozenset({"get", "named", "total_count", "total_sum"})

    def run(self, project: Project) -> Iterator[Finding]:
        registry = project.find(self.REGISTRY)
        if registry is None:
            return
        declared = self._declared_sets(registry)
        hist_names = declared.get("HISTOGRAM_NAMES", (registry.tree, set()))[1]
        wall_names = declared.get(
            "WALL_HISTOGRAM_NAMES", (registry.tree, set())
        )[1]
        tiers = declared.get("HISTOGRAM_TIERS", (registry.tree, set()))[1]
        events = declared.get("FLIGHT_EVENTS", (registry.tree, set()))[1]
        sampled = declared.get("SAMPLED_HISTOGRAMS", (registry.tree, set()))[1]
        all_hist = hist_names | wall_names

        extra = sampled - hist_names
        if extra:
            node = declared["SAMPLED_HISTOGRAMS"][0]
            yield self.finding(
                registry,
                node,
                f"SAMPLED_HISTOGRAMS names {sorted(extra)} are not "
                "declared sim-clock HISTOGRAM_NAMES",
            )

        recorded_hist: Set[str] = set()
        recorded_events: Set[str] = set()
        for file in project.files_under("repro/"):
            if file.subpath.startswith("repro/lint/"):
                continue
            if file.subpath == self.REGISTRY:
                continue
            yield from self._check_file(
                file, all_hist, tiers, events, recorded_hist, recorded_events
            )

        for name in sorted(all_hist - recorded_hist):
            node, _ = (
                declared.get("HISTOGRAM_NAMES")
                if name in hist_names
                else declared.get("WALL_HISTOGRAM_NAMES")
            ) or (registry.tree, set())
            yield self.finding(
                registry,
                node,
                f"declared histogram {name!r} is never recorded anywhere "
                "in src/repro; remove it or record it",
            )
        for name in sorted(events - recorded_events):
            node, _ = declared.get("FLIGHT_EVENTS") or (registry.tree, set())
            yield self.finding(
                registry,
                node,
                f"declared flight event {name!r} is never recorded "
                "anywhere in src/repro; remove it or record it",
            )

    @staticmethod
    def _declared_sets(
        registry: SourceFile,
    ) -> Dict[str, Tuple[ast.AST, Set[str]]]:
        """``NAME -> (node, {literals})`` for frozenset/set declarations."""
        out: Dict[str, Tuple[ast.AST, Set[str]]] = {}
        for node in registry.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("frozenset", "set")
                and value.args
                and isinstance(value.args[0], (ast.Set, ast.List, ast.Tuple))
            ):
                elts = value.args[0].elts
            elif isinstance(value, ast.Set):
                elts = value.elts
            else:
                continue
            literals = {
                s for s in (str_const(e) for e in elts) if s is not None
            }
            out[target.id] = (node, literals)
        return out

    def _check_file(
        self,
        file: SourceFile,
        all_hist: Set[str],
        tiers: Set[str],
        events: Set[str],
        recorded_hist: Set[str],
        recorded_events: Set[str],
    ) -> Iterator[Finding]:
        for node in file.walk():
            if not isinstance(node, ast.Call):
                continue
            parts = receiver_parts(node)
            if len(parts) < 2:
                continue
            method = parts[-1]
            receiver = parts[:-1]
            hist_sink = any(p in ("hist", "hists") for p in receiver) or (
                method == "hist" and "tracer" not in receiver
            )
            flight_sink = "flight" in receiver
            if method == "hist" and hist_sink:
                name = str_const(node.args[0]) if node.args else None
                if name is not None:
                    recorded_hist.add(name)
                    if name not in all_hist:
                        yield self.finding(
                            file,
                            node,
                            f"histogram name {name!r} is not declared in "
                            "repro.serving.metric_names",
                        )
                for kw in node.keywords:
                    if kw.arg == "tier":
                        tier = str_const(kw.value)
                        if tier is not None and tier not in tiers:
                            yield self.finding(
                                file,
                                kw.value,
                                f"tier label {tier!r} is not declared in "
                                "repro.serving.metric_names",
                            )
            elif method in self.HIST_LOOKUPS and "hist" in receiver:
                name = str_const(node.args[0]) if node.args else None
                if name is not None and name not in all_hist:
                    yield self.finding(
                        file,
                        node,
                        f"histogram lookup {name!r} is not declared in "
                        "repro.serving.metric_names",
                    )
            elif method == "record" and flight_sink:
                name = (
                    str_const(node.args[1]) if len(node.args) >= 2 else None
                )
                if name is not None:
                    recorded_events.add(name)
                    if name not in events:
                        yield self.finding(
                            file,
                            node,
                            f"flight event {name!r} is not declared in "
                            "repro.serving.metric_names",
                        )
                for kw in node.keywords:
                    if kw.arg == "tier":
                        tier = str_const(kw.value)
                        if tier is not None and tier not in tiers:
                            yield self.finding(
                                file,
                                kw.value,
                                f"tier label {tier!r} is not declared in "
                                "repro.serving.metric_names",
                            )
            elif method == "event_count" and flight_sink:
                name = str_const(node.args[0]) if node.args else None
                if name is not None and name not in events:
                    yield self.finding(
                        file,
                        node,
                        f"flight event lookup {name!r} is not declared in "
                        "repro.serving.metric_names",
                    )


# ---------------------------------------------------------------------------
# RPR005 — kernel copy smell
# ---------------------------------------------------------------------------


@register
class KernelCopySmell(Rule):
    """No hidden array copies inside kernel loops.

    ``np.concatenate`` / ``np.ascontiguousarray`` / ``.copy()`` inside a
    per-layer (or per-request) loop in ``repro/kernels`` multiplies a
    full-context copy by the loop trip count — exactly the memory
    traffic the paged design exists to avoid.  Hoist the copy out of the
    loop, use a gather-once staging buffer (see ``packed_cache.py``), or
    suppress with a justification when the copy *is* the point (the
    straw-man kernels model it deliberately).
    """

    code = "RPR005"
    name = "kernel-copy-smell"
    summary = "no np.concatenate/.copy()/ascontiguousarray inside kernel loops"

    NP_FUNCS = frozenset({"concatenate", "ascontiguousarray", "copy"})

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under("repro/kernels/"):
            for node in file.walk():
                if not isinstance(node, ast.Call):
                    continue
                smell = self._smell(node)
                if smell is None:
                    continue
                if not SourceFile.in_loop(node):
                    continue
                yield self.finding(
                    file,
                    node,
                    f"`{smell}` inside a kernel loop copies the context "
                    "once per iteration; hoist it or stage the gather "
                    "outside the loop",
                )

    def _smell(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func) or ""
            base = dotted.split(".")[0] if dotted else ""
            if base in ("np", "numpy") and func.attr in self.NP_FUNCS:
                return dotted
            if (
                func.attr == "copy"
                and not call.args
                and not call.keywords
                and base not in ("copy",)
            ):
                return f"{dotted or func.attr}()"
        return None


# ---------------------------------------------------------------------------
# RPR006 — backend kernel routing
# ---------------------------------------------------------------------------


@register
class BackendKernelRouting(Rule):
    """Attention kernels are reached through ``repro.backends``, not
    imported directly.

    A backend (:mod:`repro.backends`) owns its attention kernels *and*
    its slot-allocation layout as one atomically-swappable pair; a
    serving-layer module that imports ``packed_decode_attention`` (or any
    other attention entry point) directly re-hardwires half of that pair
    and silently escapes the cross-backend equivalence matrix the bench
    harness enforces.  This rule flags any import of an attention-kernel
    *function* from ``repro.kernels`` outside the kernel package itself,
    ``repro/backends/`` and ``repro/bench/`` (the harness times kernels
    against their oracles by definition).  Types and pure helpers
    (``AttentionRequest``, ``PackedDecodeCache``, ``resolve_scale``,
    query-span splitting, …) stay importable from anywhere.  Kernel
    experiments that study the kernels themselves suppress with
    ``# repro: ignore[RPR006] -- why``.
    """

    code = "RPR006"
    name = "backend-kernel-routing"
    summary = "attention kernels reached via repro.backends, not direct imports"

    ALLOWED_PREFIXES = (
        "repro/kernels/",
        "repro/backends/",
        "repro/bench/",
    )

    #: The attention entry points a backend owns.  Deliberately *not*
    #: the kernel types/helpers — those carry no kernel choice.
    KERNEL_NAMES = frozenset(
        {
            "reference_attention",
            "multi_token_attention",
            "single_token_attention",
            "batched_single_token_attention",
            "vectorized_multi_token_attention",
            "ragged_multi_token_attention",
            "segment_masked_decode",
            "packed_decode_attention",
            "ring_decode_attention",
            "copyout_attention",
            "multiround_attention",
        }
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.files_under("repro/"):
            if any(file.subpath.startswith(p) for p in self.ALLOWED_PREFIXES):
                continue
            for node in file.walk():
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module != "repro.kernels" and not module.startswith(
                        "repro.kernels."
                    ):
                        continue
                    for alias in node.names:
                        if alias.name in self.KERNEL_NAMES:
                            yield self.finding(
                                file,
                                node,
                                f"attention kernel `{alias.name}` imported "
                                f"from `{module}`; route the call through "
                                "the repro.backends interface so the "
                                "kernel/layout pair stays swappable",
                            )
                elif isinstance(node, ast.Attribute):
                    dotted = dotted_name(node) or ""
                    head, _, attr = dotted.rpartition(".")
                    if (
                        attr in self.KERNEL_NAMES
                        and head.split(".")[-1] == "kernels"
                    ):
                        yield self.finding(
                            file,
                            node,
                            f"direct attention-kernel reference `{dotted}`; "
                            "route the call through the repro.backends "
                            "interface",
                        )
