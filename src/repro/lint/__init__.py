"""``repro lint`` — repo-specific static analysis (``repro.lint``).

The correctness story for stateful KV serving rests on invariants that
no general-purpose linter knows about: simulation code must never read
the wall clock (RPR001), fault-site names must resolve to the declared
registry and raw fault draws must stay on the retry ladder (RPR002),
unarmed observability paths must not allocate (RPR003), metric names
must agree across recorder/exporter/reconciliation layers (RPR004), and
per-layer kernel loops must not hide array copies (RPR005).

This package makes those conventions machine-checked: a rule-driven AST
analysis framework (one parse per file, shared by every rule) with
``# repro: ignore[RULE] -- why`` suppression comments, a committed
baseline for grandfathered findings, and text/JSON reporters — exposed
as the ``repro lint`` CLI subcommand and gated in CI via
``repro lint --strict``.  See ``ARCHITECTURE.md`` §14 for the rule set
and the how-to-add-a-rule recipe.
"""

from repro.lint.engine import (
    Baseline,
    Finding,
    LintResult,
    Project,
    Rule,
    SourceFile,
    all_rules,
    register,
    run_lint,
)
from repro.lint.report import format_json, format_text
from repro.lint import rules as _rules  # noqa: F401  (registers the rule set)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "format_json",
    "format_text",
    "register",
    "run_lint",
]
