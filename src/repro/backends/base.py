"""The backend interface: one object owning kernels *and* layout.

A backend bundles the two decisions the functional serving stack used to
make implicitly and separately:

- **which attention kernels run** — the decode packing cache class and
  the packed-decode entry point, plus the shared prefill/mixed kernels;
- **where KV slots come from** — the slot allocator whose tables map
  logical token positions to flat storage slots.

:class:`~repro.model.transformer.PagedTransformer` and
:class:`~repro.core.server.StatefulChatServer` reach every attention
kernel *through* their backend (enforced by lint rule RPR006), so
swapping ``--backend`` swaps the whole kernel/layout pair atomically and
the cross-backend equivalence matrix in the bench harness stays the
single source of numerical truth.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

import numpy as np

from repro.kernels import (
    AttentionRequest,
    batched_single_token_attention,
    multi_token_attention,
    ragged_multi_token_attention,
)
from repro.kernels.packed_cache import PackedBatch, PackedDecodeCache
from repro.kvcache.pages import BlockTable, PagePool

__all__ = ["Backend", "PagedAllocator", "SlotAllocator"]


class SlotAllocator(Protocol):
    """What a backend's allocator must provide to the serving layer."""

    @property
    def storage_slots(self) -> int:
        """Flat KV-storage slots the allocator's tables may address."""
        ...

    def new_table(self) -> BlockTable:
        """A fresh (possibly layout-specialised) block table."""
        ...

    def stats(self) -> Dict[str, int]:
        """Allocator counters for experiment metadata."""
        ...


class PagedAllocator:
    """The default allocator: plain pool-backed block tables."""

    def __init__(self, pool: PagePool) -> None:
        self.pool = pool

    @property
    def storage_slots(self) -> int:
        return self.pool.capacity_tokens

    def new_table(self) -> BlockTable:
        return BlockTable(self.pool)

    def stats(self) -> Dict[str, int]:
        return {
            "allocated_pages": self.pool.num_allocated_pages,
            "free_pages": self.pool.num_free_pages,
        }


class Backend:
    """Base class for registered backends.

    Subclasses override the decode-cache/attention/allocator trio; the
    shared prefill and mixed-batch kernels are identical across today's
    backends and are exposed here so callers never import
    ``repro.kernels`` attention functions directly.
    """

    #: Registry key (the ``--backend`` value).
    name: str = ""
    #: One-line description for ``--help`` and docs.
    summary: str = ""

    # -- the varying trio ---------------------------------------------- #

    def create_decode_cache(self) -> PackedDecodeCache:
        """The incremental decode packing cache this backend stages
        gathered KV in."""
        raise NotImplementedError

    def decode_attention(
        self,
        queries: np.ndarray,
        batch: PackedBatch,
        layer_key: object,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> np.ndarray:
        """Single-token decode attention over this backend's packed
        batch (``[n, num_heads, head_dim]`` in and out)."""
        raise NotImplementedError

    def create_allocator(
        self, pool: PagePool, reserve_tokens: int, max_tables: int
    ) -> SlotAllocator:
        """The slot allocator backing this backend's block tables.

        Args:
            pool: the shared page pool (always the capacity budget).
            reserve_tokens: per-table contiguous reservation, for
                backends that reserve virtual extents; page-layout
                backends ignore it.
            max_tables: upper bound on concurrently live tables.
        """
        raise NotImplementedError

    # -- shared kernel entry points ------------------------------------ #

    def multi_token_attention(
        self,
        requests: Sequence[AttentionRequest],
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> List[np.ndarray]:
        """Prefill / recompute attention (per-request, multi-token)."""
        return multi_token_attention(requests, k_cache, v_cache, scale)

    def batched_decode_attention(
        self,
        requests: Sequence[AttentionRequest],
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> List[np.ndarray]:
        """Fused single-token decode for a whole batch (no packing
        cache involved — the cold path)."""
        return batched_single_token_attention(requests, k_cache, v_cache, scale)

    def ragged_attention(
        self,
        requests: Sequence[AttentionRequest],
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> List[np.ndarray]:
        """Fused mixed prefill+decode attention for a ragged batch."""
        return ragged_multi_token_attention(requests, k_cache, v_cache, scale)

    def __repr__(self) -> str:
        return f"<Backend {self.name!r}: {self.summary}>"
