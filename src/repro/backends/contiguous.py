"""The ``contiguous`` backend: vAttention-style virtual extents."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.kernels.packed_cache import (
    PackedBatch,
    PackedDecodeCache,
    packed_decode_attention,
)
from repro.kvcache.contiguous import ContiguousArena
from repro.kvcache.pages import PagePool

__all__ = ["ContiguousBackend"]


class ContiguousBackend(Backend):
    """Per-conversation contiguous virtual extents with page-granular
    commits (see :mod:`repro.kvcache.contiguous`).

    Kernels are shared with ``paged`` — slot indices just happen to be
    contiguous runs — so the backend's value is its allocator
    accounting: commit/decommit counters, commit-waste and
    reserved-uncommitted fragmentation quantify the tradeoff against the
    paged layout."""

    name = "contiguous"
    summary = "vAttention-style contiguous extents, page-granular commits"

    def create_decode_cache(self) -> PackedDecodeCache:
        return PackedDecodeCache()

    def decode_attention(
        self,
        queries: np.ndarray,
        batch: PackedBatch,
        layer_key: object,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> np.ndarray:
        return packed_decode_attention(
            queries, batch, layer_key, k_cache, v_cache, scale
        )

    def create_allocator(
        self, pool: PagePool, reserve_tokens: int, max_tables: int
    ) -> ContiguousArena:
        return ContiguousArena(
            pool, reserve_tokens=reserve_tokens, max_extents=max_tables
        )
