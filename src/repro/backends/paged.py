"""The ``paged`` backend: today's behavior, bit-identical, the default."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, PagedAllocator
from repro.kernels.packed_cache import (
    PackedBatch,
    PackedDecodeCache,
    packed_decode_attention,
)
from repro.kvcache.pages import PagePool

__all__ = ["PagedBackend"]


class PagedBackend(Backend):
    """Paged block tables + the natural-layout packed decode cache.

    This is the repo's historical fast path exactly as it was before
    backends existed: any change here shows up as a cross-backend
    equivalence failure *and* as a diff against the per-request oracle.
    """

    name = "paged"
    summary = "paged block tables, natural-layout packed staging (default)"

    def create_decode_cache(self) -> PackedDecodeCache:
        return PackedDecodeCache()

    def decode_attention(
        self,
        queries: np.ndarray,
        batch: PackedBatch,
        layer_key: object,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> np.ndarray:
        return packed_decode_attention(
            queries, batch, layer_key, k_cache, v_cache, scale
        )

    def create_allocator(
        self, pool: PagePool, reserve_tokens: int, max_tables: int
    ) -> PagedAllocator:
        return PagedAllocator(pool)
