"""The ``paged-ring`` backend: paged tables, ring-compacted staging."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, PagedAllocator
from repro.kernels.packed_cache import PackedBatch
from repro.kernels.ring_cache import RingDecodeCache, ring_decode_attention
from repro.kvcache.pages import PagePool

__all__ = ["PagedRingBackend"]


class PagedRingBackend(Backend):
    """Same block tables as ``paged``; the decode cache stages K/V in
    the score-ready ring layout so ``segment_masked_decode``'s matmuls
    consume contiguous BLAS operands (see
    :mod:`repro.kernels.ring_cache`).  Prefill and mixed batches are
    untouched — only the packed decode path changes."""

    name = "paged-ring"
    summary = "paged block tables, ring-compacted contiguous staging"

    def create_decode_cache(self) -> RingDecodeCache:
        return RingDecodeCache()

    def decode_attention(
        self,
        queries: np.ndarray,
        batch: PackedBatch,
        layer_key: object,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        scale: float = 0.0,
    ) -> np.ndarray:
        return ring_decode_attention(
            queries, batch, layer_key, k_cache, v_cache, scale
        )

    def create_allocator(
        self, pool: PagePool, reserve_tokens: int, max_tables: int
    ) -> PagedAllocator:
        return PagedAllocator(pool)
