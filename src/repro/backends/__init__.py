"""Registry of named kernel/allocator backends (``--backend``).

Three backends ship (see ARCHITECTURE.md §15):

- ``paged`` — the historical behavior, bit-identical, the default;
- ``paged-ring`` — same block tables, ring-compacted contiguous packed
  staging (:mod:`repro.kernels.ring_cache`);
- ``contiguous`` — vAttention-style contiguous virtual extents with
  page-granular commits (:mod:`repro.kvcache.contiguous`).

Selection precedence: an explicit name (CLI flag / constructor arg)
beats the ``REPRO_BACKEND`` environment variable, which beats the
``paged`` default.  CI runs the tier-1 matrix once with
``REPRO_BACKEND=paged-ring`` so the alternate layout is continuously
exercised.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple, Type

from repro.backends.base import Backend, PagedAllocator, SlotAllocator
from repro.backends.contiguous import ContiguousBackend
from repro.backends.paged import PagedBackend
from repro.backends.ring import PagedRingBackend

__all__ = [
    "Backend",
    "ContiguousBackend",
    "DEFAULT_BACKEND",
    "PagedAllocator",
    "PagedBackend",
    "PagedRingBackend",
    "SlotAllocator",
    "backend_names",
    "get_backend",
    "register",
    "resolve_backend",
]

#: Name used when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "paged"

_REGISTRY: Dict[str, Backend] = {}


def register(backend_cls: Type[Backend]) -> Type[Backend]:
    """Register a backend class under its ``name`` (import-time hook).

    Backends are stateless — per-run state (decode caches, allocators)
    is created through factory methods — so one shared instance per name
    is sufficient.
    """
    if not backend_cls.name:
        raise ValueError(f"{backend_cls.__name__} has no backend name")
    if backend_cls.name in _REGISTRY:
        raise ValueError(f"backend {backend_cls.name!r} already registered")
    _REGISTRY[backend_cls.name] = backend_cls()
    return backend_cls


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> Backend:
    """The registered backend called ``name``.

    Raises:
        ValueError: for an unknown name (listing the legal ones).
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        )
    return backend


def resolve_backend(name: "str | None" = None) -> str:
    """Resolve the effective backend name: explicit ``name`` >
    ``REPRO_BACKEND`` env var > :data:`DEFAULT_BACKEND`.  Validates the
    result against the registry."""
    resolved = name or os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND
    get_backend(resolved)
    return resolved


register(PagedBackend)
register(PagedRingBackend)
register(ContiguousBackend)
