"""Offline attention-cost profiling for the eviction policy.

The retention value of a cached chunk is ``V = Cost(s, l) / T`` (§4.3.1),
where ``Cost(s, l) = Cost_attention(s, l) + Cost_other(s)``.  Because
eviction decisions are made for fixed-size chunks, the paper simplifies
this to ``Cost(l) = Cost_attention(l) + c``, measures ``Cost_attention`` at
power-of-two context sizes offline, and linearly interpolates at runtime.

:class:`OfflineProfiler` reproduces that procedure against any *measure
function* — in this repository either the analytical cost model (for the
performance layer) or wall-clock timing of the numpy kernels (used by the
profiler's own tests, proving the interpolation machinery is measurement-
agnostic).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.gpu.costmodel import CostModel

#: Default chunk size the paper found to work well (§4.3.1).
DEFAULT_CHUNK_SIZE = 32


@dataclass(frozen=True)
class AttentionCostProfile:
    """Piecewise-linear attention-cost table for a fixed chunk size.

    Attributes:
        chunk_size: number of tokens per chunk.
        context_sizes: sorted profiled context sizes (powers of two).
        costs: measured attention cost at each profiled context size.
        constant_cost: the constant ``c`` capturing non-attention cost for
            one chunk.
    """

    chunk_size: int
    context_sizes: Tuple[int, ...]
    costs: Tuple[float, ...]
    constant_cost: float

    def __post_init__(self) -> None:
        if len(self.context_sizes) != len(self.costs):
            raise ValueError("context_sizes and costs must have equal length")
        if len(self.context_sizes) < 2:
            raise ValueError("need at least two profiled points to interpolate")
        if list(self.context_sizes) != sorted(self.context_sizes):
            raise ValueError("context_sizes must be sorted ascending")

    def attention_cost(self, context_len: int) -> float:
        """Interpolated attention cost for a chunk attending ``context_len``.

        Linear interpolation between the two nearest profiled sizes; linear
        extrapolation from the last segment beyond the profiled range (the
        true cost is asymptotically linear in context size, Figure 4).
        """
        if context_len < 0:
            raise ValueError(f"context_len must be non-negative, got {context_len}")
        sizes, costs = self.context_sizes, self.costs
        if context_len <= sizes[0]:
            # Interpolate toward (0, 0): attention over an empty context is free.
            return costs[0] * context_len / sizes[0]
        if context_len >= sizes[-1]:
            slope = (costs[-1] - costs[-2]) / (sizes[-1] - sizes[-2])
            return costs[-1] + slope * (context_len - sizes[-1])
        hi = bisect.bisect_left(sizes, context_len)
        lo = hi - 1
        frac = (context_len - sizes[lo]) / (sizes[hi] - sizes[lo])
        return costs[lo] + frac * (costs[hi] - costs[lo])

    def recompute_cost(self, context_len: int) -> float:
        """Full recomputation cost of one chunk: attention + constant."""
        return self.attention_cost(context_len) + self.constant_cost


class OfflineProfiler:
    """Builds :class:`AttentionCostProfile` tables by offline measurement.

    Args:
        measure_attention: callable ``(chunk_size, context_len) -> seconds``.
        measure_constant: callable ``(chunk_size) -> seconds`` for the
            non-attention cost of one chunk.
    """

    def __init__(
        self,
        measure_attention: Callable[[int, int], float],
        measure_constant: Callable[[int], float],
    ) -> None:
        self._measure_attention = measure_attention
        self._measure_constant = measure_constant

    @classmethod
    def from_cost_model(cls, cost_model: CostModel) -> "OfflineProfiler":
        """Profiler backed by the analytical roofline model."""
        return cls(
            measure_attention=cost_model.attention_chunk_time,
            measure_constant=cost_model.non_attention_chunk_time,
        )

    def profile(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_context: int = 16384,
        context_sizes: Sequence[int] = (),
    ) -> AttentionCostProfile:
        """Measure at power-of-two context sizes up to ``max_context``.

        Args:
            chunk_size: tokens per chunk.
            max_context: largest context size to profile.
            context_sizes: explicit sizes overriding the power-of-two sweep.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        sizes: List[int] = list(context_sizes)
        if not sizes:
            size = chunk_size
            while size <= max_context:
                sizes.append(size)
                size *= 2
        if len(sizes) < 2:
            raise ValueError(
                f"max_context={max_context} yields fewer than two profile points"
            )
        costs = tuple(self._measure_attention(chunk_size, s) for s in sizes)
        constant = self._measure_constant(chunk_size)
        return AttentionCostProfile(
            chunk_size=chunk_size,
            context_sizes=tuple(sizes),
            costs=costs,
            constant_cost=constant,
        )
