"""Host-link (PCIe) transfer engine.

Models the GPU<->CPU copies Pensieve uses for KV-token swapping.  Two
behaviours from the paper are captured:

- **Full-duplex contention** (§5): overlapping host-to-device and
  device-to-host transfers degrade both directions by 18-20 %.  The engine
  applies the :attr:`~repro.gpu.device.GpuSpec.pcie_duplex_penalty` factor
  to any transfer enqueued while the opposite direction is busy.
- **Retrieval-over-eviction prioritization** (§5): with the optimisation
  enabled, device-to-host copies (swap-out / eviction) wait until all
  pending host-to-device copies (swap-in / retrieval) have drained, since
  swap-out is ahead-of-time and not urgent.

The engine is a pure timing model: callers pass the current simulated time
and receive a completion time; actual bytes never move.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.obs.tracer import NULL_TRACER


class Direction(enum.Enum):
    """Transfer direction over the host link."""

    H2D = "h2d"  #: host (CPU cache) to device (GPU cache): swap-in.
    D2H = "d2h"  #: device to host: swap-out / eviction.

    @property
    def opposite(self) -> "Direction":
        return Direction.D2H if self is Direction.H2D else Direction.H2D


@dataclass(frozen=True)
class TransferRecord:
    """Outcome of one enqueued transfer.

    ``num_chunks`` records how many KV chunks the transfer coalesced:
    the two-tier manager moves multi-chunk batches as ONE DMA operation
    (one record, one queueing decision, one latency term) rather than
    one per chunk.
    """

    direction: Direction
    num_bytes: float
    enqueue_time: float
    start_time: float
    end_time: float
    num_chunks: int = 1

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.enqueue_time


class PcieEngine:
    """Serialises transfers per direction and models duplex contention.

    Each direction behaves like a FIFO DMA queue: a new transfer starts at
    ``max(now, busy_until[direction])``.  If, at its start time, the
    opposite queue is still draining, the transfer's bandwidth is reduced by
    the duplex penalty (a deliberate simplification: the penalty is applied
    for the whole transfer rather than only the overlapping fraction, which
    is conservative for Pensieve since it *discourages* overlap exactly as
    the paper's measurement did).
    """

    def __init__(
        self,
        bandwidth: float,
        duplex_penalty: float = 0.81,
        prioritize_retrieval: bool = True,
        min_latency: float = 10e-6,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if not 0.0 < duplex_penalty <= 1.0:
            raise ValueError(f"duplex_penalty must be in (0, 1], got {duplex_penalty}")
        self.bandwidth = bandwidth
        self.duplex_penalty = duplex_penalty
        self.prioritize_retrieval = prioritize_retrieval
        self.min_latency = min_latency
        self._busy_until = {Direction.H2D: 0.0, Direction.D2H: 0.0}
        self._history: List[TransferRecord] = []
        self.bytes_moved = {Direction.H2D: 0.0, Direction.D2H: 0.0}
        #: Observability sink (``repro.obs``); every transfer becomes a
        #: ``pcie.h2d`` / ``pcie.d2h`` span and a byte counter that
        #: reconciles exactly with :attr:`bytes_moved`.
        self.tracer = NULL_TRACER

    def busy_until(self, direction: Direction) -> float:
        """Time at which the given direction's queue drains."""
        return self._busy_until[direction]

    def transfer(
        self,
        now: float,
        num_bytes: float,
        direction: Direction,
        num_chunks: int = 1,
    ) -> TransferRecord:
        """Enqueue a transfer of ``num_bytes`` at simulated time ``now``.

        ``num_chunks`` is the number of KV chunks the transfer coalesces
        (pure accounting; the timing model charges one ``min_latency``
        regardless — that *is* the coalescing win).

        Returns the resulting :class:`TransferRecord`; the engine's internal
        busy-until state advances to the transfer's end time.
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        start = max(now, self._busy_until[direction])
        if (
            self.prioritize_retrieval
            and direction is Direction.D2H
            and self._busy_until[Direction.H2D] > start
        ):
            # Eviction defers to in-flight retrieval (§5 optimisation).
            start = self._busy_until[Direction.H2D]
        bandwidth = self.bandwidth
        if self._busy_until[direction.opposite] > start:
            bandwidth *= self.duplex_penalty
        duration = self.min_latency + num_bytes / bandwidth if num_bytes > 0 else 0.0
        end = start + duration
        self._busy_until[direction] = max(self._busy_until[direction], end)
        record = TransferRecord(
            direction=direction,
            num_bytes=num_bytes,
            enqueue_time=now,
            start_time=start,
            end_time=end,
            num_chunks=num_chunks,
        )
        self._history.append(record)
        self.bytes_moved[direction] += num_bytes
        if self.tracer.enabled:
            name = f"pcie.{direction.value}"
            self.tracer.complete(
                name,
                start,
                end,
                track="pcie",
                bytes=num_bytes,
                queue_delay=start - now,
                chunks=num_chunks,
            )
            self.tracer.count(f"{name}_bytes", num_bytes)
            self.tracer.count(f"{name}_transfers")
            self.tracer.count(f"{name}_chunks", num_chunks)
        return record

    def swap_in(
        self, now: float, num_bytes: float, num_chunks: int = 1
    ) -> TransferRecord:
        """CPU-to-GPU transfer (KV-token retrieval)."""
        return self.transfer(now, num_bytes, Direction.H2D, num_chunks)

    def swap_out(
        self, now: float, num_bytes: float, num_chunks: int = 1
    ) -> TransferRecord:
        """GPU-to-CPU transfer (ahead-of-time eviction)."""
        return self.transfer(now, num_bytes, Direction.D2H, num_chunks)

    def idle_at(self, now: float) -> bool:
        """True when both directions have drained by ``now``."""
        return all(t <= now for t in self._busy_until.values())

    @property
    def history(self) -> List[TransferRecord]:
        """All transfers performed so far, in enqueue order."""
        return list(self._history)

    def last(self) -> Optional[TransferRecord]:
        """Most recently enqueued transfer, if any."""
        return self._history[-1] if self._history else None
