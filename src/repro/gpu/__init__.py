"""Simulated GPU substrate.

This subpackage substitutes for the A100 hardware of the paper's testbed:

- :mod:`repro.gpu.device` — device specifications (peak FLOPs, HBM
  bandwidth, memory capacity, interconnects) with an A100-80GB preset;
- :mod:`repro.gpu.costmodel` — an analytical roofline model that converts
  batch shapes into kernel execution times, including the Figure 12 kernel
  variants (ideal contiguous, Pensieve multi-token paged, CopyOut straw-man,
  multi-round PagedAttention straw-man);
- :mod:`repro.gpu.pcie` — a host link transfer engine with the full-duplex
  contention the paper measured (§5) and the retrieval-over-eviction
  prioritization optimisation;
- :mod:`repro.gpu.nvme` — the disk-tier transfer engine: asymmetric
  read/write bandwidth, mixed-queue contention, reads-over-writes
  prioritization, and per-I/O command latency;
- :mod:`repro.gpu.profiler` — the offline power-of-two profiling +
  interpolation used by the retention-value eviction policy (§4.3.1).
"""

from repro.gpu.device import A100_80GB, GpuSpec
from repro.gpu.costmodel import BatchShape, CostModel, KernelVariant
from repro.gpu.nvme import NvmeDirection, NvmeEngine, NvmeTransferRecord
from repro.gpu.pcie import Direction, PcieEngine, TransferRecord
from repro.gpu.profiler import AttentionCostProfile, OfflineProfiler

__all__ = [
    "GpuSpec",
    "A100_80GB",
    "CostModel",
    "BatchShape",
    "KernelVariant",
    "PcieEngine",
    "Direction",
    "TransferRecord",
    "NvmeEngine",
    "NvmeDirection",
    "NvmeTransferRecord",
    "OfflineProfiler",
    "AttentionCostProfile",
]
