"""Analytical roofline cost model for transformer inference.

This module converts *batch shapes* — how many query tokens each request
contributes and how long each request's context is — into kernel execution
times on a :class:`~repro.gpu.device.GpuSpec`.  It replaces wall-clock
measurement on the paper's A100 testbed.

The model is a classic roofline: every operator is characterised by its FLOP
count and its device-memory traffic, and its execution time is the maximum
of the compute time and the memory time, plus a fixed launch overhead.  The
FLOP/byte counts are exact analytical functions of the
:class:`~repro.model.config.ModelConfig` hyper-parameters, so the model
reproduces the structural effects every Pensieve result rests on:

- prefill is compute-bound and grows linearly with history length
  (Figure 3), while generation is memory-bound;
- attention cost for a fixed-size chunk grows linearly with context size
  (Figure 4), which motivates evicting leading tokens first;
- GQA models (Llama 2) have 4-8x smaller KV-token footprints, so caching
  helps them more (§6.2);
- larger models grow compute faster than KV size, amplifying Pensieve's
  advantage at 4 GPUs (§6.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.gpu.device import GpuSpec
from repro.model.config import ModelConfig


class KernelVariant(enum.Enum):
    """Attention kernel implementations compared in Figure 12."""

    #: Hypothetical best case: past KV-tokens in contiguous memory, fused
    #: multi-token attention kernel.
    IDEAL_CONTIGUOUS = "ideal"
    #: Pensieve's multi-token attention over non-contiguous pages.  Matches
    #: the ideal kernel; slightly faster because auxiliary index arithmetic
    #: (cumulative sequence lengths) is offloaded to the CPU and shared
    #: across layers (§6.4).
    PENSIEVE_PAGED = "pensieve"
    #: Straw-man 1: copy scattered KV-tokens into a freshly allocated
    #: contiguous buffer, then run the fused kernel.
    COPYOUT = "copyout"
    #: Straw-man 2: run vLLM's single-token PagedAttention once per query
    #: token, giving up query-dimension parallelism.
    MULTIROUND_PAGED = "multiround"


@dataclass(frozen=True)
class BatchShape:
    """Shape of one batched model iteration.

    Each element of ``items`` is ``(query_len, context_len)`` for one
    request: ``query_len`` is the number of new tokens being processed this
    step (1 for a request in its generation phase, the prompt length for a
    request in its prefill phase) and ``context_len`` is the total context
    the *last* of those tokens attends to, i.e. cached history plus
    ``query_len``.
    """

    items: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for query_len, context_len in self.items:
            if query_len < 0 or context_len < 0:
                raise ValueError(f"negative batch item ({query_len}, {context_len})")
            if query_len > context_len:
                raise ValueError(
                    f"query_len {query_len} exceeds context_len {context_len}"
                )

    @classmethod
    def of(cls, items: Iterable[Sequence[int]]) -> "BatchShape":
        """Build a shape from any iterable of ``(query_len, context_len)``."""
        return cls(tuple((int(q), int(c)) for q, c in items))

    @classmethod
    def uniform(cls, batch_size: int, query_len: int, context_len: int) -> "BatchShape":
        """A batch of ``batch_size`` identical requests."""
        return cls(((query_len, context_len),) * batch_size)

    @property
    def total_query_tokens(self) -> int:
        """Total number of input tokens processed this iteration."""
        return sum(q for q, _ in self.items)

    @property
    def total_context_tokens(self) -> int:
        """Total number of KV-tokens attended to across the batch."""
        return sum(c for _, c in self.items)

    def __len__(self) -> int:
        return len(self.items)


def causal_attention_flop_tokens(query_len: int, context_len: int) -> float:
    """Sum over the query chunk of per-token attended context lengths.

    With causal masking, query token ``i`` (0-based, the chunk occupying the
    last ``query_len`` positions of a ``context_len``-token context) attends
    to ``context_len - query_len + i + 1`` tokens.  The closed-form sum is
    used by both the cost model and the eviction-policy profiler.
    """
    if query_len == 0:
        return 0.0
    q, c = float(query_len), float(context_len)
    return q * c - q * q + q * (q + 1.0) / 2.0


class CostModel:
    """Roofline execution-time model for one model on one GPU type.

    Args:
        config: model hyper-parameters.
        spec: hardware description.
        fusion_factor: multiplier (< 1 is faster) applied to non-attention
            compute time and per-step overhead.  Models TensorRT-LLM's
            offline graph rewriting / operator fusion advantage over
            PyTorch execution (§6.2: "TensorRT-LLM outperforms vLLM
            consistently" for exactly this reason).
    """

    def __init__(
        self,
        config: ModelConfig,
        spec: GpuSpec,
        fusion_factor: float = 1.0,
    ) -> None:
        if fusion_factor <= 0.0:
            raise ValueError(f"fusion_factor must be positive, got {fusion_factor}")
        self.config = config
        self.spec = spec
        self.fusion_factor = fusion_factor

    # ------------------------------------------------------------------
    # Non-attention (linear) operators
    # ------------------------------------------------------------------

    def linear_time(self, num_tokens: int) -> float:
        """Execution time of all non-attention operators for one iteration.

        Compute: ``num_tokens`` tokens through every linear layer, divided
        across tensor-parallel GPUs.  Memory: the full (per-GPU) weight
        matrix is streamed once per iteration — this is what makes small
        decode batches memory-bound and large prefill batches compute-bound.
        """
        if num_tokens <= 0:
            return 0.0
        tp = self.config.num_gpus
        flops = num_tokens * self.config.linear_flops_per_token() / tp
        weight_bytes = self.config.weight_bytes / tp
        activation_bytes = (
            3.0 * num_tokens * self.config.hidden_size * self.config.dtype_bytes
            * self.config.num_layers
        )
        compute = flops / self.spec.effective_flops
        memory = (weight_bytes + activation_bytes) / self.spec.effective_hbm_bandwidth
        return max(compute, memory) * self.fusion_factor + self._allreduce_time(num_tokens)

    def _allreduce_time(self, num_tokens: int) -> float:
        """Tensor-parallel all-reduce time for one iteration (all layers).

        Two all-reduces per layer (after the attention output projection and
        after the MLP), ring-style: each GPU moves ``2 (N-1)/N`` of the
        activation volume over NVLink, plus a fixed latency per collective.
        """
        tp = self.config.num_gpus
        if tp <= 1:
            return 0.0
        volume = num_tokens * self.config.hidden_size * self.config.dtype_bytes
        per_collective = (
            2.0 * (tp - 1) / tp * volume / self.spec.nvlink_bandwidth + 20e-6
        )
        return 2.0 * self.config.num_layers * per_collective

    # ------------------------------------------------------------------
    # Attention operator
    # ------------------------------------------------------------------

    def attention_time(
        self,
        batch: BatchShape,
        variant: KernelVariant = KernelVariant.PENSIEVE_PAGED,
    ) -> float:
        """Execution time of the attention operator for one iteration.

        The base (ideal) time is a roofline over the causal-masked
        score/aggregate FLOPs and the KV-cache bytes read; the Figure 12
        variants add their respective overheads on top.
        """
        base = self._ideal_attention_time(batch)
        if variant is KernelVariant.IDEAL_CONTIGUOUS:
            return base
        if variant is KernelVariant.PENSIEVE_PAGED:
            # Auxiliary index computation (cumulative sequence lengths) is
            # done once on the CPU and shared by all layers, shaving the
            # small per-layer setup cost the ideal kernel pays (§6.4).
            return base * 0.97
        if variant is KernelVariant.COPYOUT:
            return base + self._copyout_time(batch)
        if variant is KernelVariant.MULTIROUND_PAGED:
            return self._multiround_time(batch)
        raise ValueError(f"unknown kernel variant {variant!r}")

    def _ideal_attention_time(self, batch: BatchShape) -> float:
        tp = self.config.num_gpus
        flop_tokens = sum(
            causal_attention_flop_tokens(q, c) for q, c in batch.items
        )
        flops = 2.0 * 2.0 * self.config.hidden_size * self.config.num_layers * flop_tokens / tp
        kv_bytes = sum(
            c * self.config.kv_bytes_per_token for _, c in batch.items
        ) / tp
        compute = flops / self.spec.effective_flops
        memory = kv_bytes / self.spec.effective_hbm_bandwidth
        launch = self.config.num_layers * self.spec.kernel_launch_overhead
        return max(compute, memory) + launch

    def _copyout_time(self, batch: BatchShape) -> float:
        """Cost of copying past KV-tokens into fresh contiguous memory.

        Each past KV-token is read and written once per layer (the copy runs
        per layer because each layer's cache pages are independent).
        """
        tp = self.config.num_gpus
        past_tokens = sum(c - q for q, c in batch.items)
        copy_bytes = 2.0 * past_tokens * self.config.kv_bytes_per_token / tp
        launch = self.config.num_layers * self.spec.kernel_launch_overhead
        return copy_bytes / self.spec.effective_hbm_bandwidth + launch

    def _multiround_time(self, batch: BatchShape) -> float:
        """Cost of one single-token PagedAttention round per query token.

        Round ``i`` processes the ``i``-th query token of every request that
        still has one, re-reading that request's (growing) context from HBM;
        the query-dimension parallelism of the fused kernel is lost and each
        round pays its own kernel launches.
        """
        tp = self.config.num_gpus
        max_q = max((q for q, _ in batch.items), default=0)
        total = 0.0
        for i in range(max_q):
            round_bytes = 0.0
            round_flops = 0.0
            for q, c in batch.items:
                if i < q:
                    ctx = c - q + i + 1
                    round_bytes += ctx * self.config.kv_bytes_per_token
                    round_flops += (
                        2.0 * 2.0 * self.config.hidden_size * self.config.num_layers * ctx
                    )
            compute = round_flops / tp / self.spec.effective_flops
            memory = round_bytes / tp / self.spec.effective_hbm_bandwidth
            launch = self.config.num_layers * self.spec.kernel_launch_overhead
            total += max(compute, memory) + launch
        return total

    # ------------------------------------------------------------------
    # Full iteration
    # ------------------------------------------------------------------

    def iteration_time(
        self,
        batch: BatchShape,
        variant: KernelVariant = KernelVariant.PENSIEVE_PAGED,
        swap_in_bytes: float = 0.0,
        pipelined: bool = True,
    ) -> float:
        """Time for one full model iteration over ``batch``.

        Args:
            batch: the iteration's batch shape.
            variant: attention kernel implementation.
            swap_in_bytes: KV bytes that must arrive from the CPU tier
                before the corresponding layer's attention can run.
            pipelined: overlap per-layer transfers with compute (§4.3.3);
                when ``False`` the whole transfer completes before compute
                starts (the ablation baseline).
        """
        if len(batch) == 0:
            return 0.0
        compute = (
            self.linear_time(batch.total_query_tokens)
            + self.attention_time(batch, variant)
            + self.spec.step_overhead * self.fusion_factor
        )
        if swap_in_bytes <= 0.0:
            return compute
        transfer = swap_in_bytes / self.spec.pcie_bandwidth
        if not pipelined:
            return transfer + compute
        return self.pipelined_time(compute, transfer, self.config.num_layers)

    @staticmethod
    def pipelined_time(compute: float, transfer: float, num_layers: int) -> float:
        """Completion time of layer-wise transfer/compute pipelining.

        Both the transfer and the compute are split evenly across
        ``num_layers`` stages; layer ``i``'s compute may start only after
        its slice of the transfer has landed (§4.3.3).  The closed form of
        the two-stage pipeline recurrence is
        ``max(n*Tc + Tt, n*Tt + Tc)`` for per-layer times ``Tc``/``Tt``.
        """
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        per_compute = compute / num_layers
        per_transfer = transfer / num_layers
        return max(
            compute + per_transfer,
            transfer + per_compute,
        )

    # ------------------------------------------------------------------
    # Figure 3 / Figure 4 helpers
    # ------------------------------------------------------------------

    def prefill_time(self, batch_size: int, prompt_len: int, history_len: int) -> float:
        """Prefill time for a batch of identical requests.

        ``history_len`` tokens of already-available context precede the
        ``prompt_len`` new tokens (for a stateless system the history is
        part of the prompt and must be passed as ``prompt_len`` instead).
        """
        shape = BatchShape.uniform(batch_size, prompt_len, history_len + prompt_len)
        return self.iteration_time(shape)

    def generation_time(self, batch_size: int, context_len: int, steps: int) -> float:
        """Total time of ``steps`` decode iterations with growing context."""
        total = 0.0
        for i in range(steps):
            shape = BatchShape.uniform(batch_size, 1, context_len + i + 1)
            total += self.iteration_time(shape)
        return total

    def attention_chunk_time(
        self, chunk: int, context_len: int, batch_size: int = 1
    ) -> float:
        """Per-layer attention time for a ``chunk`` of tokens (Figure 4).

        The chunk occupies the final ``chunk`` positions of a
        ``context_len``-token context; ``batch_size`` identical requests are
        processed together (the paper's Figure 4 uses 32) and the reported
        time is the per-chunk share, making it directly comparable with
        :meth:`non_attention_chunk_time`.
        """
        shape = BatchShape.uniform(batch_size, chunk, context_len)
        per_batch = self._ideal_attention_time(shape) / self.config.num_layers
        return per_batch / batch_size

    def non_attention_chunk_time(self, chunk: int, batch_size: int = 1) -> float:
        """Per-layer non-attention time for ``batch_size`` chunks (Figure 4).

        Reported as the *marginal* (batch-amortized) cost per chunk: the
        weight matrices are streamed once for the whole serving batch, so a
        single chunk's share is its compute time, not the full weight
        traffic.  This is also what the eviction policy's constant ``c``
        should capture — the recomputation of a chunk always happens inside
        an already-running batch.
        """
        tokens = chunk * batch_size
        tp = self.config.num_gpus
        flops = tokens * self.config.linear_flops_per_token() / tp
        compute = flops / self.spec.effective_flops * self.fusion_factor
        per_batch = (compute + self._allreduce_time(tokens)) / self.config.num_layers
        return per_batch / batch_size
