"""GPU device specifications.

A :class:`GpuSpec` captures the handful of hardware numbers the roofline
cost model needs.  The preset :data:`A100_80GB` matches the Azure NC A100 v4
nodes of the paper's evaluation (§6.1): A100-80GB GPUs, PCIe 4.0 x16 host
link, 220 GB of CPU memory per GPU, and 40 GB of GPU memory dedicated to the
KV cache.

Efficiency factors discount theoretical peaks to the sustained rates real
kernels achieve; they are the only free parameters of the performance layer
and are fixed once, globally, rather than tuned per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Hardware description of one GPU and its host link.

    Attributes:
        name: human-readable device name.
        peak_flops: theoretical peak fp16 tensor-core FLOP/s.
        hbm_bandwidth: device memory bandwidth in bytes/s.
        memory_bytes: total device memory in bytes.
        kv_cache_bytes: device memory reserved for the KV cache (the paper
            configures 40 GB per GPU for every evaluated system).
        pcie_bandwidth: sustained host-link bandwidth per direction, bytes/s.
        pcie_duplex_penalty: multiplicative slowdown applied to *both*
            directions when transfers overlap (the paper measured an
            18-20 % drop; we use 0.81, i.e. a 19 % drop).
        nvlink_bandwidth: per-GPU all-reduce bandwidth for tensor
            parallelism, bytes/s.
        cpu_memory_bytes: host memory available for the CPU cache tier,
            per GPU.
        nvme_read_bandwidth: sustained sequential NVMe read bandwidth,
            bytes/s (disk-tier promotion path).
        nvme_write_bandwidth: sustained sequential NVMe write bandwidth,
            bytes/s (disk-tier demotion path); datacenter SSDs sustain
            writes well below their read rate.
        nvme_mixed_penalty: multiplicative slowdown applied to both NVMe
            directions when reads and writes overlap (flash program
            operations block reads).
        nvme_min_latency: fixed seconds per NVMe I/O submission (command
            round-trip), charged once per coalesced transfer.
        nvme_capacity_bytes: SSD capacity available for the disk cache
            tier, per GPU.
        gemm_efficiency: fraction of ``peak_flops`` sustained by large
            dense GEMMs (prefill-phase linear layers).
        attention_efficiency: fraction of ``hbm_bandwidth`` sustained by
            attention kernels (they are memory-bound at generation time).
        kernel_launch_overhead: fixed seconds of CPU-side launch/sync
            overhead per kernel invocation.
        step_overhead: fixed seconds of scheduler/framework overhead per
            batch iteration (Python driver, tensor bookkeeping).
    """

    name: str = "A100-80GB"
    peak_flops: float = 312e12
    hbm_bandwidth: float = 1.935e12
    memory_bytes: int = 80 * 1024**3
    kv_cache_bytes: int = 40 * 1024**3
    pcie_bandwidth: float = 25e9
    pcie_duplex_penalty: float = 0.81
    nvlink_bandwidth: float = 300e9
    cpu_memory_bytes: int = 220 * 1024**3
    nvme_read_bandwidth: float = 3.2e9
    nvme_write_bandwidth: float = 1.8e9
    nvme_mixed_penalty: float = 0.70
    nvme_min_latency: float = 80e-6
    nvme_capacity_bytes: int = 2 * 1024**4
    gemm_efficiency: float = 0.55
    attention_efficiency: float = 0.60
    kernel_launch_overhead: float = 5e-6
    step_overhead: float = 2.5e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.pcie_duplex_penalty <= 1.0:
            raise ValueError(
                f"pcie_duplex_penalty must be in (0, 1], got {self.pcie_duplex_penalty}"
            )
        if self.kv_cache_bytes > self.memory_bytes:
            raise ValueError("KV cache reservation exceeds device memory")
        if not 0.0 < self.nvme_mixed_penalty <= 1.0:
            raise ValueError(
                f"nvme_mixed_penalty must be in (0, 1], got {self.nvme_mixed_penalty}"
            )

    @property
    def effective_flops(self) -> float:
        """Sustained GEMM FLOP/s."""
        return self.peak_flops * self.gemm_efficiency

    @property
    def effective_hbm_bandwidth(self) -> float:
        """Sustained memory bandwidth for attention/KV traffic."""
        return self.hbm_bandwidth * self.attention_efficiency


A100_80GB = GpuSpec()
