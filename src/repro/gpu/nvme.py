"""NVMe (disk-tier) transfer engine.

Models the host<->SSD copies the third cache tier uses for KV-chunk
demotion and promotion, mirroring :class:`repro.gpu.pcie.PcieEngine`
exactly in structure so that every accounting identity the observability
layer checks for PCIe (byte counters == ``bytes_moved``, one
``min_latency`` per coalesced transfer) holds for NVMe too.  Differences
from the PCIe model reflect SSD physics:

- **Asymmetric bandwidth.**  Sustained sequential read is much faster
  than sustained write on datacenter NVMe, so each direction carries its
  own bandwidth instead of one shared number.
- **Mixed-queue penalty.**  Concurrent reads and writes degrade both
  (flash program operations block reads); modeled like PCIe duplex
  contention with a configurable factor.
- **Reads-over-writes prioritization.**  Demotion (write) is ahead-of-time
  and deferrable; promotion (read) is on the critical path of a restore,
  so writes wait for in-flight reads to drain — the same rationale as
  Pensieve's retrieval-over-eviction PCIe rule (§5).
- **Higher fixed latency.**  One NVMe command round-trip dwarfs a PCIe
  DMA setup, which is exactly why coalescing multi-chunk batches into a
  single stacked transfer matters more on this tier.

The engine is a pure timing model: callers pass the current simulated time
and receive a completion time; actual bytes never move.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.obs.tracer import NULL_TRACER


class NvmeDirection(enum.Enum):
    """Transfer direction over the host<->SSD link."""

    READ = "read"    #: SSD to host: chunk promotion (restore path).
    WRITE = "write"  #: host to SSD: chunk demotion (eviction path).

    @property
    def opposite(self) -> "NvmeDirection":
        return (
            NvmeDirection.WRITE
            if self is NvmeDirection.READ
            else NvmeDirection.READ
        )


@dataclass(frozen=True)
class NvmeTransferRecord:
    """Outcome of one enqueued NVMe transfer.

    ``num_chunks`` records how many KV chunks the transfer coalesced: the
    tiered manager moves multi-chunk batches as ONE I/O submission (one
    record, one queueing decision, one latency term) rather than one per
    chunk.
    """

    direction: NvmeDirection
    num_bytes: float
    enqueue_time: float
    start_time: float
    end_time: float
    num_chunks: int = 1

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.enqueue_time


class NvmeEngine:
    """Serialises NVMe I/O per direction and models mixed-queue contention.

    Each direction behaves like a FIFO submission queue: a new transfer
    starts at ``max(now, busy_until[direction])``.  If, at its start time,
    the opposite queue is still draining, the transfer's bandwidth is
    reduced by the mixed-queue penalty (applied for the whole transfer,
    conservatively, exactly like the PCIe duplex simplification).
    """

    def __init__(
        self,
        read_bandwidth: float,
        write_bandwidth: float,
        mixed_penalty: float = 0.70,
        prioritize_reads: bool = True,
        min_latency: float = 80e-6,
    ) -> None:
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ValueError(
                f"bandwidths must be positive, got read={read_bandwidth} "
                f"write={write_bandwidth}"
            )
        if not 0.0 < mixed_penalty <= 1.0:
            raise ValueError(f"mixed_penalty must be in (0, 1], got {mixed_penalty}")
        self.bandwidth = {
            NvmeDirection.READ: read_bandwidth,
            NvmeDirection.WRITE: write_bandwidth,
        }
        self.mixed_penalty = mixed_penalty
        self.prioritize_reads = prioritize_reads
        self.min_latency = min_latency
        self._busy_until = {NvmeDirection.READ: 0.0, NvmeDirection.WRITE: 0.0}
        self._history: List[NvmeTransferRecord] = []
        self.bytes_moved = {NvmeDirection.READ: 0.0, NvmeDirection.WRITE: 0.0}
        #: Observability sink (``repro.obs``); every transfer becomes an
        #: ``nvme.read`` / ``nvme.write`` span and a byte counter that
        #: reconciles exactly with :attr:`bytes_moved`.
        self.tracer = NULL_TRACER

    def busy_until(self, direction: NvmeDirection) -> float:
        """Time at which the given direction's queue drains."""
        return self._busy_until[direction]

    def transfer(
        self,
        now: float,
        num_bytes: float,
        direction: NvmeDirection,
        num_chunks: int = 1,
    ) -> NvmeTransferRecord:
        """Enqueue a transfer of ``num_bytes`` at simulated time ``now``.

        ``num_chunks`` is the number of KV chunks the transfer coalesces
        (pure accounting; the timing model charges one ``min_latency``
        regardless — that *is* the coalescing win, and it is larger here
        than on PCIe because NVMe command latency is ~an order of
        magnitude higher).

        Returns the resulting :class:`NvmeTransferRecord`; the engine's
        internal busy-until state advances to the transfer's end time.
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        start = max(now, self._busy_until[direction])
        if (
            self.prioritize_reads
            and direction is NvmeDirection.WRITE
            and self._busy_until[NvmeDirection.READ] > start
        ):
            # Demotion defers to in-flight promotion (restore path first).
            start = self._busy_until[NvmeDirection.READ]
        bandwidth = self.bandwidth[direction]
        if self._busy_until[direction.opposite] > start:
            bandwidth *= self.mixed_penalty
        duration = self.min_latency + num_bytes / bandwidth if num_bytes > 0 else 0.0
        end = start + duration
        self._busy_until[direction] = max(self._busy_until[direction], end)
        record = NvmeTransferRecord(
            direction=direction,
            num_bytes=num_bytes,
            enqueue_time=now,
            start_time=start,
            end_time=end,
            num_chunks=num_chunks,
        )
        self._history.append(record)
        self.bytes_moved[direction] += num_bytes
        if self.tracer.enabled:
            name = f"nvme.{direction.value}"
            self.tracer.complete(
                name,
                start,
                end,
                track="nvme",
                bytes=num_bytes,
                queue_delay=start - now,
                chunks=num_chunks,
            )
            self.tracer.count(f"{name}_bytes", num_bytes)
            self.tracer.count(f"{name}_transfers")
            self.tracer.count(f"{name}_chunks", num_chunks)
        return record

    def read(
        self, now: float, num_bytes: float, num_chunks: int = 1
    ) -> NvmeTransferRecord:
        """SSD-to-host transfer (chunk promotion on the restore path)."""
        return self.transfer(now, num_bytes, NvmeDirection.READ, num_chunks)

    def write(
        self, now: float, num_bytes: float, num_chunks: int = 1
    ) -> NvmeTransferRecord:
        """Host-to-SSD transfer (ahead-of-time chunk demotion)."""
        return self.transfer(now, num_bytes, NvmeDirection.WRITE, num_chunks)

    def idle_at(self, now: float) -> bool:
        """True when both directions have drained by ``now``."""
        return all(t <= now for t in self._busy_until.values())

    @property
    def history(self) -> List[NvmeTransferRecord]:
        """All transfers performed so far, in enqueue order."""
        return list(self._history)

    def last(self) -> Optional[NvmeTransferRecord]:
        """Most recently enqueued transfer, if any."""
        return self._history[-1] if self._history else None
