"""Comparisons between latency–throughput curves.

Helpers used by the experiment reports to state Figure 10/11-style claims
quantitatively: speedups at a latency target, curve domination, and
crossover detection (Figure 14's "similar until ~3 req/s" finding).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import RatePoint, throughput_at_latency


def speedup_at(
    curve_a: Sequence[RatePoint],
    curve_b: Sequence[RatePoint],
    latency_target: float,
    use_p90: bool = False,
) -> float:
    """Throughput of curve A over curve B at a latency target.

    Returns ``inf`` when B cannot meet the target at all.
    """
    a = throughput_at_latency(curve_a, latency_target, use_p90=use_p90)
    b = throughput_at_latency(curve_b, latency_target, use_p90=use_p90)
    if b == 0:
        return float("inf")
    return a / b


def curve_dominates(
    winner: Sequence[RatePoint],
    loser: Sequence[RatePoint],
    tolerance: float = 0.0,
) -> bool:
    """True when, at every common request rate, ``winner`` has latency no
    worse than ``loser`` (within ``tolerance``, relative)."""
    by_rate_w = {p.request_rate: p for p in winner}
    by_rate_l = {p.request_rate: p for p in loser}
    common = set(by_rate_w) & set(by_rate_l)
    if not common:
        raise ValueError("curves share no request rates")
    return all(
        by_rate_w[r].mean_norm_latency
        <= by_rate_l[r].mean_norm_latency * (1.0 + tolerance)
        for r in common
    )


def crossover_rate(
    curve_a: Sequence[RatePoint],
    curve_b: Sequence[RatePoint],
    min_gap: float = 0.02,
) -> Optional[float]:
    """Lowest common request rate at which A's latency is better than B's
    by more than ``min_gap`` (relative) — the Figure 14 "policies match
    until X req/s" style statement.  ``None`` when A never pulls ahead.
    """
    by_rate_a = {p.request_rate: p for p in curve_a}
    by_rate_b = {p.request_rate: p for p in curve_b}
    for rate in sorted(set(by_rate_a) & set(by_rate_b)):
        a = by_rate_a[rate].mean_norm_latency
        b = by_rate_b[rate].mean_norm_latency
        if b > a * (1.0 + min_gap):
            return rate
    return None
