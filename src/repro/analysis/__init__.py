"""Post-hoc analysis of serving runs.

Utilities that turn an engine's :class:`~repro.sim.trace.TraceRecorder`
and metrics into the derived quantities the paper quotes from its
"execution trace" analysis (§6.6): cache hit-rate timelines, batch
occupancy, PCIe utilisation, suspension counts, and per-turn latency
breakdowns.
"""

from repro.analysis.traces import (
    BatchOccupancy,
    CacheSummary,
    batch_occupancy,
    cache_summary,
    pcie_utilization,
    turn_latency_breakdown,
)
from repro.analysis.curves import (
    crossover_rate,
    curve_dominates,
    speedup_at,
)

__all__ = [
    "cache_summary",
    "CacheSummary",
    "batch_occupancy",
    "BatchOccupancy",
    "pcie_utilization",
    "turn_latency_breakdown",
    "speedup_at",
    "curve_dominates",
    "crossover_rate",
]
