"""Trace- and metrics-derived statistics for serving runs.

All functions take the engine (or its trace/metrics) *after* a run and
return plain dataclasses, so experiments can log them as rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.gpu.pcie import Direction, PcieEngine
from repro.serving.engine import EngineBase
from repro.serving.metrics import RequestRecord


@dataclass(frozen=True)
class CacheSummary:
    """Aggregate cache behaviour of one run (the §6.6 analysis)."""

    lookup_tokens: int
    gpu_hit_tokens: int
    cpu_hit_tokens: int
    recomputed_tokens: int
    swapped_out_tokens: int
    dropped_tokens: int

    @property
    def hit_rate(self) -> float:
        """Fraction of looked-up history tokens served from either tier."""
        if self.lookup_tokens == 0:
            return 1.0
        return (self.gpu_hit_tokens + self.cpu_hit_tokens) / self.lookup_tokens

    @property
    def cpu_hit_rate(self) -> float:
        if self.lookup_tokens == 0:
            return 0.0
        return self.cpu_hit_tokens / self.lookup_tokens

    @property
    def recompute_rate(self) -> float:
        if self.lookup_tokens == 0:
            return 0.0
        return self.recomputed_tokens / self.lookup_tokens

    def as_dict(self) -> Dict[str, float]:
        return {
            "lookup_tokens": self.lookup_tokens,
            "hit_rate": round(self.hit_rate, 4),
            "cpu_hit_rate": round(self.cpu_hit_rate, 4),
            "recompute_rate": round(self.recompute_rate, 4),
            "swapped_out_tokens": self.swapped_out_tokens,
            "dropped_tokens": self.dropped_tokens,
        }


def cache_summary(engine: EngineBase) -> CacheSummary:
    """Extract the cache summary from a stateful engine.

    Raises:
        AttributeError: for engines without a cache manager (stateless
            baselines have no cache to summarise).
    """
    stats = engine.manager.stats  # type: ignore[attr-defined]
    return CacheSummary(
        lookup_tokens=stats["lookup_tokens"],
        gpu_hit_tokens=stats["gpu_hit_tokens"],
        cpu_hit_tokens=stats["cpu_hit_tokens"],
        recomputed_tokens=stats["recomputed_tokens"],
        swapped_out_tokens=stats["swapped_out_tokens"],
        dropped_tokens=stats["dropped_tokens"],
    )


@dataclass(frozen=True)
class BatchOccupancy:
    """Distribution of batch sizes over a run's iterations."""

    iterations: int
    mean_batch: float
    p50_batch: float
    p90_batch: float
    max_batch: int
    mean_duration: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "iterations": self.iterations,
            "mean_batch": round(self.mean_batch, 2),
            "p50_batch": self.p50_batch,
            "p90_batch": self.p90_batch,
            "max_batch": self.max_batch,
            "mean_iteration_ms": round(self.mean_duration * 1e3, 3),
        }


def batch_occupancy(engine: EngineBase) -> BatchOccupancy:
    """Batch-size statistics from the engine's iteration trace.

    Requires the engine to have been constructed with ``keep_trace=True``.

    Raises:
        ValueError: if no iteration events were recorded.
    """
    sizes: List[int] = []
    durations: List[float] = []
    for event in engine.trace.events("iteration"):
        sizes.append(int(event.data["batch_size"]))
        durations.append(float(event.data["duration"]))
    if not sizes:
        raise ValueError(
            "no iteration events recorded; construct the engine with "
            "keep_trace=True"
        )
    arr = np.asarray(sizes)
    return BatchOccupancy(
        iterations=len(sizes),
        mean_batch=float(arr.mean()),
        p50_batch=float(np.percentile(arr, 50)),
        p90_batch=float(np.percentile(arr, 90)),
        max_batch=int(arr.max()),
        mean_duration=float(np.mean(durations)),
    )


def pcie_utilization(
    pcie: PcieEngine, duration: float
) -> Dict[str, float]:
    """Host-link utilisation over a run.

    Args:
        pcie: the engine's PCIe transfer engine.
        duration: simulated run length in seconds.

    Returns:
        Busy fractions and bytes moved per direction.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    busy = {Direction.H2D: 0.0, Direction.D2H: 0.0}
    for record in pcie.history:
        busy[record.direction] += record.duration
    return {
        "h2d_busy_fraction": min(1.0, busy[Direction.H2D] / duration),
        "d2h_busy_fraction": min(1.0, busy[Direction.D2H] / duration),
        "h2d_gbytes": pcie.bytes_moved[Direction.H2D] / 1e9,
        "d2h_gbytes": pcie.bytes_moved[Direction.D2H] / 1e9,
        "transfers": len(pcie.history),
    }


def turn_latency_breakdown(
    records: List[RequestRecord],
) -> Dict[int, Dict[str, float]]:
    """Per-turn-index latency statistics.

    The stateless-vs-stateful contrast grows with turn index (longer
    history, more redundant prefill); this breakdown makes that visible.
    """
    by_turn: Dict[int, List[RequestRecord]] = {}
    for record in records:
        by_turn.setdefault(record.turn_index, []).append(record)
    out: Dict[int, Dict[str, float]] = {}
    for turn_index, turn_records in sorted(by_turn.items()):
        norm = [r.normalized_latency for r in turn_records]
        ttft = [r.ttft for r in turn_records]
        out[turn_index] = {
            "count": len(turn_records),
            "mean_norm_latency": float(np.mean(norm)),
            "p90_norm_latency": float(np.percentile(norm, 90)),
            "mean_ttft": float(np.mean(ttft)),
            "mean_history": float(
                np.mean([r.history_tokens for r in turn_records])
            ),
            "mean_prefilled": float(
                np.mean([r.prefilled_tokens for r in turn_records])
            ),
        }
    return out
