"""Minimal ASCII plotting for terminal-rendered figures.

The experiment reports and examples render latency–throughput curves and
cost sweeps directly in the terminal; this module provides a dependency-
free scatter/line canvas good enough to *see* the Figure 10 knee without
leaving the shell.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*o+x#@%&"


class AsciiCanvas:
    """A fixed-size character canvas with data-space plotting.

    Args:
        width / height: plot area size in characters (axes add margins).
        x_range / y_range: data-space extents; computed from data when
            omitted.
    """

    def __init__(
        self,
        width: int = 60,
        height: int = 20,
        x_range: Optional[Tuple[float, float]] = None,
        y_range: Optional[Tuple[float, float]] = None,
    ) -> None:
        if width < 10 or height < 4:
            raise ValueError("canvas too small to be legible")
        self.width = width
        self.height = height
        self._x_range = x_range
        self._y_range = y_range
        self._series: List[Tuple[str, List[Tuple[float, float]], str]] = []

    def add_series(
        self,
        name: str,
        points: Sequence[Tuple[float, float]],
        glyph: Optional[str] = None,
    ) -> None:
        """Add one named series of ``(x, y)`` points."""
        if not points:
            raise ValueError(f"series {name!r} has no points")
        if glyph is None:
            glyph = SERIES_GLYPHS[len(self._series) % len(SERIES_GLYPHS)]
        self._series.append((name, sorted(points), glyph))

    def _extent(self) -> Tuple[float, float, float, float]:
        xs = [x for _, pts, _ in self._series for x, _ in pts]
        ys = [y for _, pts, _ in self._series for _, y in pts]
        x_lo, x_hi = self._x_range or (min(xs), max(xs))
        y_lo, y_hi = self._y_range or (min(ys), max(ys))
        if math.isclose(x_lo, x_hi):
            x_hi = x_lo + 1.0
        if math.isclose(y_lo, y_hi):
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(
        self,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
    ) -> str:
        """Render the canvas with axes, tick labels and a legend."""
        if not self._series:
            raise ValueError("nothing to plot")
        x_lo, x_hi, y_lo, y_hi = self._extent()
        grid = [[" "] * self.width for _ in range(self.height)]

        def to_cell(x: float, y: float) -> Tuple[int, int]:
            col = round((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
            return min(max(col, 0), self.width - 1), min(
                max(row, 0), self.height - 1
            )

        for _, points, glyph in self._series:
            # Connect consecutive points with interpolated glyph dots.
            for (x0, y0), (x1, y1) in zip(points, points[1:]):
                steps = max(
                    abs(to_cell(x1, y1)[0] - to_cell(x0, y0)[0]),
                    abs(to_cell(x1, y1)[1] - to_cell(x0, y0)[1]),
                    1,
                )
                for i in range(steps + 1):
                    t = i / steps
                    col, row = to_cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                    grid[row][col] = glyph
            for x, y in points:
                col, row = to_cell(x, y)
                grid[row][col] = glyph

        lines: List[str] = []
        if title:
            lines.append(title)
        y_hi_label = f"{y_hi:.4g}"
        y_lo_label = f"{y_lo:.4g}"
        margin = max(len(y_hi_label), len(y_lo_label)) + 1
        for row_idx in range(self.height - 1, -1, -1):
            if row_idx == self.height - 1:
                prefix = y_hi_label.rjust(margin)
            elif row_idx == 0:
                prefix = y_lo_label.rjust(margin)
            else:
                prefix = " " * margin
            lines.append(f"{prefix}|" + "".join(grid[row_idx]))
        lines.append(" " * margin + "+" + "-" * self.width)
        x_axis = f"{x_lo:.4g}".ljust(self.width - 8) + f"{x_hi:.4g}".rjust(8)
        lines.append(" " * (margin + 1) + x_axis)
        if x_label or y_label:
            lines.append(
                " " * (margin + 1)
                + (f"x: {x_label}" if x_label else "")
                + (f"   y: {y_label}" if y_label else "")
            )
        legend = "   ".join(f"{glyph}={name}" for name, _, glyph in self._series)
        lines.append(" " * (margin + 1) + legend)
        return "\n".join(lines)


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 48,
    value_format: str = "{:.6g}",
) -> str:
    """Horizontal ASCII bar chart for ``(label, value)`` pairs.

    Used by ``repro trace --summary`` to show where simulated time went
    without leaving the terminal.  Values must be non-negative; bars are
    scaled to the largest value.
    """
    if not items:
        raise ValueError("nothing to chart")
    max_value = max(value for _, value in items)
    if max_value <= 0:
        max_value = 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = [title] if title else []
    for label, value in items:
        cells = round(max(0.0, value) / max_value * width)
        if value > 0 and cells == 0:
            cells = 1
        bar = "#" * cells
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| "
            + value_format.format(value)
        )
    return "\n".join(lines)


def plot_curves(
    curves: Dict[str, Sequence],
    x_attr: str = "throughput_rps",
    y_attr: str = "mean_norm_latency",
    y_scale: float = 1e3,
    title: str = "",
    width: int = 60,
    height: int = 18,
) -> str:
    """Plot latency–throughput curves (Figure 10 style) as ASCII.

    Args:
        curves: mapping of system name to :class:`RatePoint` sequences.
        x_attr / y_attr: RatePoint attributes to plot.
        y_scale: multiplier applied to y values (default: s -> ms).
    """
    canvas = AsciiCanvas(width=width, height=height)
    for name, points in curves.items():
        canvas.add_series(
            name,
            [
                (getattr(p, x_attr), getattr(p, y_attr) * y_scale)
                for p in points
            ],
        )
    return canvas.render(
        title=title, x_label=x_attr, y_label=f"{y_attr} (x{y_scale:g})"
    )
