"""Serving performance metrics.

Following the paper (§6.1): *serving throughput* (completed requests per
second) and *normalized latency* (end-to-end request latency divided by the
number of output tokens), reported as the mean (Figure 10 caption) and the
90th percentile (the "Performance Metric" paragraph).

Fault-injection runs additionally report degradation counters
(:class:`~repro.faults.FaultCounters`, re-exported here): swap-in/out
failures, recompute fallbacks, retries and individually-degraded requests,
so benchmarks can quantify the overhead of graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultCounters
from repro.obs.flight import FlightEvent, FlightRecorder, NULL_FLIGHT, SloConfig
from repro.obs.histogram import HistogramSet, NULL_HISTOGRAMS
from repro.obs.walltime import StageTimings
from repro.serving.request import Request

__all__ = [
    "FailureRecord",
    "FaultCounters",
    "MetricsCollector",
    "RequestRecord",
    "ServingStats",
    "SloConfig",
    "StageTimings",
]


@dataclass(frozen=True)
class RequestRecord:
    """Immutable completion record of one request."""

    request_id: int
    conv_id: int
    turn_index: int
    arrival_time: float
    finish_time: float
    first_token_time: float
    prompt_tokens: int
    history_tokens: int
    output_tokens: int
    prefilled_tokens: int
    #: Flight-recorder lifecycle timeline (bounded ring contents at
    #: completion); empty unless the SLO layer is enabled.
    events: Tuple[FlightEvent, ...] = ()

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def normalized_latency(self) -> float:
        """Latency per output token; a zero-output request (possible for
        degraded/truncated completions) is normalized by 1 token."""
        return self.latency / max(1, self.output_tokens)

    @property
    def ttft(self) -> float:
        """Time to first token."""
        return self.first_token_time - self.arrival_time

    @property
    def mean_tbt(self) -> float:
        """Mean time-between-tokens over the decode phase (0.0 for
        single-token outputs, which have no inter-token gap)."""
        if self.output_tokens <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (
            self.output_tokens - 1
        )


@dataclass(frozen=True)
class FailureRecord:
    """One individually-degraded request (retries exhausted)."""

    request_id: int
    conv_id: int
    time: float
    reason: str
    #: Flight-recorder timeline at failure time (SLO layer only).
    events: Tuple[FlightEvent, ...] = ()

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "conv_id": self.conv_id,
            "time": round(self.time, 6),
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ServingStats:
    """Aggregate statistics over a measurement window."""

    num_requests: int
    duration: float
    throughput_rps: float
    token_throughput: float
    mean_normalized_latency: float
    p50_normalized_latency: float
    p90_normalized_latency: float
    p99_normalized_latency: float
    mean_ttft: float
    mean_latency: float
    total_prefilled_tokens: int
    total_output_tokens: int
    num_failed: int = 0

    def as_dict(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "num_failed": self.num_failed,
            "duration_s": round(self.duration, 3),
            "throughput_rps": round(self.throughput_rps, 4),
            "token_throughput": round(self.token_throughput, 1),
            "mean_norm_latency_ms": round(self.mean_normalized_latency * 1e3, 2),
            "p50_norm_latency_ms": round(self.p50_normalized_latency * 1e3, 2),
            "p90_norm_latency_ms": round(self.p90_normalized_latency * 1e3, 2),
            "p99_norm_latency_ms": round(self.p99_normalized_latency * 1e3, 2),
            "mean_ttft_ms": round(self.mean_ttft * 1e3, 2),
            "mean_latency_ms": round(self.mean_latency * 1e3, 2),
            "prefilled_tokens": self.total_prefilled_tokens,
            "output_tokens": self.total_output_tokens,
        }


class MetricsCollector:
    """Accumulates per-request completion records and aggregates them."""

    def __init__(self) -> None:
        self._records: List[RequestRecord] = []
        self._failures: List[FailureRecord] = []
        #: Degradation counters maintained by the engine's fault-recovery
        #: paths; all-zero when no fault plan is armed.
        self.faults = FaultCounters()
        #: SLO observability sinks — null (allocation-free) by default;
        #: :meth:`enable_slo` arms recording instances.
        self.hist = NULL_HISTOGRAMS
        self.flight = NULL_FLIGHT
        self.slo: Optional[SloConfig] = None
        #: Violation counts per objective kind (``ttft`` / ``tbt``).
        self.slo_violations: Dict[str, int] = {}
        #: Request ids that violated at least one objective.
        self.slo_violated_requests: List[int] = []

    def enable_slo(
        self,
        slo: Optional[SloConfig] = None,
        hist: Optional[HistogramSet] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> "MetricsCollector":
        """Arm the SLO layer: streaming histograms, the per-request flight
        recorder, and (optionally) TTFT/TBT objectives with slow-request
        capture.  Idempotent; existing armed sinks are kept unless
        replacements are passed explicitly."""
        if hist is not None:
            self.hist = hist
        elif not self.hist.enabled:
            self.hist = HistogramSet()
        if flight is not None:
            self.flight = flight
        elif not self.flight.enabled:
            self.flight = FlightRecorder()
        if slo is not None:
            self.slo = slo
        return self

    def complete(self, request: Request) -> RequestRecord:
        """Record a finished request.

        Raises:
            RuntimeError: if the request lacks finish/first-token stamps.
        """
        if request.finish_time is None or request.first_token_time is None:
            raise RuntimeError(f"request {request.request_id} is incomplete")
        events: Tuple[FlightEvent, ...] = ()
        if self.flight.enabled:
            events = tuple(self.flight.finish(request.request_id))
        record = RequestRecord(
            request_id=request.request_id,
            conv_id=request.conv_id,
            turn_index=request.turn_index,
            arrival_time=request.arrival_time,
            finish_time=request.finish_time,
            first_token_time=request.first_token_time,
            prompt_tokens=request.prompt_tokens,
            history_tokens=request.history_tokens,
            output_tokens=request.output_tokens,
            prefilled_tokens=request.prefill_tokens,
            events=events,
        )
        self._records.append(record)
        if self.hist.enabled:
            self.hist.hist("latency_seconds").record(record.latency)
            self.hist.hist("norm_latency_seconds").record(
                record.normalized_latency
            )
        if self.slo is not None and self.slo.armed:
            violated = self.slo.violations(record.ttft, record.mean_tbt)
            if violated:
                for kind in violated:
                    self.slo_violations[kind] = (
                        self.slo_violations.get(kind, 0) + 1
                    )
                self.slo_violated_requests.append(record.request_id)
                if self.flight.enabled:
                    self.flight.capture(
                        record.request_id,
                        "slo:" + "+".join(violated),
                        record.finish_time,
                        events=list(events),
                        conv_id=record.conv_id,
                        ttft=round(record.ttft, 9),
                        mean_tbt=round(record.mean_tbt, 9),
                        output_tokens=record.output_tokens,
                    )
        return record

    def fail(self, request: Request, now: float, reason: str) -> FailureRecord:
        """Record an individually-degraded request (it never completes, so
        it would otherwise be invisible to the collector).  With the SLO
        layer armed, every failure captures its flight timeline."""
        events: Tuple[FlightEvent, ...] = ()
        if self.flight.enabled:
            events = tuple(self.flight.finish(request.request_id))
            self.flight.capture(
                request.request_id,
                f"failed:{reason}",
                now,
                events=list(events),
                conv_id=request.conv_id,
            )
        record = FailureRecord(
            request_id=request.request_id,
            conv_id=request.conv_id,
            time=now,
            reason=reason,
            events=events,
        )
        self._failures.append(record)
        return record

    def slo_report(self) -> dict:
        """Summary of the SLO layer's state (for CLI output and tests)."""
        return {
            "slo": self.slo.as_dict() if self.slo is not None else None,
            "violations_by_kind": dict(self.slo_violations),
            "violated_requests": len(self.slo_violated_requests),
            "failed_requests": len(self._failures),
            "captures": len(self.flight.captures),
            "dropped_captures": getattr(self.flight, "dropped_captures", 0),
        }

    @property
    def records(self) -> List[RequestRecord]:
        return list(self._records)

    @property
    def failures(self) -> List[FailureRecord]:
        return list(self._failures)

    def __len__(self) -> int:
        return len(self._records)

    def stats(
        self,
        warmup: float = 0.0,
        until: Optional[float] = None,
    ) -> ServingStats:
        """Aggregate over requests finishing in ``(warmup, until]``.

        Raises:
            ValueError: if the window contains no requests.
        """
        window = [
            r
            for r in self._records
            if r.finish_time > warmup and (until is None or r.finish_time <= until)
        ]
        if not window:
            raise ValueError("no completed requests in the measurement window")
        finishes = [r.finish_time for r in window]
        start = warmup if warmup > 0 else min(r.arrival_time for r in window)
        duration = max(finishes) - start
        if duration <= 0:
            duration = max(finishes) or 1.0
        norm = np.array([r.normalized_latency for r in window])
        output_tokens = sum(r.output_tokens for r in window)
        failed = sum(
            1
            for f in self._failures
            if f.time > warmup and (until is None or f.time <= until)
        )
        return ServingStats(
            num_requests=len(window),
            duration=duration,
            throughput_rps=len(window) / duration,
            token_throughput=output_tokens / duration,
            mean_normalized_latency=float(norm.mean()),
            p50_normalized_latency=float(np.percentile(norm, 50)),
            p90_normalized_latency=float(np.percentile(norm, 90)),
            p99_normalized_latency=float(np.percentile(norm, 99)),
            mean_ttft=float(np.mean([r.ttft for r in window])),
            mean_latency=float(np.mean([r.latency for r in window])),
            total_prefilled_tokens=sum(r.prefilled_tokens for r in window),
            total_output_tokens=output_tokens,
            num_failed=failed,
        )
