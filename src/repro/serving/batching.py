"""Iteration-level batching configuration.

All engines perform iteration-level (token-granularity) batching
[BatchMaker 17, ORCA 52]: after every model iteration, finished requests
leave the batch and waiting requests may join.  :class:`BatchConfig`
captures the admission limits shared by every engine plus the
Pensieve-specific thresholds of §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BatchConfig:
    """Admission and cache-management thresholds.

    Attributes:
        max_batch_tokens: cap on the total number of input tokens processed
            in one iteration (prefill tokens count fully, a generation-phase
            request counts 1).
        max_running: cap on concurrently running requests.
        swap_out_threshold: start ahead-of-time swap-out when free GPU KV
            slots drop below this fraction of capacity (§4.3.2, 25 %).
        generation_reserve: stop admitting new requests unless more than
            this fraction of GPU KV slots is free, protecting running
            generations from suspension (§4.3.5, 10 %).
        max_context: hard per-request context limit (the evaluation caps
            conversations at 16384 tokens).
    """

    max_batch_tokens: int = 4096
    max_running: int = 256
    swap_out_threshold: float = 0.25
    generation_reserve: float = 0.10
    max_context: int = 16384

    def __post_init__(self) -> None:
        if self.max_batch_tokens <= 0:
            raise ValueError("max_batch_tokens must be positive")
        if self.max_running <= 0:
            raise ValueError("max_running must be positive")
        if not 0.0 <= self.swap_out_threshold < 1.0:
            raise ValueError("swap_out_threshold must be in [0, 1)")
        if not 0.0 <= self.generation_reserve < 1.0:
            raise ValueError("generation_reserve must be in [0, 1)")
        if self.max_context <= 0:
            raise ValueError("max_context must be positive")
