"""Stateless baseline engines: vLLM and TensorRT-LLM.

Both baselines follow the behaviour the paper ascribes to them (§6.1):

- **stateless across requests**: all KV slots are released the moment a
  request finishes, so every follow-up turn re-prefills the whole
  conversation history alongside the new prompt;
- **paged KV cache** with iteration-level batching;
- **separate prefill and decode batches** (§4.2: "vLLM only forms a batch
  among requests in the same phase"), with prefill prioritised;
- **recompute preemption**: when decoding runs out of KV slots, the
  latest-arrived running request is evicted and later re-prefilled from
  raw tokens (vLLM v0.2.0's default preemption mode).

TensorRT-LLM is modelled as the same scheduler with a kernel-fusion speed
factor on non-attention work, matching the paper's explanation of why it
beats vLLM ("graph rewriting ... executes the optimized model using the
TensorRT Runtime").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.gpu.costmodel import BatchShape, CostModel, KernelVariant
from repro.gpu.device import GpuSpec
from repro.model.config import ModelConfig
from repro.serving.batching import BatchConfig
from repro.serving.engine import EngineBase
from repro.serving.request import Request, RequestState
from repro.sim.events import EventLoop

#: Speedup of TensorRT-LLM's compiled runtime over PyTorch-driven
#: execution on non-attention operators (calibrated once against the
#: Figure 10 vLLM/TensorRT-LLM gaps).
TENSORRT_FUSION_FACTOR = 0.80


class StatelessEngine(EngineBase):
    """A stateless paged-KV serving engine (vLLM / TensorRT-LLM shaped)."""

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        config: ModelConfig,
        spec: GpuSpec,
        batch_config: Optional[BatchConfig] = None,
        fusion_factor: float = 1.0,
        keep_trace: bool = False,
    ) -> None:
        cost_model = CostModel(config, spec, fusion_factor=fusion_factor)
        super().__init__(name, loop, cost_model, batch_config, keep_trace)
        self.model_config = config
        self.spec = spec
        total_kv_bytes = spec.kv_cache_bytes * config.num_gpus
        self.gpu_capacity_tokens = int(total_kv_bytes // config.kv_bytes_per_token)
        self._allocated: Dict[int, int] = {}
        self._phase = "decode"

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    @property
    def used_tokens(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_tokens(self) -> int:
        return self.gpu_capacity_tokens - self.used_tokens

    def _allocate(self, request: Request, tokens: int) -> None:
        self._allocated[request.request_id] = (
            self._allocated.get(request.request_id, 0) + tokens
        )

    def _release(self, request: Request) -> int:
        return self._allocated.pop(request.request_id, 0)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _form_batch(self, now: float) -> List[Request]:
        admitted = self._try_admit(now)
        if admitted:
            self._phase = "prefill"
            return admitted
        self._phase = "decode"
        return self._decode_batch(now)

    def _try_admit(self, now: float) -> List[Request]:
        """Form a prefill batch from the wait queue (FCFS, prefill first)."""
        selected: List[Request] = []
        batch_tokens = 0
        while self.wait_queue:
            request = self.wait_queue[0]
            # A stateless engine re-prefills history + prompt (+ any tokens
            # generated before a preemption).
            prefill = (
                request.history_tokens
                + request.prompt_tokens
                + request.generated_tokens
            )
            if len(self.running) + len(selected) >= self.config.max_running:
                break
            if selected and batch_tokens + prefill > self.config.max_batch_tokens:
                break
            need = prefill  # context slots for the prefilled tokens
            if need > self.free_tokens:
                break
            self.wait_queue.popleft()
            self._allocate(request, need)
            request.prefill_tokens = prefill
            request.prefill_done = False
            request.state = RequestState.RUNNING
            self.running.append(request)
            self._note_batch_join(request, now)
            selected.append(request)
            batch_tokens += prefill
            self.trace.record(now, "admit", request_id=request.request_id,
                              prefill_tokens=prefill)
        return selected

    def _decode_batch(self, now: float) -> List[Request]:
        """All running requests decode together; preempt if out of memory."""
        decoders = [r for r in self.running if r.state is RequestState.RUNNING]
        # Each decoding request needs one more KV slot this iteration.
        while decoders and self.free_tokens < len(decoders):
            victim = max(decoders, key=lambda r: (r.arrival_time, r.request_id))
            self._preempt(victim, now)
            decoders.remove(victim)
        for request in decoders:
            self._allocate(request, 1)
        return decoders

    def _preempt(self, victim: Request, now: float) -> None:
        """Recompute-preemption: drop the victim's KV, requeue it."""
        freed = self._release(victim)
        victim.state = RequestState.WAITING
        victim.last_enqueue_time = now
        self.running.remove(victim)
        # Re-admit before younger requests: push to the queue front.
        self.wait_queue.appendleft(victim)
        if self.metrics.flight.enabled:
            self.metrics.flight.record(
                victim.request_id, "suspend", now, kind="preempt",
                dropped_tokens=freed,
            )
        self.trace.record(
            now, "preempt", request_id=victim.request_id, freed_tokens=freed
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, batch: Sequence[Request], now: float) -> float:
        if self._phase == "prefill":
            shape = BatchShape.of(
                [(r.prefill_tokens, r.prefill_tokens) for r in batch]
            )
        else:
            # The allocation count is exactly the context size including
            # this iteration's new token (slots were taken in
            # ``_decode_batch``).
            shape = BatchShape.of(
                [(1, self._allocated[r.request_id]) for r in batch]
            )
        return self.cost_model.iteration_time(
            shape, variant=KernelVariant.IDEAL_CONTIGUOUS
        )

    def _on_finish(self, request: Request, now: float) -> None:
        """Stateless: de-allocate every slot immediately (§2.2)."""
        freed = self._release(request)
        self.trace.record(now, "release", request_id=request.request_id,
                          freed_tokens=freed)


def make_vllm(
    loop: EventLoop,
    config: ModelConfig,
    spec: GpuSpec,
    batch_config: Optional[BatchConfig] = None,
    keep_trace: bool = False,
) -> StatelessEngine:
    """The vLLM baseline (PyTorch-speed execution)."""
    return StatelessEngine(
        "vLLM", loop, config, spec, batch_config,
        fusion_factor=1.0, keep_trace=keep_trace,
    )


def make_tensorrt_llm(
    loop: EventLoop,
    config: ModelConfig,
    spec: GpuSpec,
    batch_config: Optional[BatchConfig] = None,
    keep_trace: bool = False,
) -> StatelessEngine:
    """The TensorRT-LLM baseline (compiled-kernel execution)."""
    return StatelessEngine(
        "TensorRT-LLM", loop, config, spec, batch_config,
        fusion_factor=TENSORRT_FUSION_FACTOR, keep_trace=keep_trace,
    )
