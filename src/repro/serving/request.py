"""Requests, turns and conversations.

A :class:`Conversation` is a scripted multi-turn dialogue: a list of
:class:`Turn` records giving each turn's new-prompt length and (pre-drawn)
output length.  A :class:`Request` is one turn submitted to an engine; it
carries the conversation's cumulative history size so a *stateless* engine
knows how many tokens its prompt really contains (history + new prompt),
while a *stateful* engine consults its cache instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class RequestState(enum.Enum):
    """Lifecycle of a request inside an engine."""

    WAITING = "waiting"      #: in the scheduler's wait queue.
    RUNNING = "running"      #: member of the running batch.
    SUSPENDED = "suspended"  #: preempted; KV swapped out / discarded.
    FINISHED = "finished"    #: all output tokens emitted.
    FAILED = "failed"        #: degraded individually after exhausting retries.


@dataclass(frozen=True)
class Turn:
    """One scripted turn: the user's prompt size and the reply size."""

    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError(f"prompt_tokens must be positive, got {self.prompt_tokens}")
        if self.output_tokens <= 0:
            raise ValueError(f"output_tokens must be positive, got {self.output_tokens}")


@dataclass
class Conversation:
    """A scripted multi-turn conversation.

    Attributes:
        conv_id: unique id; doubles as the cache key in stateful engines.
        turns: scripted turns, in order.
        start_time: arrival time of the first turn.
        think_times: per-follow-up-turn user think times (length
            ``len(turns) - 1``), pre-drawn so runs are reproducible across
            engines.
    """

    conv_id: int
    turns: List[Turn]
    start_time: float = 0.0
    think_times: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.turns:
            raise ValueError("conversation must have at least one turn")
        if self.think_times and len(self.think_times) != len(self.turns) - 1:
            raise ValueError(
                f"need {len(self.turns) - 1} think times, got {len(self.think_times)}"
            )
        if not self.think_times:
            self.think_times = [0.0] * (len(self.turns) - 1)

    @property
    def num_turns(self) -> int:
        return len(self.turns)

    def history_tokens(self, turn_index: int) -> int:
        """Context tokens accumulated *before* ``turn_index`` begins."""
        return sum(
            t.prompt_tokens + t.output_tokens for t in self.turns[:turn_index]
        )

    def total_tokens(self) -> int:
        """Full context size after the final turn completes."""
        return self.history_tokens(self.num_turns)


@dataclass
class Request:
    """One turn of a conversation, as submitted to an engine.

    Attributes:
        request_id: unique per submission.
        conversation: the owning conversation script.
        turn_index: which turn this request is.
        arrival_time: simulated submission time.
    """

    request_id: int
    conversation: Conversation
    turn_index: int
    arrival_time: float
    state: RequestState = RequestState.WAITING
    # Engine-maintained progress:
    generated_tokens: int = 0
    prefill_done: bool = False
    finish_time: Optional[float] = None
    first_token_time: Optional[float] = None
    #: Tokens the engine must actually prefill (set at admission: history
    #: for stateless engines, recompute+prompt for Pensieve).
    prefill_tokens: int = 0
    #: When the previous output token landed (SLO layer: time-between-
    #: tokens is measured per wait-free gap, so a suspension that requeues
    #: the request shows up as one long gap, not a lost sample).
    last_token_time: Optional[float] = None
    #: When the request last (re-)entered the wait queue; queue wait is
    #: measured per episode so re-admissions after a suspension don't
    #: double-count the first wait.
    last_enqueue_time: Optional[float] = None

    @property
    def conv_id(self) -> int:
        return self.conversation.conv_id

    @property
    def turn(self) -> Turn:
        return self.conversation.turns[self.turn_index]

    @property
    def prompt_tokens(self) -> int:
        """New-prompt tokens of this turn (excludes history)."""
        return self.turn.prompt_tokens

    @property
    def history_tokens(self) -> int:
        """Conversation context accumulated before this turn."""
        return self.conversation.history_tokens(self.turn_index)

    @property
    def output_tokens(self) -> int:
        """Scripted reply length."""
        return self.turn.output_tokens

    @property
    def total_context(self) -> int:
        """Context size when this turn finishes."""
        return self.history_tokens + self.prompt_tokens + self.output_tokens

    @property
    def is_last_turn(self) -> bool:
        return self.turn_index == self.conversation.num_turns - 1

    @property
    def remaining_tokens(self) -> int:
        return self.output_tokens - self.generated_tokens

    def latency(self) -> float:
        """End-to-end latency; only valid after the request finished."""
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} has not finished")
        return self.finish_time - self.arrival_time

    def normalized_latency(self) -> float:
        """End-to-end latency divided by output length (the paper's metric)."""
        return self.latency() / self.output_tokens

    def __repr__(self) -> str:
        return (
            f"Request(id={self.request_id}, conv={self.conv_id}, "
            f"turn={self.turn_index}, state={self.state.value}, "
            f"gen={self.generated_tokens}/{self.output_tokens})"
        )
