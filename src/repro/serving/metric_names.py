"""The declared metric-name registry: the single source of truth.

Every histogram name recorded through a :class:`~repro.serving.metrics.
MetricsCollector`-armed sink, every flight-recorder lifecycle event, and
every tier label must be declared here.  The Prometheus exporter and the
reconciliation suites (``tests/obs/test_slo_reconciliation.py``,
``tests/obs/test_disk_reconciliation.py``) import these sets instead of
re-declaring string literals, and ``repro lint`` rule RPR004 statically
extracts the names used across the tree and diffs them against this
module — a typo'd metric name, or a declared name nothing records, fails
the lint gate.

This module is deliberately a leaf (no imports) and every set is a plain
``frozenset({...})`` literal, so the lint rule can read the declarations
straight off the AST without importing the package.
"""

from __future__ import annotations

__all__ = [
    "FLIGHT_EVENTS",
    "HISTOGRAM_NAMES",
    "HISTOGRAM_TIERS",
    "SAMPLED_HISTOGRAMS",
    "WALL_HISTOGRAM_NAMES",
    "all_histogram_names",
]

#: Sim-clock latency/size histograms recorded by the engines and the
#: metrics collector (exported to Prometheus as ``repro_<name>``).
HISTOGRAM_NAMES = frozenset(
    {
        "latency_seconds",
        "norm_latency_seconds",
        "queue_wait_seconds",
        "ttft_seconds",
        "tbt_seconds",
        "swap_in_seconds",
        "swap_out_seconds",
        "recompute_tokens",
        "recompute_est_seconds",
    }
)

#: Wall-clock histograms (the functional chat server measures real
#: elapsed seconds; never merged with a sim-clock series).
WALL_HISTOGRAM_NAMES = frozenset(
    {
        "chat_turn_seconds",
        "chat_token_seconds",
    }
)

#: ``tier=`` label values carried by the swap histograms and the flight
#: swap events.
HISTOGRAM_TIERS = frozenset(
    {
        "cpu",
        "disk",
    }
)

#: Flight-recorder lifecycle event names (the bounded per-request ring;
#: ledger keys are ``event`` or ``event.tier``).  Preemption is not a
#: separate event: it records as ``suspend`` with ``kind="preempt"``.
FLIGHT_EVENTS = frozenset(
    {
        "admit",
        "batch_join",
        "suspend",
        "swap_out",
        "swap_in",
        "recompute",
        "retry",
        "fault",
        "abort",
        "finish",
    }
)

#: Histograms whose streaming tail percentiles the JSONL
#: :class:`~repro.obs.export.MetricsSampler` samples each interval.
SAMPLED_HISTOGRAMS = frozenset(
    {
        "ttft_seconds",
        "tbt_seconds",
        "queue_wait_seconds",
    }
)


def all_histogram_names() -> frozenset:
    """Every declared histogram name, both clocks."""
    return HISTOGRAM_NAMES | WALL_HISTOGRAM_NAMES
