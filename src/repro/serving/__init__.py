"""Serving framework: requests, batching, metrics, baseline engines.

This subpackage provides the request/conversation lifecycle shared by all
engines, the iteration-level batching machinery, the serving metrics of the
paper (throughput and normalized latency), and the two stateless baseline
engines the paper compares against:

- :class:`~repro.serving.stateless.StatelessEngine` in its vLLM
  configuration (PyTorch-speed execution, paged KV, separate prefill and
  decode batches, recompute-on-preemption);
- the same engine with a kernel-fusion speed factor, modelling
  TensorRT-LLM's compiled runtime.

The stateful Pensieve engine lives in :mod:`repro.core.engine` and builds
on the same primitives.
"""

from repro.serving import metric_names
from repro.serving.request import Conversation, Request, RequestState, Turn
from repro.serving.metrics import MetricsCollector, RequestRecord, ServingStats
from repro.serving.batching import BatchConfig
from repro.serving.engine import EngineBase
from repro.serving.stateless import StatelessEngine, make_tensorrt_llm, make_vllm

__all__ = [
    "metric_names",
    "Request",
    "RequestState",
    "Conversation",
    "Turn",
    "MetricsCollector",
    "RequestRecord",
    "ServingStats",
    "BatchConfig",
    "EngineBase",
    "StatelessEngine",
    "make_vllm",
    "make_tensorrt_llm",
]
