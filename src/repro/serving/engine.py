"""Engine base class: the shared iteration-level serving loop.

An engine is driven by the discrete-event loop: request submissions arrive
as events, each model iteration is simulated by scheduling a completion
event ``iteration_time`` in the future, and the scheduler re-forms the
batch at every completion ("clocked for action by the completion of a
generation step", §4.2).

Subclasses implement three hooks:

- :meth:`_form_batch` — pick the requests (and admission work) for the
  next iteration;
- :meth:`_execute` — return the iteration's simulated duration;
- :meth:`_advance` — apply per-request progress when the iteration
  completes (token generated, prefill finished, ...).

plus the cache-lifecycle hooks :meth:`_on_admit` / :meth:`_on_finish`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.gpu.costmodel import CostModel
from repro.obs.flight import FlightRecorder, SloConfig
from repro.obs.histogram import HistogramSet
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.serving.batching import BatchConfig
from repro.serving.metrics import MetricsCollector
from repro.serving.request import Request, RequestState
from repro.sim.events import EventLoop
from repro.sim.trace import TraceRecorder


class EngineBase:
    """Shared mechanics of an iteration-level serving engine.

    Args:
        name: engine label used in experiment tables.
        loop: the discrete-event loop driving the simulation.
        cost_model: converts batch shapes to iteration durations.
        config: batching/admission thresholds.
        keep_trace: retain full trace events (disable for large sweeps).
        tracer: observability sink (:mod:`repro.obs`); the default null
            tracer keeps every instrumentation site allocation-free.
    """

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        cost_model: CostModel,
        config: Optional[BatchConfig] = None,
        keep_trace: bool = False,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.name = name
        self.loop = loop
        self.cost_model = cost_model
        self.config = config or BatchConfig()
        self.wait_queue: Deque[Request] = deque()
        self.running: List[Request] = []
        #: Requests that failed individually after exhausting fault
        #: retries; the batch they rode in keeps running without them.
        self.failed: List[Request] = []
        self.metrics = MetricsCollector()
        self.trace = TraceRecorder(keep_events=keep_trace)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Open request-lifecycle span ids, by request id.
        self._request_spans: Dict[int, int] = {}
        #: Called as ``on_finish(request, now)`` when a request completes;
        #: the workload driver uses it to schedule the next turn.
        self.on_finish: Optional[Callable[[Request, float], None]] = None
        self._busy = False
        self._iterations = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def set_tracer(self, tracer: NullTracer) -> None:
        """Attach an observability tracer (before the simulation runs).

        Subclasses propagate it to the components they own (cache
        manager, PCIe engine); the base attaches the event loop.
        """
        self.tracer = tracer
        self.loop.tracer = tracer

    def enable_slo_metrics(
        self,
        slo: Optional[SloConfig] = None,
        hist: Optional[HistogramSet] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> "EngineBase":
        """Arm the SLO observability layer (histograms + flight recorder,
        optional TTFT/TBT objectives) before the simulation runs."""
        self.metrics.enable_slo(slo=slo, hist=hist, flight=flight)
        return self

    def submit(self, request: Request) -> None:
        """Enqueue a request at the current simulated time."""
        request.state = RequestState.WAITING
        request.last_enqueue_time = self.loop.now
        self.wait_queue.append(request)
        self.trace.record(self.loop.now, "submit", request_id=request.request_id)
        if self.metrics.flight.enabled:
            self.metrics.flight.record(
                request.request_id, "admit", self.loop.now,
                conv_id=request.conv_id, turn=request.turn_index,
                prompt_tokens=request.prompt_tokens,
            )
        if self.tracer.enabled:
            self._request_spans[request.request_id] = self.tracer.begin(
                "request",
                t=self.loop.now,
                track="requests",
                request_id=request.request_id,
                conv_id=request.conv_id,
                turn=request.turn_index,
                prompt_tokens=request.prompt_tokens,
            )
            self.tracer.gauge("queue.waiting", len(self.wait_queue), t=self.loop.now)
        self._kick()

    @property
    def iterations(self) -> int:
        """Model iterations executed so far."""
        return self._iterations

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_waiting(self) -> int:
        return len(self.wait_queue)

    @property
    def num_failed(self) -> int:
        return len(self.failed)

    def _fail_request(self, request: Request, now: float, reason: str) -> None:
        """Degrade one request after its retries are exhausted.

        The request leaves the scheduler with a structured trace record
        and counts toward ``degraded_requests``; every other request —
        running or waiting — is untouched.
        """
        request.state = RequestState.FAILED
        request.finish_time = now
        if request in self.running:
            self.running.remove(request)
        try:
            self.wait_queue.remove(request)
        except ValueError:
            pass
        self.failed.append(request)
        self.metrics.faults.degraded_requests += 1
        if self.metrics.flight.enabled:
            self.metrics.flight.record(
                request.request_id, "abort", now, reason=reason
            )
        self.metrics.fail(request, now, reason)
        self._on_fail(request, now)
        self.trace.record(
            now, "request_fault", request_id=request.request_id, reason=reason
        )
        if self.tracer.enabled:
            self.tracer.count("requests.failed")
            span = self._request_spans.pop(request.request_id, None)
            if span is not None:
                self.tracer.end(span, t=now, outcome="failed", reason=reason)

    def _on_fail(self, request: Request, now: float) -> None:
        """Release engine-specific state of a failed request (hook)."""

    def _note_batch_join(self, request: Request, now: float) -> None:
        """SLO layer: the request left the wait queue for a running batch.

        Queue wait is measured per wait *episode* (since the last
        enqueue), so re-admissions after a suspension each contribute
        their own sample instead of re-counting from arrival.
        """
        metrics = self.metrics
        if metrics.hist.enabled:
            since = request.last_enqueue_time
            if since is None:
                since = request.arrival_time
            metrics.hist.hist("queue_wait_seconds").record(now - since)
        if metrics.flight.enabled:
            metrics.flight.record(request.request_id, "batch_join", now)

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------

    def _kick(self) -> None:
        """Start an iteration if the engine is idle and has work."""
        if self._busy:
            return
        if not self.running and not self.wait_queue:
            return
        self._busy = True
        self.loop.schedule(self.loop.now, self._iterate)

    def _iterate(self) -> None:
        batch = self._form_batch(self.loop.now)
        if not batch:
            # Admission may be blocked transiently (e.g. waiting for an
            # ahead-of-time copy to land).  Engines that can say when to
            # retry stay "busy" and poll; otherwise the engine idles until
            # the next submission.
            retry = (
                self._idle_retry_delay(self.loop.now) if self.wait_queue else None
            )
            if retry is not None and retry > 0:
                self.loop.schedule_after(retry, self._iterate)
                return
            self._busy = False
            return
        duration = self._execute(batch, self.loop.now)
        self._iterations += 1
        self.trace.record(
            self.loop.now,
            "iteration",
            batch_size=len(batch),
            duration=duration,
        )
        if self.tracer.enabled:
            self._trace_iteration(batch, self.loop.now, duration)
        self.loop.schedule_after(duration, self._complete, batch)

    def _trace_iteration(
        self, batch: Sequence[Request], now: float, duration: float
    ) -> None:
        """Emit the iteration span, its prefill/decode sub-spans, and the
        per-iteration gauges.  Only called with a recording tracer."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        prefill = [r for r in batch if not r.prefill_done]
        n_decode = len(batch) - len(prefill)
        span = tracer.complete(
            "iteration",
            now,
            now + duration,
            track="engine",
            batch_size=len(batch),
            prefill_requests=len(prefill),
            decode_requests=n_decode,
        )
        if prefill:
            tracer.complete(
                "prefill",
                now,
                now + duration,
                parent=span,
                track="engine",
                requests=len(prefill),
                tokens=sum(r.prefill_tokens for r in prefill),
            )
        if n_decode:
            tracer.complete(
                "decode",
                now,
                now + duration,
                parent=span,
                track="engine",
                requests=n_decode,
            )
        tracer.count("engine.iterations")
        tracer.gauge("batch.size", len(batch), t=now)
        tracer.gauge("queue.waiting", len(self.wait_queue), t=now)
        tracer.gauge("queue.running", len(self.running), t=now)
        self._trace_gauges(now)

    def _trace_gauges(self, now: float) -> None:
        """Engine-specific per-iteration gauges (hook; tracer enabled)."""

    def _complete(self, batch: Sequence[Request]) -> None:
        now = self.loop.now
        finished: List[Request] = []
        for request in batch:
            if request.state is not RequestState.RUNNING:
                continue  # suspended mid-flight
            self._advance(request, now)
            if request.generated_tokens >= request.output_tokens:
                finished.append(request)
        for request in finished:
            request.state = RequestState.FINISHED
            request.finish_time = now
            self.running.remove(request)
            self._on_finish(request, now)
            if self.metrics.flight.enabled:
                self.metrics.flight.record(
                    request.request_id, "finish", now,
                    output_tokens=request.output_tokens,
                )
            self.metrics.complete(request)
            self.trace.record(now, "finish", request_id=request.request_id)
            if self.tracer.enabled:
                self.tracer.count("requests.finished")
                span = self._request_spans.pop(request.request_id, None)
                if span is not None:
                    self.tracer.end(
                        span, t=now,
                        outcome="finished",
                        output_tokens=request.output_tokens,
                        prefilled_tokens=request.prefill_tokens,
                    )
            if self.on_finish is not None:
                self.on_finish(request, now)
        if self.running or self.wait_queue:
            self.loop.schedule(now, self._iterate)
        else:
            self._busy = False

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _form_batch(self, now: float) -> List[Request]:
        """Select the requests for the next iteration."""
        raise NotImplementedError

    def _idle_retry_delay(self, now: float) -> Optional[float]:
        """Seconds after which a blocked, otherwise-idle engine should
        retry batch formation; ``None`` (default) idles until the next
        submission."""
        return None

    def _execute(self, batch: Sequence[Request], now: float) -> float:
        """Return the simulated duration of one iteration over ``batch``."""
        raise NotImplementedError

    def _advance(self, request: Request, now: float) -> None:
        """Apply one iteration's progress to a running request.

        Default: the iteration produced one output token (the prefill
        iteration produces the first).  With the SLO layer armed this is
        the streaming TTFT/TBT record site: TTFT at the first token ever
        (not per re-prefill after preemption), TBT per inter-token gap.
        """
        request.generated_tokens += 1
        hist = self.metrics.hist
        if hist.enabled:
            # Every produced token is exactly one sample: the request's
            # very first token lands in ``ttft_seconds``, every later one
            # (re-prefills after preemption included) in ``tbt_seconds``
            # — so ttft.count + tbt.count == tokens produced, exactly.
            if request.first_token_time is None:
                hist.hist("ttft_seconds").record(now - request.arrival_time)
            elif request.last_token_time is not None:
                hist.hist("tbt_seconds").record(now - request.last_token_time)
        if not request.prefill_done:
            request.prefill_done = True
            request.first_token_time = now
        request.last_token_time = now

    def _on_finish(self, request: Request, now: float) -> None:
        """Release or retain the request's cache state."""
        raise NotImplementedError
