"""Token sampling strategies.

The functional serving layer defaults to greedy decoding (argmax), which
the correctness tests rely on; this module adds the standard stochastic
strategies — temperature scaling, top-k truncation and nucleus (top-p)
filtering — behind one seeded, deterministic interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.model.layers import softmax


@dataclass(frozen=True)
class SamplingParams:
    """Decoding configuration.

    Attributes:
        temperature: logit divisor; ``0`` means greedy (argmax).
        top_k: keep only the ``k`` highest-probability tokens (0 = all).
        top_p: nucleus sampling — keep the smallest probability mass
            prefix summing to at least ``top_p`` (1.0 = all).
    """

    temperature: float = 0.0
    top_k: int = 0
    top_p: float = 1.0

    def __post_init__(self) -> None:
        if self.temperature < 0.0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError(f"top_p must be in (0, 1], got {self.top_p}")

    @property
    def is_greedy(self) -> bool:
        return self.temperature == 0.0


GREEDY = SamplingParams()


def sample_token(
    logits: np.ndarray,
    params: SamplingParams = GREEDY,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Draw one token id from ``logits`` under ``params``.

    Args:
        logits: ``[vocab]`` unnormalised scores.
        params: sampling configuration.
        rng: random generator; required unless greedy.

    Returns:
        The sampled token id.

    Raises:
        ValueError: if a stochastic strategy is requested without ``rng``.
    """
    if logits.ndim != 1:
        raise ValueError(f"logits must be a vector, got shape {logits.shape}")
    if params.is_greedy:
        return int(np.argmax(logits))
    if rng is None:
        raise ValueError("stochastic sampling requires an rng")

    scaled = logits / params.temperature
    probs = softmax(scaled)

    if params.top_k > 0 and params.top_k < probs.shape[0]:
        cutoff = np.partition(probs, -params.top_k)[-params.top_k]
        probs = np.where(probs >= cutoff, probs, 0.0)

    if params.top_p < 1.0:
        order = np.argsort(probs)[::-1]
        sorted_probs = probs[order]
        cumulative = np.cumsum(sorted_probs)
        # Keep the minimal prefix reaching top_p (always at least one).
        keep = cumulative - sorted_probs < params.top_p
        mask = np.zeros_like(probs, dtype=bool)
        mask[order[keep]] = True
        probs = np.where(mask, probs, 0.0)

    total = probs.sum()
    if total <= 0.0:  # numerical corner: fall back to greedy
        return int(np.argmax(logits))
    probs = probs / total
    return int(rng.choice(probs.shape[0], p=probs))
