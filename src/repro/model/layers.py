"""Elementary neural-network layers in numpy.

Only what the two paper architectures need: LayerNorm (OPT) and RMSNorm
(Llama 2, [54]), ReLU and SiLU activations, and dense projections.  All
layers are pure functions over explicit weight arrays so the model can be
constructed deterministically from a seed and weights can be shared or
sharded without hidden state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit (SiLU / swish), used by Llama 2."""
    return x / (1.0 + np.exp(-x))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass
class LayerNorm:
    """Standard layer normalisation with learned gain and bias."""

    gain: np.ndarray
    bias: np.ndarray
    eps: float = 1e-5

    @classmethod
    def identity(cls, dim: int) -> "LayerNorm":
        return cls(gain=np.ones(dim), bias=np.zeros(dim))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + self.eps) * self.gain + self.bias


@dataclass
class RMSNorm:
    """Root-mean-square normalisation (no mean subtraction, no bias) [54]."""

    gain: np.ndarray
    eps: float = 1e-5

    @classmethod
    def identity(cls, dim: int) -> "RMSNorm":
        return cls(gain=np.ones(dim))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + self.eps)
        return x / rms * self.gain


@dataclass
class Linear:
    """Dense projection ``y = x W + b`` (weight stored input-major)."""

    weight: np.ndarray  # [in_dim, out_dim]
    bias: np.ndarray | None = None

    @classmethod
    def init(
        cls,
        rng: np.random.Generator,
        in_dim: int,
        out_dim: int,
        with_bias: bool = True,
        scale: float = 0.0,
    ) -> "Linear":
        """Gaussian init scaled for unit-variance activations."""
        if scale == 0.0:
            scale = 1.0 / np.sqrt(in_dim)
        weight = rng.standard_normal((in_dim, out_dim)) * scale
        bias = np.zeros(out_dim) if with_bias else None
        return cls(weight=weight, bias=bias)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y = x @ self.weight
        if self.bias is not None:
            y = y + self.bias
        return y


@dataclass
class OptMlp:
    """OPT's two-layer feed-forward network with ReLU."""

    up: Linear
    down: Linear

    @classmethod
    def init(cls, rng: np.random.Generator, hidden: int, intermediate: int) -> "OptMlp":
        return cls(
            up=Linear.init(rng, hidden, intermediate),
            down=Linear.init(rng, intermediate, hidden),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.down(relu(self.up(x)))


@dataclass
class SwiGluMlp:
    """Llama 2's gated feed-forward network: ``down(silu(gate(x)) * up(x))``."""

    gate: Linear
    up: Linear
    down: Linear

    @classmethod
    def init(
        cls, rng: np.random.Generator, hidden: int, intermediate: int
    ) -> "SwiGluMlp":
        return cls(
            gate=Linear.init(rng, hidden, intermediate, with_bias=False),
            up=Linear.init(rng, hidden, intermediate, with_bias=False),
            down=Linear.init(rng, intermediate, hidden, with_bias=False),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.down(silu(self.gate(x)) * self.up(x))
