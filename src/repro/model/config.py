"""Model hyper-parameter configurations.

The four full-scale presets mirror Table 1 of the paper exactly, including
the paper's modification of Llama 2-13B to use 10 KV heads (grouped-query
attention with group size 4).  Tiny presets are provided for functional
tests, where real numpy tensors flow through the model.

Derived quantities used throughout the repository:

- ``kv_bytes_per_token``: bytes of K+V state one token occupies across all
  layers (the paper's §3.2 example: 0.78 MB/token for a 13B GPT-3 class
  model, which :func:`tests <tests.model.test_config>` verify);
- ``linear_flops_per_token``: FLOPs of all non-attention operators for one
  token through the whole model;
- ``attention_flops_per_token``: FLOPs of the score/aggregate attention
  computation for one token attending to a context of length ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters for a decoder-only transformer.

    Attributes:
        name: human-readable model name.
        arch: ``"opt"`` (LayerNorm / learned positions / ReLU MLP) or
            ``"llama"`` (RMSNorm / RoPE / SwiGLU MLP).
        num_layers: number of transformer layers.
        hidden_size: model (embedding) dimension.
        num_heads: number of query attention heads.
        num_kv_heads: number of key/value heads (GQA when < num_heads).
        head_dim: per-head dimension.
        intermediate_size: MLP inner dimension (per branch for SwiGLU).
        vocab_size: vocabulary size.
        max_position: maximum supported context length.
        dtype_bytes: bytes per parameter / activation element (2 = fp16).
        num_gpus: tensor-parallel degree used in the paper's evaluation.
    """

    name: str
    arch: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    head_dim: int
    intermediate_size: int
    vocab_size: int = 32000
    max_position: int = 16384
    dtype_bytes: int = 2
    num_gpus: int = 1

    def __post_init__(self) -> None:
        if self.arch not in ("opt", "llama"):
            raise ValueError(f"unknown arch {self.arch!r}; expected 'opt' or 'llama'")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"num_heads ({self.num_heads}) must be a multiple of "
                f"num_kv_heads ({self.num_kv_heads})"
            )
        if self.num_heads * self.head_dim != self.hidden_size:
            raise ValueError(
                f"num_heads * head_dim ({self.num_heads}*{self.head_dim}) "
                f"must equal hidden_size ({self.hidden_size})"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------

    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing one KV head."""
        return self.num_heads // self.num_kv_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.num_kv_heads * self.head_dim

    @property
    def kv_bytes_per_token_layer(self) -> int:
        """Bytes of K+V state one token occupies in a single layer."""
        return 2 * self.kv_dim * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """Bytes of K+V state one token occupies across all layers."""
        return self.num_layers * self.kv_bytes_per_token_layer

    @property
    def param_count(self) -> int:
        """Approximate parameter count (attention + MLP + embeddings)."""
        h = self.hidden_size
        attn = h * h + 2 * h * self.kv_dim + h * h  # Q, K, V, O projections
        if self.arch == "llama":
            mlp = 3 * h * self.intermediate_size  # gate, up, down
        else:
            mlp = 2 * h * self.intermediate_size  # up, down
        embed = self.vocab_size * h
        return self.num_layers * (attn + mlp) + 2 * embed

    @property
    def weight_bytes(self) -> int:
        """Total bytes of model weights."""
        return self.param_count * self.dtype_bytes

    # ------------------------------------------------------------------
    # Analytical FLOP counts (used by the roofline cost model)
    # ------------------------------------------------------------------

    def linear_flops_per_token(self) -> float:
        """FLOPs of all non-attention operators for one token (all layers).

        Counts the QKV projections, the attention output projection and the
        MLP; a matrix multiply of an ``n``-vector with an ``n x m`` weight
        costs ``2 n m`` FLOPs.  Normalisation and activation costs are
        negligible in comparison and omitted.
        """
        h = self.hidden_size
        proj = 2.0 * h * (h + 2 * self.kv_dim) + 2.0 * h * h
        if self.arch == "llama":
            mlp = 2.0 * 3 * h * self.intermediate_size
        else:
            mlp = 2.0 * 2 * h * self.intermediate_size
        return self.num_layers * (proj + mlp)

    def attention_flops_per_token(self, context_len: int) -> float:
        """FLOPs for one token attending to ``context_len`` KV-tokens.

        Two matrix-vector products per layer — scores (``Q K^T``) and
        aggregation (``softmax(A) V``) — each ``2 * hidden * context_len``
        FLOPs (query heads all participate regardless of GQA grouping).
        """
        return self.num_layers * 2.0 * 2.0 * self.hidden_size * context_len

    def kv_read_bytes_per_token(self, context_len: int) -> float:
        """HBM bytes of KV cache read when one token attends to a context."""
        return float(context_len) * self.kv_bytes_per_token

    # ------------------------------------------------------------------

    def scaled_to(self, num_gpus: int) -> "ModelConfig":
        """Return a copy configured for a different tensor-parallel degree."""
        return replace(self, num_gpus=num_gpus)

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.arch}, L={self.num_layers}, h={self.hidden_size}, "
            f"heads={self.num_heads}/{self.num_kv_heads}, gpus={self.num_gpus})"
        )


# ----------------------------------------------------------------------
# Table 1 presets
# ----------------------------------------------------------------------

OPT_13B = ModelConfig(
    name="OPT-13B",
    arch="opt",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    num_kv_heads=40,
    head_dim=128,
    intermediate_size=4 * 5120,
    vocab_size=50272,
    num_gpus=1,
)

OPT_66B = ModelConfig(
    name="OPT-66B",
    arch="opt",
    num_layers=64,
    hidden_size=9216,
    num_heads=72,
    num_kv_heads=72,
    head_dim=128,
    intermediate_size=4 * 9216,
    vocab_size=50272,
    num_gpus=4,
)

# The paper reduces Llama 2-13B's KV heads from 40 to 10 (GQA group size 4).
LLAMA2_13B = ModelConfig(
    name="Llama 2-13B",
    arch="llama",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    num_kv_heads=10,
    head_dim=128,
    intermediate_size=13824,
    vocab_size=32000,
    num_gpus=1,
)

LLAMA2_70B = ModelConfig(
    name="Llama 2-70B",
    arch="llama",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=28672,
    vocab_size=32000,
    num_gpus=4,
)

PAPER_MODELS: Dict[str, ModelConfig] = {
    cfg.name: cfg for cfg in (OPT_13B, OPT_66B, LLAMA2_13B, LLAMA2_70B)
}


# ----------------------------------------------------------------------
# Tiny presets for functional (real-tensor) tests
# ----------------------------------------------------------------------

def tiny_opt_config(
    num_layers: int = 2,
    hidden_size: int = 32,
    num_heads: int = 4,
    vocab_size: int = 128,
) -> ModelConfig:
    """A miniature OPT-style config small enough for exhaustive numpy tests."""
    return ModelConfig(
        name="tiny-opt",
        arch="opt",
        num_layers=num_layers,
        hidden_size=hidden_size,
        num_heads=num_heads,
        num_kv_heads=num_heads,
        head_dim=hidden_size // num_heads,
        intermediate_size=4 * hidden_size,
        vocab_size=vocab_size,
        max_position=512,
    )


def tiny_llama_config(
    num_layers: int = 2,
    hidden_size: int = 32,
    num_heads: int = 4,
    num_kv_heads: int = 2,
    vocab_size: int = 128,
) -> ModelConfig:
    """A miniature Llama-style (GQA + RoPE + SwiGLU) config for tests."""
    return ModelConfig(
        name="tiny-llama",
        arch="llama",
        num_layers=num_layers,
        hidden_size=hidden_size,
        num_heads=num_heads,
        num_kv_heads=num_kv_heads,
        head_dim=hidden_size // num_heads,
        intermediate_size=3 * hidden_size,
        vocab_size=vocab_size,
        max_position=512,
    )
