"""Numpy transformer models and configurations.

``repro.model`` provides:

- :class:`~repro.model.config.ModelConfig` — hyper-parameters for the four
  models evaluated in the paper (Table 1) plus tiny test-scale presets;
- a functional numpy Transformer (:mod:`repro.model.transformer`) covering
  both the OPT architecture (LayerNorm, learned positional embeddings, ReLU)
  and the Llama-2 architecture (RMSNorm, rotary embeddings, SwiGLU,
  grouped-query attention), running prefill and decode through the paged KV
  cache of :mod:`repro.kvcache`.
"""

from repro.model.config import (
    LLAMA2_13B,
    LLAMA2_70B,
    OPT_13B,
    OPT_66B,
    PAPER_MODELS,
    ModelConfig,
    tiny_llama_config,
    tiny_opt_config,
)
from repro.model.transformer import ForwardRequest, PagedTransformer

__all__ = [
    "ModelConfig",
    "ForwardRequest",
    "PagedTransformer",
    "OPT_13B",
    "OPT_66B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "PAPER_MODELS",
    "tiny_opt_config",
    "tiny_llama_config",
]
