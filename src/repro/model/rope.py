"""Rotary positional embeddings (RoPE), as used by Llama 2.

RoPE rotates each (even, odd) coordinate pair of the query/key vectors by
an angle proportional to the token's absolute position, so relative offsets
appear as phase differences in the dot product.  Because the rotation is a
function of *absolute position*, cached K rows remain valid after being
swapped out and back in — position never changes — which is what lets
Pensieve reuse KV-tokens across requests without re-rotation.
"""

from __future__ import annotations

import numpy as np


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Per-pair inverse frequencies, shape ``[head_dim // 2]``."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    exponents = np.arange(0, head_dim, 2) / head_dim
    return base ** (-exponents)


def apply_rope(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Rotate ``x`` by its tokens' positions.

    Args:
        x: ``[tokens, heads, head_dim]`` query or key tensor.
        positions: ``[tokens]`` absolute positions.
        base: RoPE frequency base.

    Returns:
        The rotated tensor (same shape; input not modified).
    """
    if x.ndim != 3:
        raise ValueError(f"x must be [tokens, heads, head_dim], got {x.shape}")
    if positions.shape[0] != x.shape[0]:
        raise ValueError(
            f"positions ({positions.shape[0]}) must match tokens ({x.shape[0]})"
        )
    freqs = rope_frequencies(x.shape[-1], base)  # [dim/2]
    angles = positions[:, None].astype(np.float64) * freqs[None, :]  # [t, dim/2]
    cos = np.cos(angles)[:, None, :]  # [t, 1, dim/2]
    sin = np.sin(angles)[:, None, :]
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out
