"""Rotary positional embeddings (RoPE), as used by Llama 2.

RoPE rotates each (even, odd) coordinate pair of the query/key vectors by
an angle proportional to the token's absolute position, so relative offsets
appear as phase differences in the dot product.  Because the rotation is a
function of *absolute position*, cached K rows remain valid after being
swapped out and back in — position never changes — which is what lets
Pensieve reuse KV-tokens across requests without re-rotation.

The sin/cos tables depend only on ``(head_dim, base)`` and the largest
position ever seen, so they are cached at module level and grown on demand
rather than rebuilt (``np.outer`` + trig) on every :func:`apply_rope` call
— the tables are read every layer of every forward pass.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: Module-level sin/cos tables keyed by ``(head_dim, base)``; each value
#: is ``(cos, sin)`` of shape ``[max_position + 1, head_dim // 2]``.
_TABLE_CACHE: Dict[Tuple[int, float], Tuple[np.ndarray, np.ndarray]] = {}

#: Initial table height; tables double until they cover the request.
_MIN_TABLE = 256


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Per-pair inverse frequencies, shape ``[head_dim // 2]``."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    exponents = np.arange(0, head_dim, 2) / head_dim
    return base ** (-exponents)


def clear_rope_cache() -> None:
    """Drop all cached sin/cos tables (test isolation hook)."""
    _TABLE_CACHE.clear()


def rope_tables(
    head_dim: int, base: float = 10000.0, max_position: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``(cos, sin)`` tables covering positions ``[0, max_position]``.

    Tables are grown geometrically: a request beyond the current height
    rebuilds the entry at at least double its size, so amortised cost per
    call is O(1).  Entries are keyed by ``(head_dim, base)``.  The returned
    arrays are shared — callers must not write to them.
    """
    key = (head_dim, float(base))
    entry = _TABLE_CACHE.get(key)
    if entry is None or entry[0].shape[0] <= max_position:
        height = _MIN_TABLE if entry is None else entry[0].shape[0]
        while height <= max_position:
            height *= 2
        freqs = rope_frequencies(head_dim, base)  # [dim/2]
        angles = np.arange(height)[:, None].astype(np.float64) * freqs[None, :]
        entry = (np.cos(angles), np.sin(angles))
        _TABLE_CACHE[key] = entry
    return entry


def apply_rope(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Rotate ``x`` by its tokens' positions.

    Args:
        x: ``[tokens, heads, head_dim]`` query or key tensor.
        positions: ``[tokens]`` absolute positions.
        base: RoPE frequency base.

    Returns:
        The rotated tensor (same shape; input not modified).
    """
    if x.ndim != 3:
        raise ValueError(f"x must be [tokens, heads, head_dim], got {x.shape}")
    if positions.shape[0] != x.shape[0]:
        raise ValueError(
            f"positions ({positions.shape[0]}) must match tokens ({x.shape[0]})"
        )
    if (
        positions.shape[0]
        and np.issubdtype(positions.dtype, np.integer)
        and int(positions.min()) >= 0
    ):
        max_position = int(positions.max())
        cos_table, sin_table = rope_tables(x.shape[-1], base, max_position)
        cos = cos_table[positions][:, None, :]  # [t, 1, dim/2]
        sin = sin_table[positions][:, None, :]
    else:
        # Non-integer, negative, or empty positions bypass the cache; the
        # table only covers whole non-negative token positions.
        freqs = rope_frequencies(x.shape[-1], base)  # [dim/2]
        angles = positions[:, None].astype(np.float64) * freqs[None, :]
        cos = np.cos(angles)[:, None, :]
        sin = np.sin(angles)[:, None, :]
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out
