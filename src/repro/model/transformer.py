"""A paged-KV-cache transformer in numpy.

:class:`PagedTransformer` runs real forward passes for batches of requests
whose KV caches live at arbitrary physical slots of a
:class:`~repro.kvcache.storage.KVStorage`.  It supports both paper
architectures (OPT and Llama 2) and the full Pensieve request shape:

- unified batches mixing prefill (multi-token) and generation
  (single-token) requests (§4.2);
- contexts scattered over non-contiguous pages (Figure 6);
- requests whose input tokens cover two disconnected context ranges —
  recomputed dropped prefix + new prompt — via Figure 8(d) sub-request
  splitting.

The model is intentionally small-scale (tests use 2-4 layers, hidden 32)
but architecturally faithful; it exists to prove the serving machinery
end-to-end: a conversation served over many turns with arbitrary
swap-out/swap-in/drop traffic must produce *identical* logits to a
stateless from-scratch run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.backends import Backend, get_backend
from repro.kernels import (
    AttentionRequest,
    disjoint_query_spans,
    split_disjoint_query,
)
from repro.kernels.packed_cache import (
    DecodeSlotSource,
    PackedBatch,
    PackedDecodeCache,
)
from repro.kvcache.storage import KVStorage
from repro.model.config import ModelConfig
from repro.model.layers import LayerNorm, Linear, OptMlp, RMSNorm, SwiGluMlp
from repro.model.rope import apply_rope


@dataclass
class ForwardRequest:
    """One request's share of a batched forward pass.

    Attributes:
        input_ids: ``[n_new]`` raw token ids to process this step: for a
            prefill request the (possibly recompute-prefixed) prompt, for a
            generation request the single last-output token.
        context_slots: physical slots of the **entire** context in logical
            order, length ``total_context``.  Includes the slots the new
            tokens will be written to.
        positions: ``[n_new]`` logical positions of the input tokens within
            the context.  Defaults to the trailing positions.
        dropped: number of leading input tokens that are a recomputed
            dropped prefix (positions ``[shared_prefix, shared_prefix +
            dropped)``); the rest are the new prompt at the trailing
            positions.
        shared_prefix: tokens of always-resident shared context (e.g. a
            common system prompt) at the very front of ``context_slots``;
            they are never recomputed and never written by this request.
        slot_view: optional :class:`~repro.kernels.packed_cache.DecodeSlotSource`
            describing the context *by reference* (block table + shared
            prefix slots) instead of as a materialised array.  When given,
            ``context_slots`` may be ``None``: the packed decode path
            reads the table incrementally and the full array is only
            materialised on demand for fallback kernels.  Requires
            ``dropped == 0`` (a recompute split has no single table).
    """

    input_ids: np.ndarray
    context_slots: Optional[Sequence[int]]
    positions: Optional[np.ndarray] = None
    dropped: int = 0
    shared_prefix: int = 0
    slot_view: Optional[DecodeSlotSource] = None

    def __post_init__(self) -> None:
        self.input_ids = np.asarray(self.input_ids, dtype=np.int64)
        n_new = self.input_ids.shape[0]
        if self.context_slots is None:
            if self.slot_view is None:
                raise ValueError(
                    "context_slots may only be omitted with a slot_view"
                )
            if self.dropped != 0:
                raise ValueError(
                    "slot_view-backed requests cannot carry a recompute split"
                )
            total = self.slot_view.total_len
        else:
            total = len(self.context_slots)
        self.total_context = total
        if self.dropped < 0 or self.dropped > n_new:
            raise ValueError(f"invalid dropped count {self.dropped}")
        if self.shared_prefix < 0 or self.shared_prefix + n_new > total:
            raise ValueError(
                f"{n_new} input tokens plus shared prefix "
                f"{self.shared_prefix} exceed context of {total} slots"
            )
        if self.positions is None:
            prompt = n_new - self.dropped
            lead = self.shared_prefix + np.arange(self.dropped)
            tail = np.arange(total - prompt, total)
            self.positions = np.concatenate([lead, tail])
        self.positions = np.asarray(self.positions, dtype=np.int64)
        if self.positions.shape[0] != n_new:
            raise ValueError("positions must match input token count")

    @property
    def num_new_tokens(self) -> int:
        return int(self.input_ids.shape[0])

    def full_context_slots(self) -> np.ndarray:
        """The entire context's physical slots in logical order,
        materialising from the slot view when ``context_slots`` is
        omitted."""
        if self.context_slots is not None:
            return np.asarray(self.context_slots, dtype=np.int64)
        view = self.slot_view
        table_slots = view.table.slots_array(0, view.table.length)
        if len(view.prefix) == 0:
            return table_slots
        return np.concatenate(
            [np.asarray(view.prefix, dtype=np.int64), table_slots]
        )

    def write_slots(self) -> np.ndarray:
        """Physical slots the new tokens' KV rows are written to."""
        if self.context_slots is not None:
            return np.asarray(self.context_slots, dtype=np.int64)[self.positions]
        view = self.slot_view
        prefix_len = len(view.prefix)
        # New tokens always live past the shared prefix, so their slots
        # come straight from the block table — no full materialisation.
        return np.fromiter(
            (view.table.slot(int(p) - prefix_len) for p in self.positions),
            dtype=np.int64,
            count=self.num_new_tokens,
        )


@dataclass
class _RequestPlan:
    """Per-batch precomputation for one request (layer-invariant).

    Everything here depends only on the request's *shape* — slot lists,
    sub-request spans, write targets — so it is computed once per forward
    pass instead of once per layer (the seed implementation re-derived all
    of it ``num_layers`` times).
    """

    write_slots: np.ndarray
    #: ``(q_lo, q_hi, slots, query_offset)`` per Figure 8(d) sub-request.
    #: ``None`` for slot_view-backed requests until a fallback kernel
    #: needs them (the packed decode path never does).
    spans: Optional[List[tuple]]
    #: True iff this request is a pure generation step (one trailing query
    #: token, no recompute split) — eligible for the batched decode kernel.
    decode_shaped: bool

    @staticmethod
    def build(request: "ForwardRequest") -> "_RequestPlan":
        decode_shaped = request.num_new_tokens == 1 and request.dropped == 0
        if request.context_slots is None:
            # Slot-view request: defer span materialisation; the packed
            # decode path reads the block table incrementally instead.
            return _RequestPlan(request.write_slots(), None, decode_shaped)
        return _RequestPlan(
            request.write_slots(),
            _RequestPlan._build_spans(request),
            decode_shaped,
        )

    @staticmethod
    def _build_spans(request: "ForwardRequest") -> List[tuple]:
        # One int64 conversion per request; span slot lists are zero-copy
        # views into it.
        slots = request.full_context_slots()
        return [
            (q_lo, q_hi, slots[:context_end], query_offset)
            for q_lo, q_hi, context_end, query_offset in disjoint_query_spans(
                request.num_new_tokens,
                len(slots),
                request.dropped,
                shared_prefix=request.shared_prefix,
            )
        ]

    def ensure_spans(self, request: "ForwardRequest") -> List[tuple]:
        if self.spans is None:
            self.spans = _RequestPlan._build_spans(request)
        return self.spans


@dataclass
class _LayerWeights:
    attn_norm: object
    q_proj: Linear
    k_proj: Linear
    v_proj: Linear
    o_proj: Linear
    mlp_norm: object
    mlp: object


class PagedTransformer:
    """Decoder-only transformer executing over a paged KV storage.

    Args:
        config: model hyper-parameters (use the tiny presets for tests).
        storage: slot-indexed K/V arrays shared with the cache manager.
        seed: weight initialisation seed (deterministic).
        use_fast_paths: dispatch to the vectorized kernel layer
            (:mod:`repro.kernels.batched`) with per-batch hoisting of the
            sub-request split and write-slot computation.  ``False`` runs
            the original per-layer, per-request tiled path — kept as the
            end-to-end baseline the benchmark harness measures against.
        packing_cache: keep a :class:`PackedDecodeCache` so all-decode
            batches of slot_view-backed requests reuse their packed slot
            table and gathered-KV staging buffers across iterations
            instead of rebuilding both every step.  Requires
            ``use_fast_paths``; numerically transparent either way.
    """

    def __init__(
        self,
        config: ModelConfig,
        storage: KVStorage,
        seed: int = 0,
        use_fast_paths: bool = True,
        packing_cache: bool = True,
        backend: "str | Backend" = "paged",
    ) -> None:
        if storage.config is not config and (
            storage.config.num_layers != config.num_layers
            or storage.config.num_kv_heads != config.num_kv_heads
            or storage.config.head_dim != config.head_dim
        ):
            raise ValueError("storage shape does not match model config")
        self.config = config
        self.storage = storage
        self.use_fast_paths = use_fast_paths
        # Every attention kernel is reached through the backend (RPR006);
        # it also owns the decode packing cache's staging layout.
        self.backend: Backend = (
            get_backend(backend) if isinstance(backend, str) else backend
        )
        self.decode_cache: Optional[PackedDecodeCache] = (
            self.backend.create_decode_cache()
            if (packing_cache and use_fast_paths)
            else None
        )
        rng = np.random.default_rng(seed)
        h = config.hidden_size
        kv = config.kv_dim
        self.embedding = rng.standard_normal((config.vocab_size, h)) * 0.02
        if config.arch == "opt":
            self.pos_embedding = rng.standard_normal((config.max_position, h)) * 0.02
        else:
            self.pos_embedding = None
        self.layers: List[_LayerWeights] = []
        with_bias = config.arch == "opt"
        for _ in range(config.num_layers):
            if config.arch == "opt":
                attn_norm: object = LayerNorm.identity(h)
                mlp_norm: object = LayerNorm.identity(h)
                mlp: object = OptMlp.init(rng, h, config.intermediate_size)
            else:
                attn_norm = RMSNorm.identity(h)
                mlp_norm = RMSNorm.identity(h)
                mlp = SwiGluMlp.init(rng, h, config.intermediate_size)
            self.layers.append(
                _LayerWeights(
                    attn_norm=attn_norm,
                    q_proj=Linear.init(rng, h, h, with_bias=with_bias),
                    k_proj=Linear.init(rng, h, kv, with_bias=with_bias),
                    v_proj=Linear.init(rng, h, kv, with_bias=with_bias),
                    o_proj=Linear.init(rng, h, h, with_bias=with_bias),
                    mlp_norm=mlp_norm,
                    mlp=mlp,
                )
            )
        self.final_norm = (
            LayerNorm.identity(h) if config.arch == "opt" else RMSNorm.identity(h)
        )
        self.lm_head = self.embedding.T  # weight tying

    # ------------------------------------------------------------------

    def forward(self, batch: Sequence[ForwardRequest]) -> List[np.ndarray]:
        """Run one batched iteration.

        Writes the new tokens' K/V into the paged storage (Figure 8 step c)
        and returns, per request, the ``[n_new, vocab]`` logits of its input
        tokens (callers typically sample from the last row).
        """
        if not batch:
            return []
        # Unified batch formation (§4.4.1): concatenate all requests'
        # input tokens into one token-major activation tensor.
        hidden = [self._embed(r) for r in batch]
        x = np.concatenate(hidden, axis=0)  # [sum_n, h]
        bounds = np.cumsum([0] + [r.num_new_tokens for r in batch])
        # Layer-invariant structure (sub-request spans, write slots) is
        # derived once per batch, not once per layer.
        plans = (
            [_RequestPlan.build(r) for r in batch] if self.use_fast_paths else None
        )
        # Incremental pack: ONCE per forward pass (the slot layout is
        # layer-invariant), not once per layer, and only the rows whose
        # block table changed since the previous iteration are repacked.
        packed: Optional[PackedBatch] = None
        if (
            plans is not None
            and self.decode_cache is not None
            and all(
                p.decode_shaped and r.slot_view is not None
                for p, r in zip(plans, batch)
            )
        ):
            packed = self.decode_cache.pack([r.slot_view for r in batch])

        for layer_idx, w in enumerate(self.layers):
            x = x + self._attention_block(
                layer_idx, w, x, batch, bounds, plans, packed
            )
            x = x + w.mlp(w.mlp_norm(x))

        x = self.final_norm(x)
        logits = x @ self.lm_head
        return [logits[bounds[i] : bounds[i + 1]] for i in range(len(batch))]

    def next_token_logits(self, batch: Sequence[ForwardRequest]) -> List[np.ndarray]:
        """Logits for the *last* input token of each request (the row used
        to predict the next token)."""
        return [logits[-1] for logits in self.forward(batch)]

    def greedy_token(self, logits: np.ndarray) -> int:
        """Deterministic argmax sampling."""
        return int(np.argmax(logits))

    # ------------------------------------------------------------------

    def _embed(self, request: ForwardRequest) -> np.ndarray:
        x = self.embedding[request.input_ids]
        if self.pos_embedding is not None:
            x = x + self.pos_embedding[request.positions]
        return x

    def _attention_block(
        self,
        layer_idx: int,
        w: _LayerWeights,
        x: np.ndarray,
        batch: Sequence[ForwardRequest],
        bounds: np.ndarray,
        plans: Optional[List[_RequestPlan]] = None,
        packed: Optional[PackedBatch] = None,
    ) -> np.ndarray:
        cfg = self.config
        normed = w.attn_norm(x)
        q = w.q_proj(normed).reshape(-1, cfg.num_heads, cfg.head_dim)
        k = w.k_proj(normed).reshape(-1, cfg.num_kv_heads, cfg.head_dim)
        v = w.v_proj(normed).reshape(-1, cfg.num_kv_heads, cfg.head_dim)

        if packed is not None:
            # All-decode packed path: one token per request, rows in batch
            # order — RoPE, the KV store and the attention all run as
            # single whole-batch operations, and the attention reads the
            # cache through the incremental staging buffers.
            positions = np.fromiter(
                (int(r.positions[0]) for r in batch),
                dtype=np.int64,
                count=len(batch),
            )
            if cfg.arch == "llama":
                q = apply_rope(q, positions)
                k = apply_rope(k, positions)
            write_slots = np.concatenate([p.write_slots for p in plans])
            self.storage.write(layer_idx, write_slots, k, v)
            out = self.backend.decode_attention(
                q,
                packed,
                layer_idx,
                self.storage.k[layer_idx],
                self.storage.v[layer_idx],
            )
            return w.o_proj(out.reshape(x.shape[0], -1))

        outputs = np.empty_like(q)
        kernel_requests = []
        owners: List[slice] = []
        for i, request in enumerate(batch):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            q_i, k_i, v_i = q[lo:hi], k[lo:hi], v[lo:hi]
            if cfg.arch == "llama":
                q_i = apply_rope(q_i, request.positions)
                k_i = apply_rope(k_i, request.positions)
            if plans is None:
                # Reference path: re-derive the split and write targets
                # per layer, exactly as the seed implementation did.
                self.storage.write(layer_idx, request.write_slots(), k_i, v_i)
                subs = split_disjoint_query(
                    q_i,
                    list(request.full_context_slots()),
                    request.dropped,
                    shared_prefix=request.shared_prefix,
                )
            else:
                plan = plans[i]
                # Figure 8 step (c): store the new tokens' K/V.
                self.storage.write(layer_idx, plan.write_slots, k_i, v_i)
                subs = [
                    AttentionRequest(
                        query=q_i[q_lo:q_hi], slots=slots, query_offset=offset
                    )
                    for q_lo, q_hi, slots, offset in plan.ensure_spans(request)
                ]
            start = lo
            for sub in subs:
                kernel_requests.append(sub)
                owners.append(slice(start, start + sub.num_query_tokens))
                start += sub.num_query_tokens

        k_layer = self.storage.k[layer_idx]
        v_layer = self.storage.v[layer_idx]
        if plans is None:
            sub_outputs = self.backend.multi_token_attention(
                kernel_requests, k_layer, v_layer
            )
        elif all(plan.decode_shaped for plan in plans):
            # All-generation batch: one packed pass over the cache for the
            # entire batch (vLLM's PagedAttention decode formulation).
            sub_outputs = self.backend.batched_decode_attention(
                kernel_requests, k_layer, v_layer
            )
        else:
            # Ragged prefill/mixed batch: one segment-packed pass for all
            # sub-requests (falls back internally to the per-request
            # vectorized kernel when padding would be pathological).
            sub_outputs = self.backend.ragged_attention(
                kernel_requests, k_layer, v_layer
            )
        for region, out in zip(owners, sub_outputs):
            outputs[region] = out
        return w.o_proj(outputs.reshape(x.shape[0], -1))
