"""Reproduction of *Stateful Large Language Model Serving with Pensieve*
(EuroSys 2025).

Subpackages:

- :mod:`repro.sim` — discrete-event simulation core;
- :mod:`repro.gpu` — simulated GPU substrate (roofline cost model, PCIe);
- :mod:`repro.kvcache` — paged two-tier KV-cache management;
- :mod:`repro.kernels` — numpy attention kernels incl. the multi-token
  paged kernel;
- :mod:`repro.model` — numpy OPT/Llama-style transformers and Table 1
  configurations;
- :mod:`repro.serving` — request lifecycle, batching, baseline engines,
  metrics;
- :mod:`repro.core` — the Pensieve engine itself;
- :mod:`repro.workload` — conversation datasets and arrival processes;
- :mod:`repro.experiments` — one module per paper figure/table.
"""

__version__ = "1.0.0"
