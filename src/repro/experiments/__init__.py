"""Experiment harness: one module per paper figure/table.

Each module exposes a ``run_*`` function returning plain data (lists of
dict rows) plus a ``format_*`` helper printing the same rows the paper's
figure/table reports.  The benchmark suite under ``benchmarks/`` calls
these and asserts the paper's qualitative claims (who wins, by roughly
what factor, where crossovers fall).

Index (see DESIGN.md §3 for the full mapping):

- :mod:`repro.experiments.fig03` — prefill vs generation cost;
- :mod:`repro.experiments.fig04` — attention cost vs context size;
- :mod:`repro.experiments.fig10` — single-GPU serving performance;
- :mod:`repro.experiments.fig11` — 4-GPU serving performance;
- :mod:`repro.experiments.fig12` — multi-token kernel microbenchmark;
- :mod:`repro.experiments.fig13` — unified-scheduling ablation;
- :mod:`repro.experiments.fig14` — eviction-policy comparison;
- :mod:`repro.experiments.fig15` — user think-time sensitivity;
- :mod:`repro.experiments.fig15x` — extreme think times, two-tier vs
  three-tier (disk) stack;
- :mod:`repro.experiments.tab02` — dataset statistics.
"""

from repro.experiments.common import (
    EngineFactory,
    RatePoint,
    run_rate_sweep,
    run_serving_once,
    throughput_at_latency,
)

__all__ = [
    "EngineFactory",
    "RatePoint",
    "run_serving_once",
    "run_rate_sweep",
    "throughput_at_latency",
]
