"""Figure 12: multi-token attention kernel microbenchmark.

Latency of the attention operator for a batch of 32 requests, each with 8
query tokens, against growing numbers of past KV-tokens in non-contiguous
memory, across four implementations:

- ``ideal``: past KV-tokens in contiguous memory (hypothetical best case);
- ``pensieve``: the paper's multi-token paged kernel;
- ``copyout``: copy scattered KV out to contiguous memory, then attend;
- ``multiround``: one single-token PagedAttention round per query token.

Two modes are provided: the **cost-model** mode reproduces the paper's
figure at A100 scale, and the **measured** mode actually times the numpy
kernels of :mod:`repro.kernels` on a small model, demonstrating the same
ordering with real executions.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.gpu.costmodel import BatchShape, CostModel, KernelVariant
from repro.gpu.device import A100_80GB, GpuSpec
from repro.kernels import (  # repro: ignore[RPR006] -- Figure 12 compares the straw-man kernels themselves; no backend choice exists to route through
    AttentionRequest,
    copyout_attention,
    multi_token_attention,
    multiround_attention,
)
from repro.model.config import OPT_13B, ModelConfig, tiny_opt_config

DEFAULT_CONTEXT_SIZES = (0, 512, 1024, 2048, 4096, 8192, 16384)

_VARIANTS = (
    ("ideal", KernelVariant.IDEAL_CONTIGUOUS),
    ("pensieve", KernelVariant.PENSIEVE_PAGED),
    ("copyout", KernelVariant.COPYOUT),
    ("multiround", KernelVariant.MULTIROUND_PAGED),
)


def run_fig12(
    config: ModelConfig = OPT_13B,
    spec: GpuSpec = A100_80GB,
    batch_size: int = 32,
    query_tokens: int = 8,
    context_sizes: Sequence[int] = DEFAULT_CONTEXT_SIZES,
) -> List[Dict[str, float]]:
    """Cost-model reproduction of Figure 12 (A100-scale latencies)."""
    cm = CostModel(config, spec)
    rows: List[Dict[str, float]] = []
    for past in context_sizes:
        shape = BatchShape.uniform(batch_size, query_tokens, past + query_tokens)
        row: Dict[str, float] = {"past_kv_tokens": past}
        for name, variant in _VARIANTS:
            row[name + "_s"] = cm.attention_time(shape, variant)
        rows.append(row)
    return rows


def run_fig12_measured(
    batch_size: int = 8,
    query_tokens: int = 8,
    context_sizes: Sequence[int] = (64, 256, 1024),
    repeats: int = 3,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Wall-clock measurement of the numpy kernels (small scale).

    The absolute numbers are numpy's, not a GPU's; the *ordering* —
    pensieve tracks ideal-contiguous while multiround pays per-token
    rounds and copyout pays the copy — is the Figure 12 claim being
    demonstrated.
    """
    config = tiny_opt_config(num_layers=1, hidden_size=64, num_heads=8)
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, float]] = []
    for past in context_sizes:
        ctx = past + query_tokens
        num_slots = ctx * 2
        k_cache = rng.standard_normal(
            (num_slots, config.num_kv_heads, config.head_dim)
        )
        v_cache = rng.standard_normal(
            (num_slots, config.num_kv_heads, config.head_dim)
        )
        requests = []
        for _ in range(batch_size):
            slots = list(rng.permutation(num_slots)[:ctx])
            query = rng.standard_normal(
                (query_tokens, config.num_heads, config.head_dim)
            )
            requests.append(AttentionRequest(query=query, slots=slots))
        contiguous = [
            AttentionRequest(query=r.query, slots=list(range(ctx)))
            for r in requests
        ]

        def timed(fn, reqs) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn(reqs, k_cache, v_cache)
                best = min(best, time.perf_counter() - start)
            return best

        rows.append(
            {
                "past_kv_tokens": past,
                "ideal_s": timed(multi_token_attention, contiguous),
                "pensieve_s": timed(multi_token_attention, requests),
                "copyout_s": timed(copyout_attention, requests),
                "multiround_s": timed(multiround_attention, requests),
            }
        )
    return rows


def format_fig12(rows: List[Dict[str, float]]) -> str:
    lines = [
        "Figure 12 — attention operator latency, batch 32, query size 8",
        f"{'past KV':>8} {'ideal':>10} {'pensieve':>10} {'copyout':>10} "
        f"{'multiround':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['past_kv_tokens']:>8d} "
            f"{row['ideal_s'] * 1e3:>9.2f}ms {row['pensieve_s'] * 1e3:>9.2f}ms "
            f"{row['copyout_s'] * 1e3:>9.2f}ms {row['multiround_s'] * 1e3:>10.2f}ms"
        )
    return "\n".join(lines)
