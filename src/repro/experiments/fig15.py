"""Figure 15: impact of user think time.

Pensieve on Llama 2-13B / ShareGPT with average user think times of 60,
120, 300 and 600 seconds, plus vLLM at 600 s as a comparison point.  The
paper's finding (§6.7): longer think times cause past KV-tokens to drop
from the cache at a higher rate, shrinking (but not erasing) Pensieve's
advantage — even at 600 s Pensieve still beats vLLM.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.engine import PensieveEngine
from repro.experiments.common import RatePoint, format_curve_table, run_rate_sweep
from repro.experiments.fig14 import cache_extras
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import LLAMA2_13B, ModelConfig
from repro.serving.stateless import make_vllm
from repro.workload.dataset import SHAREGPT, DatasetSpec

DEFAULT_RATES = (2.0, 4.0, 6.0, 8.0, 10.0)
DEFAULT_THINK_TIMES = (60.0, 120.0, 300.0, 600.0)


def run_fig15(
    config: ModelConfig = LLAMA2_13B,
    dataset: DatasetSpec = SHAREGPT,
    rates: Sequence[float] = DEFAULT_RATES,
    think_times: Sequence[float] = DEFAULT_THINK_TIMES,
    duration: float = 500.0,
    seed: int = 7,
    spec: GpuSpec = A100_80GB,
    cpu_cache_tokens: int = None,
    slo=None,
    hist=None,
    flight=None,
) -> Dict[str, List[RatePoint]]:
    """Sweep Pensieve across think times, plus the vLLM reference curve.

    ``cpu_cache_tokens`` can shrink the CPU tier so that cache pressure —
    the mechanism behind the think-time sensitivity — shows up at
    benchmark-scale durations.
    """
    curves: Dict[str, List[RatePoint]] = {}
    for think in think_times:
        curves[f"Pensieve think={think:g}s"] = run_rate_sweep(
            lambda loop: PensieveEngine(
                loop, config, spec, cpu_cache_tokens=cpu_cache_tokens
            ),
            dataset,
            rates,
            duration=duration,
            think_time_mean=think,
            seed=seed,
            extras_fn=cache_extras,
            slo=slo,
            hist=hist,
            flight=flight,
        )
    # vLLM reference curves at both extremes, so the *gap* can be compared
    # across think times (the paper plots vLLM at 600 s as the reference).
    for think in (min(think_times), max(think_times)):
        curves[f"vLLM think={think:g}s"] = run_rate_sweep(
            lambda loop: make_vllm(loop, config, spec),
            dataset,
            rates,
            duration=duration,
            think_time_mean=think,
            seed=seed,
            slo=slo,
            hist=hist,
            flight=flight,
        )
    return curves


def format_fig15(curves: Dict[str, List[RatePoint]], hist=None) -> str:
    from repro.experiments.fig10 import _attribution_block

    parts = ["Figure 15 — impact of average user think time (Llama 2-13B, ShareGPT)"]
    for name, points in curves.items():
        parts.append(format_curve_table(name, points))
    parts.append(_attribution_block(hist))
    return "\n".join(p for p in parts if p)
