"""Figure 11: multi-GPU (tensor-parallel) serving performance.

OPT-66B and Llama 2-70B served on 4 GPUs over ShareGPT.  Larger models
amplify Pensieve's advantage (§6.3): compute grows faster than KV size, and
per-GPU CPU memory scales with the GPU count, so relatively more past
KV-tokens fit in cache.  The paper reports 2.04x vLLM / 1.64x
TensorRT-LLM for OPT-66B at 200 ms and 3.0x / 2.47x for Llama 2-70B at
400 ms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import RatePoint
from repro.experiments.fig10 import format_fig10, run_fig10
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import LLAMA2_70B, OPT_66B, ModelConfig
from repro.workload.dataset import SHAREGPT, DatasetSpec

DEFAULT_RATES = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

PAPER_LATENCY_TARGETS = {
    "OPT-66B": 0.200,
    "Llama 2-70B": 0.400,
}

PAPER_RATIOS = {
    "OPT-66B": {"vLLM": 2.04, "TensorRT-LLM": 1.64},
    "Llama 2-70B": {"vLLM": 3.0, "TensorRT-LLM": 2.47},
}


def run_fig11(
    config: ModelConfig = OPT_66B,
    dataset: DatasetSpec = SHAREGPT,
    rates: Sequence[float] = DEFAULT_RATES,
    duration: float = 500.0,
    seed: int = 7,
    spec: GpuSpec = A100_80GB,
    systems: Sequence[str] = None,
    slo=None,
    hist=None,
    flight=None,
) -> Dict[str, List[RatePoint]]:
    """Sweep the four systems for one 4-GPU model on ShareGPT."""
    if config.num_gpus < 2:
        raise ValueError(f"{config.name} is not a multi-GPU configuration")
    return run_fig10(
        config=config,
        dataset=dataset,
        rates=rates,
        duration=duration,
        seed=seed,
        spec=spec,
        systems=systems,
        slo=slo,
        hist=hist,
        flight=flight,
    )


def format_fig11(curves: Dict[str, List[RatePoint]], config: ModelConfig,
                 hist=None) -> str:
    return format_fig10(curves, config, SHAREGPT, hist=hist).replace(
        "Figure 10", "Figure 11"
    ).replace("(1 GPU)", f"({config.num_gpus} GPUs)")
