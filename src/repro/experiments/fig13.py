"""Figure 13: effect of unified scheduling.

Pensieve with unified prefill+generation batches versus the same engine
scheduling the two phases separately (vLLM-style).  Unifying avoids
executing the prefill phase as its own small-batch kernel invocations, so
it wins on both throughput and latency (§6.5; evaluated on Llama 2-13B /
ShareGPT in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.engine import PensieveEngine
from repro.experiments.common import RatePoint, format_curve_table, run_rate_sweep
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import LLAMA2_13B, ModelConfig
from repro.workload.dataset import SHAREGPT, DatasetSpec

DEFAULT_RATES = (2.0, 4.0, 6.0, 8.0, 10.0, 12.0)


def run_fig13(
    config: ModelConfig = LLAMA2_13B,
    dataset: DatasetSpec = SHAREGPT,
    rates: Sequence[float] = DEFAULT_RATES,
    duration: float = 500.0,
    seed: int = 7,
    spec: GpuSpec = A100_80GB,
    tracer=None,
    slo=None,
    hist=None,
    flight=None,
) -> Dict[str, List[RatePoint]]:
    """Sweep Pensieve with and without unified scheduling."""
    factories = {
        "unified": lambda loop: PensieveEngine(loop, config, spec, unified=True),
        "separate": lambda loop: PensieveEngine(
            loop, config, spec, unified=False, name="Pensieve (separate)"
        ),
    }
    return {
        name: run_rate_sweep(
            factory, dataset, rates, duration=duration, seed=seed,
            tracer=tracer, slo=slo, hist=hist, flight=flight,
        )
        for name, factory in factories.items()
    }


def format_fig13(curves: Dict[str, List[RatePoint]], hist=None) -> str:
    from repro.experiments.fig10 import _attribution_block

    parts = ["Figure 13 — unified vs separate prefill/generation scheduling"]
    for name, points in curves.items():
        parts.append(format_curve_table(name, points))
    parts.append(_attribution_block(hist))
    return "\n".join(p for p in parts if p)
