"""Figure 14: effect of the eviction policy.

Pensieve's retention-value policy versus classic LRU on OPT-13B /
ShareGPT.  The paper's findings (§6.6): the policies track each other
until roughly 3 requests/second; beyond that, the retention-value policy
wins — its CPU cache hit rate is up to 4.4 percentage points higher and
it reduces recomputed KV-tokens by up to 14.6 %.

Besides the latency–throughput curves, this experiment extracts the cache
statistics (hit rates, recomputed tokens) that the paper quotes from its
execution-trace analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.engine import PensieveEngine
from repro.experiments.common import RatePoint, format_curve_table, run_rate_sweep
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import OPT_13B, ModelConfig
from repro.serving.engine import EngineBase
from repro.workload.dataset import SHAREGPT, DatasetSpec

DEFAULT_RATES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


def cache_extras(engine: EngineBase) -> Dict[str, float]:
    """Cache statistics for one finished run (per the §6.6 analysis)."""
    stats = engine.manager.stats
    lookups = max(1, stats["lookup_tokens"])
    return {
        "hit_rate": (stats["gpu_hit_tokens"] + stats["cpu_hit_tokens"]) / lookups,
        "cpu_hit_rate": stats["cpu_hit_tokens"] / lookups,
        "recomputed_tokens": stats["recomputed_tokens"],
        "dropped_tokens": stats["dropped_tokens"],
    }


def run_fig14(
    config: ModelConfig = OPT_13B,
    dataset: DatasetSpec = SHAREGPT,
    rates: Sequence[float] = DEFAULT_RATES,
    duration: float = 500.0,
    seed: int = 7,
    spec: GpuSpec = A100_80GB,
    cpu_cache_tokens: int = None,
    slo=None,
    hist=None,
    flight=None,
) -> Dict[str, List[RatePoint]]:
    """Sweep Pensieve under both eviction policies.

    ``cpu_cache_tokens`` can shrink the CPU tier to increase eviction
    pressure (useful for fast benchmark runs; ``None`` keeps the full
    220 GB/GPU tier of the paper's testbed).
    """
    factories = {
        "retention-value": lambda loop: PensieveEngine(
            loop, config, spec, policy="retention",
            cpu_cache_tokens=cpu_cache_tokens,
        ),
        "lru": lambda loop: PensieveEngine(
            loop, config, spec, policy="lru",
            cpu_cache_tokens=cpu_cache_tokens, name="Pensieve (LRU)",
        ),
    }
    return {
        name: run_rate_sweep(
            factory, dataset, rates, duration=duration, seed=seed,
            extras_fn=cache_extras, slo=slo, hist=hist, flight=flight,
        )
        for name, factory in factories.items()
    }


def format_fig14(curves: Dict[str, List[RatePoint]], hist=None) -> str:
    from repro.experiments.fig10 import _attribution_block

    parts = ["Figure 14 — retention-value vs LRU eviction (OPT-13B, ShareGPT)"]
    for name, points in curves.items():
        parts.append(format_curve_table(name, points))
        parts.append(
            "  rate -> hit rate / recomputed tokens: "
            + ", ".join(
                f"{p.request_rate:g}: {p.extras['hit_rate']:.3f}/"
                f"{int(p.extras['recomputed_tokens'])}"
                for p in points
            )
        )
    parts.append(_attribution_block(hist))
    return "\n".join(p for p in parts if p)
