"""Figure 4: attention cost of a 32-token chunk vs context size.

The measurement that motivates evicting *leading* tokens: attention time
for a fixed chunk grows linearly with the context it attends to, while
non-attention time is constant.  Values are normalised by the per-layer
non-attention time, exactly as in the paper's figure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.gpu.costmodel import CostModel
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import OPT_13B, ModelConfig

DEFAULT_CONTEXT_SIZES = (32, 256, 1024, 2048, 4096, 8192, 16384)


def run_fig04(
    config: ModelConfig = OPT_13B,
    spec: GpuSpec = A100_80GB,
    chunk: int = 32,
    batch_size: int = 32,
    context_sizes: Sequence[int] = DEFAULT_CONTEXT_SIZES,
) -> List[Dict[str, float]]:
    """Compute normalized attention cost per context size."""
    cm = CostModel(config, spec)
    norm = cm.non_attention_chunk_time(chunk, batch_size=batch_size)
    rows: List[Dict[str, float]] = []
    for ctx in context_sizes:
        attention = cm.attention_chunk_time(chunk, ctx, batch_size=batch_size)
        rows.append(
            {
                "context_tokens": ctx,
                "attention_s": attention,
                "non_attention_s": norm,
                "normalized": attention / norm,
            }
        )
    return rows


def format_fig04(rows: List[Dict[str, float]]) -> str:
    lines = [
        "Figure 4 — attention time of a 32-token chunk, normalized by "
        "per-layer non-attention time",
        f"{'context':>8} {'normalized attention cost':>26}",
    ]
    for row in rows:
        lines.append(f"{row['context_tokens']:>8d} {row['normalized']:>26.3f}")
    return "\n".join(lines)
