"""Table 2: dataset statistics.

Verifies the synthetic ShareGPT / UltraChat generators reproduce the
paper's corpus statistics (mean turns, mean request input/output lengths)
and the 16384-token context cap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workload.dataset import (
    SHAREGPT,
    ULTRACHAT,
    DatasetSpec,
    dataset_statistics,
    generate_conversations,
)

#: The paper's Table 2.
PAPER_TABLE2 = {
    "ShareGPT": {
        "mean_turns": 5.56,
        "mean_input_len": 37.77,
        "mean_output_len": 204.58,
    },
    "UltraChat": {
        "mean_turns": 3.86,
        "mean_input_len": 51.78,
        "mean_output_len": 257.81,
    },
}


def run_tab02(
    num_conversations: int = 3000, seed: int = 0
) -> List[Dict[str, float]]:
    """Generate both corpora and report measured vs paper statistics."""
    rows: List[Dict[str, float]] = []
    for spec in (SHAREGPT, ULTRACHAT):
        conversations = generate_conversations(
            spec,
            num_conversations=num_conversations,
            request_rate=1.0,
            seed=seed,
        )
        measured = dataset_statistics(conversations)
        paper = PAPER_TABLE2[spec.name]
        rows.append(
            {
                "dataset": spec.name,
                "mean_turns": measured["mean_turns"],
                "paper_mean_turns": paper["mean_turns"],
                "mean_input_len": measured["mean_input_len"],
                "paper_mean_input_len": paper["mean_input_len"],
                "mean_output_len": measured["mean_output_len"],
                "paper_mean_output_len": paper["mean_output_len"],
                "max_context": measured["max_context"],
            }
        )
    return rows


def format_tab02(rows: List[Dict[str, float]]) -> str:
    lines = [
        "Table 2 — dataset statistics (measured vs paper)",
        f"{'dataset':>10} {'turns':>12} {'input len':>16} {'output len':>17}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:>10} "
            f"{row['mean_turns']:>5.2f}/{row['paper_mean_turns']:<6.2f} "
            f"{row['mean_input_len']:>7.2f}/{row['paper_mean_input_len']:<8.2f} "
            f"{row['mean_output_len']:>8.2f}/{row['paper_mean_output_len']:<8.2f}"
        )
    return "\n".join(lines)
