"""Shared experiment machinery: serving runs, rate sweeps, curve queries.

The latency–throughput methodology follows the paper's end-to-end
evaluation (§6.2): for each request rate, a fixed scripted workload is
served to completion by each engine; the achieved throughput and the
normalized latency are one point of the engine's curve.  "Throughput at a
latency target" is then read off the curve by interpolation — this is how
the paper states results like "1.36x the throughput of vLLM at 120 ms per
token latency".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.serving.engine import EngineBase
from repro.serving.request import Conversation
from repro.sim.events import EventLoop
from repro.workload.dataset import DatasetSpec, generate_workload
from repro.workload.driver import ConversationDriver

#: Builds a fresh engine bound to the given loop.
EngineFactory = Callable[[EventLoop], EngineBase]


@dataclass(frozen=True)
class RatePoint:
    """One point of a latency–throughput curve."""

    request_rate: float
    throughput_rps: float
    mean_norm_latency: float
    p90_norm_latency: float
    num_requests: int
    extras: Dict[str, float]

    def as_row(self) -> Dict[str, float]:
        row = {
            "rate": self.request_rate,
            "throughput_rps": round(self.throughput_rps, 4),
            "mean_norm_latency_ms": round(self.mean_norm_latency * 1e3, 2),
            "p90_norm_latency_ms": round(self.p90_norm_latency * 1e3, 2),
        }
        row.update(self.extras)
        return row


def run_serving_once(
    engine_factory: EngineFactory,
    conversations: Sequence[Conversation],
    max_events: int = 50_000_000,
    until: Optional[float] = None,
    warmup: float = 0.0,
    tracer=None,
    slo=None,
    hist=None,
    flight=None,
    sampler=None,
) -> tuple:
    """Serve one scripted workload (to completion, or up to ``until``).

    Returns ``(engine, stats)``; the engine is returned so callers can
    inspect traces, cache statistics or suspension counters.  Passing a
    :class:`repro.obs.Tracer` records the run's full span/counter/gauge
    telemetry (still-open request spans are closed, marked truncated, at
    the simulation's end time).

    Passing any of ``slo`` (:class:`repro.obs.SloConfig`), ``hist``
    (:class:`repro.obs.HistogramSet`) or ``flight``
    (:class:`repro.obs.FlightRecorder`) arms the engine's SLO metrics
    layer — shared ``hist``/``flight`` instances let sweeps aggregate
    across runs.  A :class:`repro.obs.MetricsSampler` passed as
    ``sampler`` is attached to the loop before the run starts.
    """
    loop = EventLoop()
    engine = engine_factory(loop)
    if tracer is not None:
        engine.set_tracer(tracer)
    if slo is not None or hist is not None or flight is not None:
        engine.enable_slo_metrics(slo=slo, hist=hist, flight=flight)
    if sampler is not None:
        sampler.attach(loop, engine)
    driver = ConversationDriver(loop, engine, conversations)
    driver.run(until=until, max_events=max_events)
    if tracer is not None and tracer.enabled:
        tracer.close_open(loop.now)
    return engine, driver.stats(warmup=warmup, until=until)


def run_rate_sweep(
    engine_factory: EngineFactory,
    dataset: DatasetSpec,
    rates: Sequence[float],
    duration: float = 600.0,
    warmup_fraction: float = 0.3,
    think_time_mean: float = 60.0,
    seed: int = 7,
    extras_fn: Optional[Callable[[EngineBase], Dict[str, float]]] = None,
    tracer=None,
    slo=None,
    hist=None,
    flight=None,
) -> List[RatePoint]:
    """Sweep request rates and collect one latency–throughput curve.

    For each rate, conversation arrivals are sustained over ``duration``
    simulated seconds (open-loop: the offered load never dries up inside
    the measurement window) and statistics are taken over
    ``(warmup_fraction * duration, duration]`` — so in the stable regime
    the measured throughput tracks the offered rate, and past saturation
    it plateaus at system capacity while latency climbs, which is exactly
    the curve shape of Figures 10/11.

    Every engine under comparison must be swept with the same ``seed`` so
    the scripted conversations (lengths, think times, arrival pattern) are
    identical across systems.

    ``slo`` / ``hist`` / ``flight`` are forwarded to every per-rate run;
    passing one shared :class:`repro.obs.HistogramSet` /
    :class:`repro.obs.FlightRecorder` aggregates SLO metrics across the
    whole sweep (each rate gets a fresh engine, the sinks persist).
    """
    points: List[RatePoint] = []
    for rate in rates:
        conversations = generate_workload(
            dataset,
            request_rate=rate,
            duration=duration,
            think_time_mean=think_time_mean,
            seed=seed,
        )
        if tracer is not None and tracer.enabled:
            tracer.instant("sweep_point", track="experiment", rate=rate)
        engine, stats = run_serving_once(
            engine_factory,
            conversations,
            until=duration,
            warmup=warmup_fraction * duration,
            tracer=tracer,
            slo=slo,
            hist=hist,
            flight=flight,
        )
        extras = extras_fn(engine) if extras_fn else {}
        points.append(
            RatePoint(
                request_rate=rate,
                throughput_rps=stats.throughput_rps,
                mean_norm_latency=stats.mean_normalized_latency,
                p90_norm_latency=stats.p90_normalized_latency,
                num_requests=stats.num_requests,
                extras=extras,
            )
        )
    return points


def throughput_at_latency(
    points: Sequence[RatePoint],
    latency_target: float,
    use_p90: bool = False,
) -> float:
    """Maximum achieved throughput whose normalized latency is within
    ``latency_target`` seconds/token, linearly interpolating between the
    last compliant and the first violating point of the curve.

    Falls back to the best compliant point when the curve never crosses
    the target, and to 0 if even the lightest load violates it.
    """
    if not points:
        raise ValueError("empty curve")
    ordered = sorted(points, key=lambda p: p.request_rate)
    metric = (
        (lambda p: p.p90_norm_latency) if use_p90
        else (lambda p: p.mean_norm_latency)
    )
    best = 0.0
    for i, point in enumerate(ordered):
        if metric(point) <= latency_target:
            best = max(best, point.throughput_rps)
            nxt = ordered[i + 1] if i + 1 < len(ordered) else None
            if nxt is not None and metric(nxt) > latency_target:
                # Interpolate the crossing between this point and the next.
                span = metric(nxt) - metric(point)
                if span > 0:
                    frac = (latency_target - metric(point)) / span
                    best = max(
                        best,
                        point.throughput_rps
                        + frac * (nxt.throughput_rps - point.throughput_rps),
                    )
    return best


def format_curve_table(name: str, points: Sequence[RatePoint]) -> str:
    """Human-readable curve table for experiment reports."""
    lines = [f"== {name} =="]
    lines.append(
        f"{'rate':>6} {'thr(req/s)':>11} {'mean nlat(ms)':>14} {'p90 nlat(ms)':>13}"
    )
    for p in sorted(points, key=lambda p: p.request_rate):
        lines.append(
            f"{p.request_rate:>6.2f} {p.throughput_rps:>11.3f} "
            f"{p.mean_norm_latency * 1e3:>14.1f} {p.p90_norm_latency * 1e3:>13.1f}"
        )
    return "\n".join(lines)
