"""Figure 15 extension (fig15x): extreme think times with a disk tier.

The paper's Figure 15 stops at 600 s of average user think time, where
past KV-tokens drop from the two-tier cache at a high enough rate to
shrink Pensieve's advantage.  This extension pushes think time past the
paper's range — the long-idle-user regime where even the CPU tier cannot
hold parked conversations — and compares the two-tier system against the
three-tier stack, which demotes cold context to an NVMe-modeled disk
store (cross-tier retention-value placement) instead of dropping it.

The hypothesis being measured: as think time grows, the two-tier curve
degrades toward stateless recompute while the three-tier curve holds its
hit rate, at the price of NVMe read traffic on every return turn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.engine import PensieveEngine
from repro.experiments.common import RatePoint, format_curve_table, run_rate_sweep
from repro.gpu.device import A100_80GB, GpuSpec
from repro.gpu.nvme import NvmeDirection
from repro.model.config import LLAMA2_13B, ModelConfig
from repro.serving.engine import EngineBase
from repro.workload.dataset import SHAREGPT, DatasetSpec

DEFAULT_RATES = (2.0, 4.0, 6.0)
#: Beyond the paper's 600 s ceiling: half an hour and two hours of idle.
DEFAULT_THINK_TIMES = (600.0, 1800.0, 7200.0)


def disk_extras(engine: EngineBase) -> Dict[str, float]:
    """Cache and NVMe statistics for one finished three-tier run."""
    stats = engine.manager.stats
    lookups = max(1, stats["lookup_tokens"])
    extras = {
        "hit_rate": (
            stats["gpu_hit_tokens"]
            + stats["cpu_hit_tokens"]
            + stats["disk_hit_tokens"]
        )
        / lookups,
        "disk_hit_rate": stats["disk_hit_tokens"] / lookups,
        "demoted_tokens": stats["demoted_tokens"],
        "recomputed_tokens": stats["recomputed_tokens"],
    }
    nvme = getattr(engine, "nvme", None)
    if nvme is not None:
        extras["nvme_read_gb"] = nvme.bytes_moved[NvmeDirection.READ] / 1e9
        extras["nvme_write_gb"] = nvme.bytes_moved[NvmeDirection.WRITE] / 1e9
    return extras


def run_fig15x(
    config: ModelConfig = LLAMA2_13B,
    dataset: DatasetSpec = SHAREGPT,
    rates: Sequence[float] = DEFAULT_RATES,
    think_times: Sequence[float] = DEFAULT_THINK_TIMES,
    duration: float = 500.0,
    seed: int = 7,
    spec: GpuSpec = A100_80GB,
    cpu_cache_tokens: Optional[int] = None,
    disk_cache_tokens: Optional[int] = None,
    tracer=None,
    slo=None,
    hist=None,
    flight=None,
) -> Dict[str, List[RatePoint]]:
    """Sweep two-tier vs three-tier Pensieve across extreme think times.

    ``cpu_cache_tokens`` can shrink the CPU tier so that the pressure the
    experiment is about shows up at benchmark-scale durations;
    ``disk_cache_tokens`` sizes the third tier (default: effectively
    unbounded, since NVMe capacity dwarfs DRAM).
    """
    if disk_cache_tokens is None:
        disk_cache_tokens = 1 << 22
    curves: Dict[str, List[RatePoint]] = {}
    for think in think_times:
        curves[f"two-tier think={think:g}s"] = run_rate_sweep(
            lambda loop: PensieveEngine(
                loop, config, spec, cpu_cache_tokens=cpu_cache_tokens
            ),
            dataset,
            rates,
            duration=duration,
            think_time_mean=think,
            seed=seed,
            extras_fn=disk_extras,
            tracer=tracer,
            slo=slo,
            hist=hist,
            flight=flight,
        )
        curves[f"three-tier think={think:g}s"] = run_rate_sweep(
            lambda loop: PensieveEngine(
                loop,
                config,
                spec,
                cpu_cache_tokens=cpu_cache_tokens,
                disk_cache_tokens=disk_cache_tokens,
            ),
            dataset,
            rates,
            duration=duration,
            think_time_mean=think,
            seed=seed,
            extras_fn=disk_extras,
            tracer=tracer,
            slo=slo,
            hist=hist,
            flight=flight,
        )
    return curves


def format_fig15x(curves: Dict[str, List[RatePoint]], hist=None) -> str:
    from repro.experiments.fig10 import _attribution_block

    parts = [
        "Figure 15x — extreme think times, two-tier vs three-tier "
        "(Llama 2-13B, ShareGPT)"
    ]
    for name, points in curves.items():
        parts.append(format_curve_table(name, points))
    parts.append(_attribution_block(hist))
    return "\n".join(p for p in parts if p)
