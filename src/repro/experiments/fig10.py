"""Figure 10: single-GPU end-to-end serving performance.

Latency–throughput curves for four systems — vLLM, TensorRT-LLM, Pensieve
and Pensieve (GPU cache) — on OPT-13B and Llama 2-13B over ShareGPT and
UltraChat, plus the headline throughput ratios at the paper's latency
targets (e.g. OPT-13B/ShareGPT at 120 ms per token: Pensieve = 1.36x vLLM,
1.14x TensorRT-LLM).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.engine import PensieveEngine
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import LLAMA2_13B, OPT_13B, ModelConfig
from repro.serving.stateless import make_tensorrt_llm, make_vllm
from repro.experiments.common import (
    RatePoint,
    format_curve_table,
    run_rate_sweep,
    throughput_at_latency,
)
from repro.workload.dataset import SHAREGPT, ULTRACHAT, DatasetSpec

DEFAULT_RATES = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0)

#: Latency targets (seconds/token) at which the paper reports ratios.
PAPER_LATENCY_TARGETS = {
    ("OPT-13B", "ShareGPT"): 0.120,
    ("Llama 2-13B", "ShareGPT"): 0.180,
    ("OPT-13B", "UltraChat"): 0.120,
    ("Llama 2-13B", "UltraChat"): 0.100,
}

#: The paper's reported Pensieve/baseline throughput ratios.
PAPER_RATIOS = {
    ("OPT-13B", "ShareGPT"): {"vLLM": 1.36, "TensorRT-LLM": 1.14},
    ("Llama 2-13B", "ShareGPT"): {"vLLM": 1.70, "TensorRT-LLM": 1.58},
    ("OPT-13B", "UltraChat"): {"vLLM": 1.17, "TensorRT-LLM": 1.14},
    ("Llama 2-13B", "UltraChat"): {"vLLM": 1.58, "TensorRT-LLM": 1.47},
}


def system_factories(config: ModelConfig, spec: GpuSpec = A100_80GB) -> Dict[str, object]:
    """The four Figure 10/11 systems, as engine factories."""
    return {
        "vLLM": lambda loop: make_vllm(loop, config, spec),
        "TensorRT-LLM": lambda loop: make_tensorrt_llm(loop, config, spec),
        "Pensieve": lambda loop: PensieveEngine(loop, config, spec),
        "Pensieve (GPU cache)": lambda loop: PensieveEngine(
            loop, config, spec, cpu_cache_tokens=0
        ),
    }


def run_fig10(
    config: ModelConfig = OPT_13B,
    dataset: DatasetSpec = SHAREGPT,
    rates: Sequence[float] = DEFAULT_RATES,
    duration: float = 500.0,
    seed: int = 7,
    spec: GpuSpec = A100_80GB,
    systems: Optional[Sequence[str]] = None,
    think_time_mean: float = 60.0,
    slo=None,
    hist=None,
    flight=None,
) -> Dict[str, List[RatePoint]]:
    """Sweep all systems on one (model, dataset) panel of Figure 10.

    ``slo`` / ``hist`` / ``flight`` (see
    :func:`repro.experiments.common.run_rate_sweep`) arm the SLO metrics
    layer on every engine of the panel; a shared ``hist`` aggregates the
    per-tier latency attribution across all of its sweeps.
    """
    factories = system_factories(config, spec)
    if systems is not None:
        factories = {name: factories[name] for name in systems}
    curves: Dict[str, List[RatePoint]] = {}
    for name, factory in factories.items():
        curves[name] = run_rate_sweep(
            factory, dataset, rates, duration=duration, seed=seed,
            think_time_mean=think_time_mean,
            slo=slo, hist=hist, flight=flight,
        )
    return curves


def headline_ratios(
    curves: Dict[str, List[RatePoint]],
    latency_target: float,
) -> Dict[str, float]:
    """Pensieve's throughput ratio over each baseline at the target."""
    pensieve = throughput_at_latency(curves["Pensieve"], latency_target)
    ratios: Dict[str, float] = {}
    for name, points in curves.items():
        if name == "Pensieve":
            continue
        base = throughput_at_latency(points, latency_target)
        ratios[name] = pensieve / base if base > 0 else float("inf")
    return ratios


def format_fig10(
    curves: Dict[str, List[RatePoint]],
    config: ModelConfig,
    dataset: DatasetSpec,
    hist=None,
) -> str:
    parts = [f"Figure 10 — {config.name} on {dataset.name} (1 GPU)"]
    for name, points in curves.items():
        parts.append(format_curve_table(name, points))
    target = PAPER_LATENCY_TARGETS.get((config.name, dataset.name))
    if target is not None:
        ratios = headline_ratios(curves, target)
        paper = PAPER_RATIOS.get((config.name, dataset.name), {})
        parts.append(f"Throughput ratios at {target * 1e3:.0f} ms/token:")
        for system, ratio in ratios.items():
            expect = paper.get(system)
            suffix = f" (paper: {expect}x)" if expect else ""
            parts.append(f"  Pensieve / {system}: {ratio:.2f}x{suffix}")
    parts.append(_attribution_block(hist))
    return "\n".join(p for p in parts if p)


def _attribution_block(hist) -> str:
    """Per-tier tail-latency attribution appendix (empty without a hist)."""
    from repro.obs import tier_attribution_table

    return tier_attribution_table(
        hist, title="-- tail-latency attribution (sim seconds, all sweeps) --"
    )
