"""Figure 3: prefill cost vs generation cost as history grows.

The paper's motivating measurement: a batch of 32 requests, each with a
200-token new prompt and a growing conversation history, compared against
the cost of 200 generation steps.  With a stateless engine the history is
part of the prompt and gets re-prefilled, so the prefill curve grows
linearly and soon dwarfs the generation curve; reusing cached history
("prompt-only prefill") stays flat.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.gpu.costmodel import CostModel
from repro.gpu.device import A100_80GB, GpuSpec
from repro.model.config import OPT_13B, ModelConfig

DEFAULT_HISTORY_SIZES = (0, 512, 1024, 2048, 4096, 8192, 12288)


def run_fig03(
    config: ModelConfig = OPT_13B,
    spec: GpuSpec = A100_80GB,
    batch_size: int = 32,
    prompt_tokens: int = 200,
    generation_steps: int = 200,
    history_sizes: Sequence[int] = DEFAULT_HISTORY_SIZES,
) -> List[Dict[str, float]]:
    """Compute the Figure 3 series.

    Returns one row per history size with:

    - ``prefill_with_history``: stateless prefill (history re-processed);
    - ``prefill_prompt_only``: stateful prefill (history already cached);
    - ``generation``: the 200-step generation cost at that context size.
    """
    cm = CostModel(config, spec)
    rows: List[Dict[str, float]] = []
    for history in history_sizes:
        stateless = cm.prefill_time(batch_size, prompt_tokens + history, 0)
        stateful = cm.prefill_time(batch_size, prompt_tokens, history)
        generation = cm.generation_time(
            batch_size, history + prompt_tokens, generation_steps
        )
        rows.append(
            {
                "history_tokens": history,
                "prefill_with_history_s": stateless,
                "prefill_prompt_only_s": stateful,
                "generation_s": generation,
            }
        )
    return rows


def format_fig03(rows: List[Dict[str, float]]) -> str:
    lines = [
        "Figure 3 — execution time, batch of 32 requests "
        "(200-token prompt, 200 generation steps)",
        f"{'history':>8} {'prefill w/ hist':>16} {'prefill prompt':>15} "
        f"{'generation':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['history_tokens']:>8d} "
            f"{row['prefill_with_history_s']:>15.3f}s "
            f"{row['prefill_prompt_only_s']:>14.3f}s "
            f"{row['generation_s']:>10.3f}s"
        )
    return "\n".join(lines)
