"""Registry and selection-precedence tests for ``repro.backends``."""

import pytest

from repro.backends import (
    Backend,
    DEFAULT_BACKEND,
    backend_names,
    get_backend,
    register,
    resolve_backend,
)


class TestRegistry:
    def test_three_backends_ship(self):
        assert backend_names() == ("paged", "paged-ring", "contiguous")

    def test_instances_are_shared(self):
        assert get_backend("paged") is get_backend("paged")

    def test_every_backend_names_itself(self):
        for name in backend_names():
            backend = get_backend(name)
            assert backend.name == name
            assert backend.summary

    def test_unknown_name_lists_the_legal_ones(self):
        with pytest.raises(ValueError, match="paged-ring"):
            get_backend("flash")

    def test_reregistration_rejected(self):
        class Dupe(Backend):
            name = "paged"

        with pytest.raises(ValueError, match="already registered"):
            register(Dupe)

    def test_unnamed_backend_rejected(self):
        class Anon(Backend):
            pass

        with pytest.raises(ValueError, match="no backend name"):
            register(Anon)


class TestResolvePrecedence:
    def test_default_when_nothing_picks(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() == DEFAULT_BACKEND == "paged"

    def test_env_var_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "paged-ring")
        assert resolve_backend() == "paged-ring"

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "paged-ring")
        assert resolve_backend("contiguous") == "contiguous"

    def test_bogus_env_var_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend()

    def test_bogus_explicit_name_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("bogus")
