"""RingDecodeCache vs PackedDecodeCache: same math, different staging.

The ring cache overrides only the staging-layout hooks, so driving both
caches through identical table mutations must produce identical
attention outputs *and* identical bookkeeping stats (packs, extends,
repairs, rebuilds) — any divergence means the ring layout leaked into
semantics.
"""

import numpy as np
import pytest

from repro.kernels import (
    DecodeSlotSource,
    PackedDecodeCache,
    RingDecodeCache,
    packed_decode_attention,
    ring_decode_attention,
)
from repro.kvcache.pages import BlockTable, PagePool

NUM_HEADS, KV_HEADS, HEAD_DIM = 8, 2, 16


def _make_state(seed=0, num_pages=64, page_size=4):
    rng = np.random.default_rng(seed)
    pool = PagePool(num_pages, page_size)
    num_slots = num_pages * page_size
    k_cache = rng.standard_normal((num_slots, KV_HEADS, HEAD_DIM))
    v_cache = rng.standard_normal((num_slots, KV_HEADS, HEAD_DIM))
    return rng, pool, k_cache, v_cache


def _drive(cache, attention, tables, steps, rng, k_cache, v_cache, pool):
    """A lifecycle that exercises extend, repair (slots changed in
    place), rebuild (membership change) and context growth."""
    outs = []
    for step in range(steps):
        for table in tables:
            table.append_tokens(1)
        if step == 3:
            # Vacate + restore: same row, different physical slots.
            tables[0].vacate_front(4)
            tables[0].restore_front(4)
        if step == 5:
            # Membership change: a new conversation joins mid-run.
            newcomer = BlockTable(pool)
            newcomer.append_tokens(6)
            tables.append(newcomer)
        packed = cache.pack(
            [DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)]
        )
        queries = rng.standard_normal((len(tables), NUM_HEADS, HEAD_DIM))
        outs.append(attention(queries, packed, 0, k_cache, v_cache))
    return outs


class TestRingLifecycleEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_outputs_and_stats_match_the_packed_cache(self, seed):
        results = {}
        for cache_cls, attention in (
            (PackedDecodeCache, packed_decode_attention),
            (RingDecodeCache, ring_decode_attention),
        ):
            rng, pool, k_cache, v_cache = _make_state(seed)
            tables = []
            for _ in range(4):
                table = BlockTable(pool)
                table.append_tokens(8)
                tables.append(table)
            query_rng = np.random.default_rng(seed + 100)
            outs = _drive(
                cache := cache_cls(), attention, tables, 10, query_rng,
                k_cache, v_cache, pool,
            )
            results[cache_cls.__name__] = (outs, dict(cache.stats))
        packed_outs, packed_stats = results["PackedDecodeCache"]
        ring_outs, ring_stats = results["RingDecodeCache"]
        for a, b in zip(packed_outs, ring_outs):
            assert np.abs(a - b).max() <= 1e-12
        assert ring_stats == packed_stats
        assert packed_stats["extended_rows"] > 0
        assert packed_stats["repaired_rows"] > 0
        assert packed_stats["rebuilt_rows"] > 0

    def test_ring_validates_query_count_like_packed(self):
        rng, pool, k_cache, v_cache = _make_state()
        table = BlockTable(pool)
        table.append_tokens(4)
        sources = [DecodeSlotSource(key=0, table=table)]
        packed_c, ring_c = PackedDecodeCache(), RingDecodeCache()
        bad = rng.standard_normal((2, NUM_HEADS, HEAD_DIM))
        with pytest.raises(ValueError) as packed_err:
            packed_decode_attention(bad, packed_c.pack(sources), 0, k_cache, v_cache)
        with pytest.raises(ValueError) as ring_err:
            ring_decode_attention(bad, ring_c.pack(sources), 0, k_cache, v_cache)
        assert str(ring_err.value) == str(packed_err.value)

    def test_ring_staging_is_blas_ready(self):
        """The layout contract the speedup rests on: staged K exposes
        [rows, kv, head_dim, ctx] and V [rows, kv, ctx, head_dim], both
        sliceable to the live context without copying."""
        rng, pool, k_cache, v_cache = _make_state()
        tables = []
        for _ in range(3):
            table = BlockTable(pool)
            table.append_tokens(6)
            tables.append(table)
        cache = RingDecodeCache()
        packed = cache.pack(
            [DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)]
        )
        queries = rng.standard_normal((3, NUM_HEADS, HEAD_DIM))
        ring_decode_attention(queries, packed, 0, k_cache, v_cache)
        staging = cache._staging[0]
        assert staging.k.shape[1:3] == (KV_HEADS, HEAD_DIM)
        assert staging.v.shape[1] == KV_HEADS
        assert staging.v.shape[3] == HEAD_DIM
        # Context is the trailing K axis: a [:, :, :, :n] slice keeps a
        # BLAS-consumable stride pattern with no gather.
        assert staging.k.shape[3] == staging.v.shape[2]
