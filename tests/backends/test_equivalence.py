"""Cross-backend equivalence: every backend is numerically the same model.

Two layers of proof, mirroring the bench harness's in-measurement
matrix: kernel-level (each backend's decode loop against the per-request
oracle on its own slot layout) and serving-level (three
:class:`StatefulChatServer` instances produce token-identical
transcripts for the same workload).
"""

import numpy as np
import pytest

from repro.backends import backend_names, get_backend
from repro.core.server import StatefulChatServer
from repro.kernels import (
    AttentionRequest,
    DecodeSlotSource,
    multi_token_attention,
    single_token_attention,
)
from repro.kvcache.pages import PagePool
from repro.model.config import tiny_opt_config

TOLERANCE = 1e-6


def _decode_loop(backend_name, batch, ctx, steps, num_heads, kv_heads, head_dim):
    """Run a serving-shaped decode loop through one backend's full
    allocator + cache + kernel stack; returns (outs, oracle_outs).

    K/V values are keyed by (conversation, position) so different slot
    layouts must still agree.
    """
    backend = get_backend(backend_name)
    rng = np.random.default_rng(0)
    page_size = 16
    tokens = ctx + steps
    reserve = -(-tokens // page_size) * page_size
    pool = PagePool(batch * (reserve // page_size), page_size)
    allocator = backend.create_allocator(
        pool, reserve_tokens=reserve, max_tables=batch
    )
    keys = rng.standard_normal((batch, tokens, kv_heads, head_dim))
    vals = rng.standard_normal((batch, tokens, kv_heads, head_dim))
    queries = rng.standard_normal((steps, batch, num_heads, head_dim))
    k_cache = np.zeros((allocator.storage_slots, kv_heads, head_dim))
    v_cache = np.zeros((allocator.storage_slots, kv_heads, head_dim))
    tables = []
    for i in range(batch):
        table = allocator.new_table()
        table.append_tokens(ctx)
        slots = table.slots_array(0, ctx)
        k_cache[slots] = keys[i, :ctx]
        v_cache[slots] = vals[i, :ctx]
        tables.append(table)
    cache = backend.create_decode_cache()
    outs, oracle = [], []
    for step in range(steps):
        pos = ctx + step
        for i, table in enumerate(tables):
            table.append_tokens(1)
            slot = table.slot(pos)
            k_cache[slot] = keys[i, pos]
            v_cache[slot] = vals[i, pos]
        packed = cache.pack(
            [DecodeSlotSource(key=i, table=t) for i, t in enumerate(tables)]
        )
        outs.append(
            backend.decode_attention(queries[step], packed, 0, k_cache, v_cache)
        )
        requests = [
            AttentionRequest(
                query=queries[step, i : i + 1],
                slots=table.slots_array(0, table.length),
            )
            for i, table in enumerate(tables)
        ]
        oracle.append(
            np.concatenate(single_token_attention(requests, k_cache, v_cache))
        )
    return outs, oracle


class TestKernelMatrix:
    @pytest.mark.parametrize("name", ["paged", "paged-ring", "contiguous"])
    def test_decode_loop_matches_per_request_oracle(self, name):
        outs, oracle = _decode_loop(name, 4, 48, 6, 8, 2, 16)
        for got, want in zip(outs, oracle):
            assert np.abs(got - want).max() <= TOLERANCE

    def test_all_backends_agree_with_each_other(self):
        per_backend = {
            name: _decode_loop(name, 4, 48, 6, 8, 2, 16)[0]
            for name in backend_names()
        }
        baseline = per_backend["paged"]
        for name, outs in per_backend.items():
            for got, want in zip(outs, baseline):
                assert np.abs(got - want).max() <= TOLERANCE, name

    @pytest.mark.parametrize("name", ["paged", "paged-ring", "contiguous"])
    def test_prefill_and_mixed_entry_points_match_oracle(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(1)
        num_slots = 96
        k_cache = rng.standard_normal((num_slots, 2, 16))
        v_cache = rng.standard_normal((num_slots, 2, 16))
        perm = rng.permutation(num_slots)
        used = 0
        requests = []
        for q_len, ctx in [(6, 24), (4, 24), (1, 24), (1, 24)]:
            slots = list(perm[used : used + ctx])
            used += ctx
            requests.append(
                AttentionRequest(
                    query=rng.standard_normal((q_len, 8, 16)), slots=slots
                )
            )
        oracle = multi_token_attention(requests, k_cache, v_cache)
        for entry in (backend.multi_token_attention, backend.ragged_attention):
            got = entry(requests, k_cache, v_cache)
            for g, w in zip(got, oracle):
                assert np.abs(g - w).max() <= TOLERANCE


class TestServingMatrix:
    CAPS = dict(
        gpu_capacity_tokens=1 << 12,
        cpu_capacity_tokens=1 << 12,
        chunk_size=16,
        page_size=8,
        seed=0,
    )

    def _transcripts(self, backend_name):
        config = tiny_opt_config()
        server = StatefulChatServer(config, backend=backend_name, **self.CAPS)
        prompts = [
            (conv, [(conv * 13 + i) % config.vocab_size for i in range(9)])
            for conv in range(4)
        ]
        first = server.chat_batch(prompts, max_new_tokens=12)
        followups = [
            (conv, [(conv * 7 + i + 3) % config.vocab_size for i in range(5)])
            for conv in range(4)
        ]
        second = server.chat_batch(followups, max_new_tokens=12)
        return first, second, server

    def test_token_identical_transcripts_across_backends(self):
        baseline = self._transcripts("paged")[:2]
        for name in ("paged-ring", "contiguous"):
            assert self._transcripts(name)[:2] == baseline, name

    def test_contiguous_server_accounts_its_commits(self):
        _, _, server = self._transcripts("contiguous")
        stats = server._allocator.stats()
        assert stats["extents_in_use"] >= 4
        assert stats["committed_pages"] == stats["commits"] - stats["decommits"]
        assert stats["resident_tokens"] > 0
        assert stats["commit_waste_slots"] >= 0
        assert stats["reserved_uncommitted_tokens"] >= 0

    def test_backend_name_is_recorded(self):
        config = tiny_opt_config()
        server = StatefulChatServer(config, backend="paged-ring", **self.CAPS)
        assert server.backend_name == "paged-ring"
