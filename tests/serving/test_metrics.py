"""Tests for the metrics collector."""

import pytest

from repro.faults import FaultCounters
from repro.serving import Conversation, MetricsCollector, Request, Turn


def finished_request(request_id, arrival, finish, first_token=None, output=10):
    req = Request(
        request_id=request_id,
        conversation=Conversation(
            conv_id=request_id, turns=[Turn(prompt_tokens=5, output_tokens=output)]
        ),
        turn_index=0,
        arrival_time=arrival,
    )
    req.finish_time = finish
    req.first_token_time = first_token if first_token is not None else arrival + 0.1
    req.prefill_tokens = 5
    return req


class TestComplete:
    def test_records_fields(self):
        collector = MetricsCollector()
        record = collector.complete(finished_request(1, 0.0, 2.0))
        assert record.latency == 2.0
        assert record.normalized_latency == pytest.approx(0.2)
        assert record.ttft == pytest.approx(0.1)
        assert len(collector) == 1

    def test_incomplete_request_rejected(self):
        collector = MetricsCollector()
        req = finished_request(1, 0.0, 2.0)
        req.finish_time = None
        with pytest.raises(RuntimeError):
            collector.complete(req)


class TestStats:
    def test_throughput_and_latency(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.complete(finished_request(i, float(i), float(i) + 2.0))
        stats = collector.stats()
        # 10 requests finishing between t=2 and t=11, arrivals from t=0.
        assert stats.num_requests == 10
        assert stats.throughput_rps == pytest.approx(10 / 11.0)
        assert stats.mean_normalized_latency == pytest.approx(0.2)
        assert stats.p90_normalized_latency == pytest.approx(0.2)
        assert stats.total_output_tokens == 100

    def test_warmup_window_excludes_early_finishes(self):
        collector = MetricsCollector()
        collector.complete(finished_request(1, 0.0, 1.0))
        collector.complete(finished_request(2, 5.0, 7.0))
        stats = collector.stats(warmup=2.0)
        assert stats.num_requests == 1
        assert stats.throughput_rps == pytest.approx(1 / 5.0)

    def test_until_window(self):
        collector = MetricsCollector()
        collector.complete(finished_request(1, 0.0, 1.0))
        collector.complete(finished_request(2, 0.0, 10.0))
        stats = collector.stats(until=5.0)
        assert stats.num_requests == 1

    def test_empty_window_raises(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.stats()

    def test_percentiles_ordered(self):
        collector = MetricsCollector()
        for i in range(50):
            collector.complete(
                finished_request(i, 0.0, 1.0 + i * 0.5, output=10)
            )
        stats = collector.stats()
        assert (
            stats.p50_normalized_latency
            <= stats.p90_normalized_latency
            <= stats.p99_normalized_latency
        )

    def test_as_dict_round_numbers(self):
        collector = MetricsCollector()
        collector.complete(finished_request(1, 0.0, 2.0))
        d = collector.stats().as_dict()
        assert d["num_requests"] == 1
        assert "p90_norm_latency_ms" in d


class TestFaultCounters:
    def test_collector_carries_fault_counters(self):
        collector = MetricsCollector()
        assert isinstance(collector.faults, FaultCounters)
        assert collector.faults.total == 0

    def test_counters_accumulate_independently_of_records(self):
        collector = MetricsCollector()
        collector.faults.retries += 2
        collector.faults.swap_in_failures += 1
        collector.faults.recompute_fallbacks += 1
        assert collector.faults.total == 4
        assert len(collector) == 0  # request records are untouched

    def test_as_dict_snapshot(self):
        collector = MetricsCollector()
        collector.faults.degraded_requests = 3
        d = collector.faults.as_dict()
        assert d["degraded_requests"] == 3
        # A snapshot, not a live view.
        collector.faults.degraded_requests = 5
        assert d["degraded_requests"] == 3

    def test_fresh_collectors_do_not_share_counters(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.faults.retries = 7
        assert b.faults.retries == 0


class TestFailures:
    def test_fail_records_and_counts(self):
        collector = MetricsCollector()
        req = finished_request(7, 0.0, 2.0)
        record = collector.fail(req, now=1.5, reason="gpu_alloc")
        assert record.request_id == 7
        assert record.reason == "gpu_alloc"
        assert collector.failures == [record]
        assert record.as_dict()["reason"] == "gpu_alloc"

    def test_stats_include_num_failed(self):
        collector = MetricsCollector()
        collector.complete(finished_request(1, 0.0, 2.0))
        collector.fail(finished_request(2, 0.0, 9.9), now=1.0, reason="swap_in")
        stats = collector.stats()
        assert stats.num_failed == 1
        assert stats.as_dict()["num_failed"] == 1

    def test_failures_respect_warmup_and_until_windows(self):
        collector = MetricsCollector()
        collector.complete(finished_request(1, 0.0, 4.0))
        collector.fail(finished_request(2, 0.0, 0.0), now=1.0, reason="early")
        collector.fail(finished_request(3, 0.0, 0.0), now=6.0, reason="late")
        assert collector.stats(warmup=2.0).num_failed == 1  # "early" excluded
        assert collector.stats(until=5.0).num_failed == 1  # "late" excluded

    def test_as_dict_has_throughput_and_latency_fields(self):
        collector = MetricsCollector()
        collector.complete(finished_request(1, 0.0, 2.0))
        d = collector.stats().as_dict()
        for key in ("token_throughput", "mean_latency_ms", "output_tokens",
                    "num_failed"):
            assert key in d


class TestStageTimings:
    def test_mean_of_unknown_stage_is_zero(self):
        from repro.serving.metrics import StageTimings

        timings = StageTimings()
        assert timings.mean("never_recorded") == 0.0

    def test_mean_after_recording(self):
        from repro.serving.metrics import StageTimings

        timings = StageTimings()
        with timings.stage("x"):
            pass
        assert timings.mean("x") >= 0.0


class TestNormalizedLatencyGuard:
    def test_zero_output_tokens_does_not_divide_by_zero(self):
        from repro.serving.metrics import RequestRecord

        record = RequestRecord(
            request_id=1, conv_id=1, turn_index=0,
            arrival_time=0.0, finish_time=2.0, first_token_time=0.1,
            prompt_tokens=5, history_tokens=0, output_tokens=0,
            prefilled_tokens=5,
        )
        assert record.normalized_latency == pytest.approx(2.0)
