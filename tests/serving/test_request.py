"""Tests for requests, turns and conversations."""

import pytest

from repro.serving import Conversation, Request, RequestState, Turn


def make_conversation(turn_sizes=((10, 20), (5, 30), (8, 12)), conv_id=1):
    return Conversation(
        conv_id=conv_id,
        turns=[Turn(prompt_tokens=p, output_tokens=o) for p, o in turn_sizes],
    )


class TestTurn:
    def test_valid(self):
        turn = Turn(prompt_tokens=5, output_tokens=10)
        assert turn.prompt_tokens == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            Turn(prompt_tokens=0, output_tokens=10)
        with pytest.raises(ValueError):
            Turn(prompt_tokens=5, output_tokens=0)


class TestConversation:
    def test_history_accumulates_prompt_and_output(self):
        conv = make_conversation()
        assert conv.history_tokens(0) == 0
        assert conv.history_tokens(1) == 30
        assert conv.history_tokens(2) == 65
        assert conv.total_tokens() == 85

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Conversation(conv_id=1, turns=[])

    def test_think_times_default_to_zero(self):
        conv = make_conversation()
        assert conv.think_times == [0.0, 0.0]

    def test_think_times_length_checked(self):
        with pytest.raises(ValueError):
            Conversation(
                conv_id=1,
                turns=[Turn(1, 1), Turn(1, 1)],
                think_times=[1.0, 2.0],
            )


class TestRequest:
    def make_request(self, turn_index=1):
        return Request(
            request_id=7,
            conversation=make_conversation(),
            turn_index=turn_index,
            arrival_time=100.0,
        )

    def test_derived_fields(self):
        req = self.make_request()
        assert req.conv_id == 1
        assert req.prompt_tokens == 5
        assert req.history_tokens == 30
        assert req.output_tokens == 30
        assert req.total_context == 65
        assert not req.is_last_turn
        assert self.make_request(turn_index=2).is_last_turn

    def test_initial_state(self):
        req = self.make_request()
        assert req.state is RequestState.WAITING
        assert req.generated_tokens == 0
        assert req.remaining_tokens == 30

    def test_latency_requires_finish(self):
        req = self.make_request()
        with pytest.raises(RuntimeError):
            req.latency()
        req.finish_time = 109.0
        assert req.latency() == pytest.approx(9.0)
        assert req.normalized_latency() == pytest.approx(0.3)


class TestAttentionRequestHelpers:
    def test_query_positions_and_visible_context(self):
        import numpy as np

        from repro.kernels import AttentionRequest

        request = AttentionRequest(
            query=np.zeros((3, 2, 4)), slots=list(range(10)), query_offset=4
        )
        assert list(request.query_positions()) == [4, 5, 6]
        assert request.visible_context_len() == 7
        assert request.num_heads == 2
        assert request.head_dim == 4
        assert request.context_len == 10

    def test_default_offset_is_trailing(self):
        import numpy as np

        from repro.kernels import AttentionRequest

        request = AttentionRequest(query=np.zeros((3, 2, 4)), slots=list(range(10)))
        assert request.query_offset == 7
        assert request.visible_context_len() == 10
