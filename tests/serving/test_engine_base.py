"""Tests for the shared engine machinery (EngineBase, BatchConfig)."""

from typing import List, Sequence

import pytest

from repro.gpu import A100_80GB, CostModel
from repro.gpu.costmodel import BatchShape
from repro.model import tiny_opt_config
from repro.serving import BatchConfig
from repro.serving.engine import EngineBase
from repro.serving.request import Request, RequestState
from repro.sim import EventLoop

from tests.serving.conftest import scripted_conversation


class MiniEngine(EngineBase):
    """Minimal concrete engine: everything runs, one token per step."""

    def __init__(self, loop, step_time=0.01, **kwargs):
        cost_model = CostModel(tiny_opt_config(), A100_80GB)
        super().__init__("mini", loop, cost_model, **kwargs)
        self.step_time = step_time
        self.batches: List[int] = []

    def _form_batch(self, now):
        while self.wait_queue:
            request = self.wait_queue.popleft()
            request.state = RequestState.RUNNING
            self.running.append(request)
        self.batches.append(len(self.running))
        return list(self.running)

    def _execute(self, batch, now):
        return self.step_time

    def _on_finish(self, request, now):
        pass


def submit_requests(engine, loop, specs):
    requests = []
    for i, (arrival, outputs) in enumerate(specs):
        request = Request(
            request_id=i,
            conversation=scripted_conversation(i, [(4, outputs)]),
            turn_index=0,
            arrival_time=arrival,
        )
        loop.schedule(arrival, engine.submit, request)
        requests.append(request)
    return requests


class TestServingLoop:
    def test_single_request_lifecycle(self):
        loop = EventLoop()
        engine = MiniEngine(loop)
        (request,) = submit_requests(engine, loop, [(0.0, 3)])
        loop.run()
        assert request.state is RequestState.FINISHED
        assert request.generated_tokens == 3
        assert request.finish_time == pytest.approx(0.03)
        assert request.first_token_time == pytest.approx(0.01)

    def test_iteration_level_join(self):
        """A request arriving mid-flight joins at the next iteration."""
        loop = EventLoop()
        engine = MiniEngine(loop)
        submit_requests(engine, loop, [(0.0, 5), (0.015, 3)])
        loop.run()
        # Second request joined while the first was running: some batches
        # contain both.
        assert 2 in engine.batches
        assert len(engine.metrics) == 2

    def test_engine_idles_between_bursts(self):
        loop = EventLoop()
        engine = MiniEngine(loop)
        submit_requests(engine, loop, [(0.0, 2), (10.0, 2)])
        loop.run()
        records = engine.metrics.records
        assert records[0].finish_time == pytest.approx(0.02)
        assert records[1].finish_time == pytest.approx(10.02)

    def test_iterations_counted(self):
        loop = EventLoop()
        engine = MiniEngine(loop)
        submit_requests(engine, loop, [(0.0, 4)])
        loop.run()
        assert engine.iterations == 4

    def test_on_finish_callback_invoked(self):
        loop = EventLoop()
        engine = MiniEngine(loop)
        finished = []
        engine.on_finish = lambda request, now: finished.append(
            (request.request_id, now)
        )
        submit_requests(engine, loop, [(0.0, 2)])
        loop.run()
        assert finished == [(0, pytest.approx(0.02))]

    def test_trace_records_iterations(self):
        loop = EventLoop()
        engine = MiniEngine(loop, keep_trace=True)
        submit_requests(engine, loop, [(0.0, 2)])
        loop.run()
        assert engine.trace.count("submit") == 1
        assert engine.trace.count("iteration") == 2
        assert engine.trace.count("finish") == 1


class TestBatchConfig:
    def test_defaults_match_paper(self):
        cfg = BatchConfig()
        assert cfg.swap_out_threshold == 0.25   # §4.3.2
        assert cfg.generation_reserve == 0.10   # §4.3.5
        assert cfg.max_context == 16384         # §6.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_tokens": 0},
            {"max_running": 0},
            {"swap_out_threshold": 1.0},
            {"swap_out_threshold": -0.1},
            {"generation_reserve": 1.0},
            {"max_context": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchConfig(**kwargs)
