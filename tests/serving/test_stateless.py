"""Tests for the stateless (vLLM / TensorRT-LLM) baseline engines."""

import pytest

from repro.serving import BatchConfig, RequestState, make_tensorrt_llm, make_vllm
from repro.serving.stateless import StatelessEngine
from repro.sim import EventLoop

from tests.serving.conftest import TINY, scripted_conversation, serve, spec_with_capacity


def vllm_factory(capacity_tokens=4096, batch_config=None, keep_trace=True):
    spec = spec_with_capacity(capacity_tokens)
    return lambda loop: make_vllm(loop, TINY, spec, batch_config, keep_trace=keep_trace)


class TestBasicServing:
    def test_single_request_completes(self):
        engine, driver, loop = serve(
            vllm_factory(), [scripted_conversation(0, [(8, 5)])]
        )
        assert len(engine.metrics) == 1
        record = engine.metrics.records[0]
        assert record.output_tokens == 5
        assert record.finish_time > record.first_token_time > 0
        assert driver.outstanding == 0

    def test_all_turns_complete_in_order(self):
        engine, driver, _ = serve(
            vllm_factory(), [scripted_conversation(0, [(8, 5), (4, 6), (3, 2)])]
        )
        records = engine.metrics.records
        assert [r.turn_index for r in records] == [0, 1, 2]
        # Causality: each turn arrives only after the previous finished.
        assert records[1].arrival_time >= records[0].finish_time
        assert records[2].arrival_time >= records[1].finish_time

    def test_stateless_reprefills_history(self):
        """The defining baseline behaviour (§2.2): every turn re-processes
        the cumulative history."""
        engine, _, _ = serve(
            vllm_factory(), [scripted_conversation(0, [(10, 10), (5, 5)])]
        )
        first, second = engine.metrics.records
        assert first.prefilled_tokens == 10
        # Turn 2 prefill = history (10 + 10) + new prompt (5).
        assert second.prefilled_tokens == 25

    def test_fcfs_admission(self):
        convs = [
            scripted_conversation(i, [(8, 4)], start=float(i) * 0.001)
            for i in range(5)
        ]
        engine, _, _ = serve(vllm_factory(), convs)
        finish_order = [r.conv_id for r in engine.metrics.records]
        assert finish_order == [0, 1, 2, 3, 4]

    def test_concurrent_conversations_batched(self):
        convs = [scripted_conversation(i, [(8, 50)]) for i in range(4)]
        engine, _, _ = serve(vllm_factory(), convs)
        # 4 requests x 50 tokens decoded in far fewer than 200 iterations
        # means decode steps were shared.
        assert engine.iterations < 4 * 50 + 10
        assert len(engine.metrics) == 4


class TestMemoryManagement:
    def test_memory_released_on_finish(self):
        engine, _, _ = serve(vllm_factory(64), [scripted_conversation(0, [(8, 4)])])
        assert engine.used_tokens == 0

    def test_admission_blocked_until_memory_available(self):
        """Two requests that cannot fit together serialize."""
        convs = [
            scripted_conversation(0, [(40, 10)]),
            scripted_conversation(1, [(40, 10)]),
        ]
        engine, _, _ = serve(vllm_factory(64), convs)
        assert len(engine.metrics) == 2
        r0, r1 = engine.metrics.records
        # The second could only start after the first released its slots.
        assert r1.first_token_time > r0.finish_time

    def test_preemption_recovers_and_recomputes(self):
        """Decode outgrowing memory preempts the youngest request, which
        later re-prefills its full sequence (recompute preemption)."""
        convs = [
            scripted_conversation(0, [(20, 40)], start=0.0),
            scripted_conversation(1, [(20, 40)], start=0.01),
        ]
        engine, _, _ = serve(vllm_factory(96, keep_trace=True), convs)
        assert len(engine.metrics) == 2
        assert engine.trace.count("preempt") >= 1
        # The preempted request's re-prefill covered generated tokens too.
        victim = engine.metrics.records[-1]
        assert victim.prefilled_tokens > 20

    def test_capacity_is_never_exceeded(self):
        convs = [scripted_conversation(i, [(10, 30)]) for i in range(6)]
        spec = spec_with_capacity(128)
        loop = EventLoop()
        engine = make_vllm(loop, TINY, spec)
        orig = engine._execute
        peaks = []

        def checked(batch, now):
            peaks.append(engine.used_tokens)
            assert engine.used_tokens <= engine.gpu_capacity_tokens
            return orig(batch, now)

        engine._execute = checked
        from repro.workload import ConversationDriver

        ConversationDriver(loop, engine, convs).run(max_events=1_000_000)
        assert peaks and max(peaks) <= 128


class TestPhaseSeparation:
    def test_batches_are_single_phase(self):
        """vLLM never mixes prefill and decode in one iteration (§4.2)."""
        convs = [
            scripted_conversation(0, [(8, 30)], start=0.0),
            scripted_conversation(1, [(8, 30)], start=0.05),
        ]
        spec = spec_with_capacity(4096)
        loop = EventLoop()
        engine = make_vllm(loop, TINY, spec)
        phases = []
        orig = engine._execute

        def spy(batch, now):
            phases.append(
                {("prefill" if not r.prefill_done else "decode") for r in batch}
            )
            return orig(batch, now)

        engine._execute = spy
        from repro.workload import ConversationDriver

        ConversationDriver(loop, engine, convs).run(max_events=1_000_000)
        assert all(len(p) == 1 for p in phases)
        assert {"prefill"} in phases and {"decode"} in phases


class TestTensorRT:
    def test_trt_is_faster_than_vllm(self):
        convs = [scripted_conversation(i, [(16, 20)]) for i in range(4)]
        vllm, _, _ = serve(vllm_factory(), convs)
        spec = spec_with_capacity(4096)
        trt, _, _ = serve(lambda l: make_tensorrt_llm(l, TINY, spec), convs)
        v_stats = vllm.metrics.stats()
        t_stats = trt.metrics.stats()
        assert t_stats.mean_normalized_latency < v_stats.mean_normalized_latency

    def test_names(self):
        loop = EventLoop()
        spec = spec_with_capacity(64)
        assert make_vllm(loop, TINY, spec).name == "vLLM"
        assert make_tensorrt_llm(loop, TINY, spec).name == "TensorRT-LLM"
