"""Shared helpers for serving-engine tests.

Tests run on the tiny OPT config with an artificially small KV cache so
memory-pressure paths (preemption, suspension, eviction) trigger at
test-sized workloads.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import pytest

from repro.gpu.device import GpuSpec
from repro.model import tiny_opt_config
from repro.serving import BatchConfig, Conversation, Turn
from repro.sim import EventLoop
from repro.workload import ConversationDriver

TINY = tiny_opt_config()


def spec_with_capacity(capacity_tokens: int, **overrides) -> GpuSpec:
    """A GpuSpec whose KV cache holds exactly ``capacity_tokens`` of the
    tiny model's KV-tokens."""
    kv_bytes = capacity_tokens * TINY.kv_bytes_per_token
    params = dict(
        kv_cache_bytes=kv_bytes,
        memory_bytes=max(kv_bytes * 2, 1024),
        cpu_memory_bytes=kv_bytes * 8,
    )
    params.update(overrides)
    return dataclasses.replace(GpuSpec(), **params)


def scripted_conversation(
    conv_id: int,
    turns: Sequence[Tuple[int, int]],
    start: float = 0.0,
    think: float = 0.0,
) -> Conversation:
    conv = Conversation(
        conv_id=conv_id,
        turns=[Turn(prompt_tokens=p, output_tokens=o) for p, o in turns],
        start_time=start,
    )
    conv.think_times = [think] * (len(conv.turns) - 1)
    return conv


def serve(engine_factory, conversations: List[Conversation], until=None):
    """Run a workload; returns (engine, driver, loop)."""
    loop = EventLoop()
    engine = engine_factory(loop)
    driver = ConversationDriver(loop, engine, conversations)
    driver.run(until=until, max_events=2_000_000)
    return engine, driver, loop


@pytest.fixture
def small_batch_config():
    return BatchConfig(max_batch_tokens=256, max_running=16)
