"""Tests for the multi-token paged attention kernel (the §4.4 contribution)."""

import numpy as np
import pytest

from repro.kernels import (
    AttentionRequest,
    multi_token_attention,
    reference_attention,
)

from tests.kernels.conftest import make_request, scatter_context


class TestAgainstReference:
    def test_matches_reference_on_scattered_slots(self, rng):
        """Physical placement must be invisible: the paged kernel on a
        scattered cache equals the reference on logical-order tensors."""
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=5, ctx=37)
        out = multi_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_full_prefill(self, rng):
        """q == ctx: a fresh prompt (lower-triangular causal attention)."""
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=12, ctx=12)
        out = multi_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_single_query_token(self, rng):
        """q == 1: the generation-phase special case."""
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=1, ctx=25)
        out = multi_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_gqa_matches_reference(self, rng):
        request, k_log, v_log, k_cache, v_cache = make_request(
            rng, q_len=4, ctx=30, num_heads=8, kv_heads=2
        )
        out = multi_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_gqa_equals_mha_with_repeated_kv(self, rng):
        """GQA must equal MHA run with each KV head explicitly repeated."""
        request, k_log, v_log, k_cache, v_cache = make_request(
            rng, q_len=3, ctx=20, num_heads=4, kv_heads=2
        )
        out = multi_token_attention([request], k_cache, v_cache)[0]
        k_rep = np.repeat(k_log, 2, axis=1)
        v_rep = np.repeat(v_log, 2, axis=1)
        expected = reference_attention(request.query, k_rep, v_rep)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_custom_scale(self, rng):
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=4, ctx=16)
        out = multi_token_attention([request], k_cache, v_cache, scale=0.5)[0]
        expected = reference_attention(request.query, k_log, v_log, scale=0.5)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


class TestCausality:
    def test_future_kv_does_not_influence_output(self, rng):
        """Corrupting context *behind* the causal horizon of every query
        token must not change any output (the fused mask of Figure 9)."""
        request, _, _, k_cache, v_cache = make_request(
            rng, q_len=4, ctx=32, query_offset=10
        )
        out1 = multi_token_attention([request], k_cache, v_cache)[0]
        # Positions 14..31 are invisible to all query tokens (last query
        # position is 13); trash their KV rows.
        for pos in range(14, 32):
            k_cache[request.slots[pos]] = 1e6
            v_cache[request.slots[pos]] = -1e6
        out2 = multi_token_attention([request], k_cache, v_cache)[0]
        np.testing.assert_array_equal(out1, out2)

    def test_visible_kv_does_influence_output(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, q_len=4, ctx=32)
        out1 = multi_token_attention([request], k_cache, v_cache)[0]
        v_cache[request.slots[0]] += 1.0  # visible to every query token
        out2 = multi_token_attention([request], k_cache, v_cache)[0]
        assert not np.allclose(out1, out2)

    def test_earlier_query_token_sees_strictly_less(self, rng):
        """Query token i's output is independent of query tokens > i."""
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=6, ctx=24)
        full = multi_token_attention([request], k_cache, v_cache)[0]
        trimmed = AttentionRequest(
            query=request.query[:3],
            slots=request.slots,
            query_offset=request.query_offset,
        )
        partial = multi_token_attention([trimmed], k_cache, v_cache)[0]
        np.testing.assert_allclose(full[:3], partial, rtol=1e-9, atol=1e-9)


class TestBatching:
    def test_ragged_batch_mixed_phases(self, rng):
        """A unified batch: one generation-phase request (q=1) and one
        prefill-phase request (q=9) in the same kernel call (§4.4.1)."""
        req_a, k_log_a, v_log_a, k_cache, v_cache = make_request(
            rng, q_len=1, ctx=17, num_slots=200
        )
        # Second request shares the same physical cache arrays.
        k_log_b = rng.standard_normal((9, 4, 8))
        v_log_b = rng.standard_normal((9, 4, 8))
        used = set(req_a.slots)
        free = [s for s in range(200) if s not in used]
        slots_b = list(rng.permutation(free)[:9])
        k_cache[slots_b] = k_log_b
        v_cache[slots_b] = v_log_b
        req_b = AttentionRequest(
            query=rng.standard_normal((9, 4, 8)), slots=slots_b
        )
        outs = multi_token_attention([req_a, req_b], k_cache, v_cache)
        np.testing.assert_allclose(
            outs[0],
            reference_attention(req_a.query, k_log_a, v_log_a),
            rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            outs[1],
            reference_attention(req_b.query, k_log_b, v_log_b),
            rtol=1e-9, atol=1e-9,
        )

    def test_batch_output_count(self, rng):
        reqs = []
        _, _, _, k_cache, v_cache = make_request(rng, 1, 4, num_slots=500)
        for q_len in (1, 3, 7):
            r, _, _, kc, vc = make_request(rng, q_len, q_len + 5, num_slots=500)
            k_cache[r.slots] = kc[r.slots]
            v_cache[r.slots] = vc[r.slots]
            reqs.append(r)
        outs = multi_token_attention(reqs, k_cache, v_cache)
        assert [o.shape[0] for o in outs] == [1, 3, 7]

    def test_empty_batch(self, rng):
        _, _, _, k_cache, v_cache = make_request(rng, 1, 4)
        assert multi_token_attention([], k_cache, v_cache) == []


class TestTiling:
    @pytest.mark.parametrize("tile", [1, 2, 7, 16, 48, 1000])
    def test_tile_size_does_not_change_result(self, rng, tile):
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=6, ctx=53)
        out = multi_token_attention([request], k_cache, v_cache, tile=tile)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_invalid_tile_rejected(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, 2, 8)
        with pytest.raises(ValueError):
            multi_token_attention([request], k_cache, v_cache, tile=0)


class TestNumericalStability:
    def test_large_scores_do_not_overflow(self, rng):
        """Online softmax must survive scores far beyond exp() range."""
        ctx, q_len = 40, 4
        _, _, k_cache, v_cache, slots = scatter_context(rng, ctx, 2, 4, 100)
        k_cache[slots] *= 200.0
        query = rng.standard_normal((q_len, 2, 4)) * 200.0
        request = AttentionRequest(query=query, slots=slots)
        out = multi_token_attention([request], k_cache, v_cache)[0]
        assert np.all(np.isfinite(out))

    def test_uniform_scores_average_values(self, rng):
        """Zero queries -> uniform weights -> output is the causal mean."""
        ctx = 12
        kv_heads, head_dim = 2, 4
        _, v_log, k_cache, v_cache, slots = scatter_context(
            rng, ctx, kv_heads, head_dim, 40
        )
        query = np.zeros((ctx, 2, 4))
        request = AttentionRequest(query=query, slots=slots)
        out = multi_token_attention([request], k_cache, v_cache)[0]
        for i in range(ctx):
            np.testing.assert_allclose(
                out[i], v_log[: i + 1].mean(axis=0), rtol=1e-9, atol=1e-9
            )


class TestValidation:
    def test_cache_shape_mismatch(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, 2, 8)
        with pytest.raises(ValueError):
            multi_token_attention([request], k_cache, v_cache[:-1])

    def test_request_validation(self, rng):
        with pytest.raises(ValueError):
            AttentionRequest(query=np.zeros((2, 2)), slots=[0, 1])  # rank 2
        with pytest.raises(ValueError):
            AttentionRequest(query=np.zeros((5, 2, 4)), slots=[0, 1])  # q > ctx
        with pytest.raises(ValueError):
            AttentionRequest(
                query=np.zeros((2, 2, 4)), slots=[0, 1, 2], query_offset=2
            )  # offset + q > ctx
