"""Equivalence tests for the vectorized batched kernels.

The batched/vectorized layer is a pure performance optimisation: every
test here pins its outputs to the per-request kernels (the correctness
oracle) across architectures, GQA ratios, ragged batches and sub-request
splits.  ``repro bench`` measures the speed; these tests pin the math.
"""

import numpy as np
import pytest

from repro.kernels import (
    AttentionRequest,
    batched_single_token_attention,
    multi_token_attention,
    reference_attention,
    single_token_attention,
    split_disjoint_query,
    vectorized_multi_token_attention,
)

from tests.kernels.conftest import make_request, scatter_context

TOL = dict(rtol=1e-9, atol=1e-9)


def make_batch(rng, ctx_lens, q_lens=None, num_heads=4, kv_heads=4, head_dim=8):
    """Disjoint scattered requests sharing one cache, plus logical K/V."""
    num_slots = 3 * sum(ctx_lens)
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim)) * 100
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim)) * 100
    perm = rng.permutation(num_slots)
    requests, used = [], 0
    q_lens = q_lens or [1] * len(ctx_lens)
    for ctx, q_len in zip(ctx_lens, q_lens):
        slots = list(perm[used : used + ctx])
        used += ctx
        k_cache[slots] = rng.standard_normal((ctx, kv_heads, head_dim))
        v_cache[slots] = rng.standard_normal((ctx, kv_heads, head_dim))
        query = rng.standard_normal((q_len, num_heads, head_dim))
        requests.append(AttentionRequest(query=query, slots=slots))
    return requests, k_cache, v_cache


class TestBatchedSingleToken:
    def test_matches_per_request_loop(self, rng):
        requests, k_cache, v_cache = make_batch(rng, [17, 5, 33, 1])
        batched = batched_single_token_attention(requests, k_cache, v_cache)
        loop = single_token_attention(requests, k_cache, v_cache)
        assert len(batched) == len(loop)
        for got, want in zip(batched, loop):
            np.testing.assert_allclose(got, want, **TOL)

    def test_matches_multi_token_q1(self, rng):
        """Decode is the q=1 special case of multi-token attention
        (§4.4.1) for the batched kernel too."""
        requests, k_cache, v_cache = make_batch(rng, [9, 24, 13])
        batched = batched_single_token_attention(requests, k_cache, v_cache)
        multi = multi_token_attention(requests, k_cache, v_cache)
        for got, want in zip(batched, multi):
            np.testing.assert_allclose(got, want, **TOL)

    def test_matches_logical_reference(self, rng):
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=1, ctx=27)
        out = batched_single_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, **TOL)

    @pytest.mark.parametrize("num_heads,kv_heads", [(8, 8), (8, 4), (8, 2), (8, 1)])
    def test_gqa_ratios(self, rng, num_heads, kv_heads):
        requests, k_cache, v_cache = make_batch(
            rng, [12, 30, 7], num_heads=num_heads, kv_heads=kv_heads
        )
        batched = batched_single_token_attention(requests, k_cache, v_cache)
        loop = single_token_attention(requests, k_cache, v_cache)
        for got, want in zip(batched, loop):
            np.testing.assert_allclose(got, want, **TOL)

    def test_uniform_lengths(self, rng):
        """Uniform-length batches take the no-mask fast path."""
        requests, k_cache, v_cache = make_batch(rng, [16, 16, 16, 16])
        batched = batched_single_token_attention(requests, k_cache, v_cache)
        loop = single_token_attention(requests, k_cache, v_cache)
        for got, want in zip(batched, loop):
            np.testing.assert_allclose(got, want, **TOL)

    def test_explicit_scale(self, rng):
        requests, k_cache, v_cache = make_batch(rng, [8, 19])
        batched = batched_single_token_attention(
            requests, k_cache, v_cache, scale=0.3
        )
        loop = single_token_attention(requests, k_cache, v_cache, scale=0.3)
        for got, want in zip(batched, loop):
            np.testing.assert_allclose(got, want, **TOL)

    def test_empty_batch(self, rng):
        k_cache = rng.standard_normal((4, 2, 8))
        assert batched_single_token_attention([], k_cache, k_cache) == []

    def test_rejects_multi_token_requests(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, q_len=3, ctx=10)
        with pytest.raises(ValueError, match="exactly one query token"):
            batched_single_token_attention([request], k_cache, v_cache)

    def test_rejects_interior_query(self, rng):
        request, _, _, k_cache, v_cache = make_request(
            rng, q_len=1, ctx=10, query_offset=4
        )
        with pytest.raises(ValueError, match="newest"):
            batched_single_token_attention([request], k_cache, v_cache)

    def test_rejects_heterogeneous_heads(self, rng):
        req_a, _, _, k_cache, v_cache = make_request(
            rng, q_len=1, ctx=6, num_heads=4, kv_heads=4, num_slots=64
        )
        query_b = np.zeros((1, 8, 8))
        req_b = AttentionRequest(query=query_b, slots=[s + 1 for s in req_a.slots[:3]])
        with pytest.raises(ValueError, match="heterogeneous"):
            batched_single_token_attention([req_a, req_b], k_cache, v_cache)


class TestVectorizedMultiToken:
    @pytest.mark.parametrize("num_heads,kv_heads", [(4, 4), (8, 2), (8, 1)])
    def test_matches_tiled(self, rng, num_heads, kv_heads):
        requests, k_cache, v_cache = make_batch(
            rng,
            ctx_lens=[40, 70, 12],
            q_lens=[6, 33, 12],
            num_heads=num_heads,
            kv_heads=kv_heads,
        )
        fast = vectorized_multi_token_attention(requests, k_cache, v_cache)
        tiled = multi_token_attention(requests, k_cache, v_cache)
        for got, want in zip(fast, tiled):
            np.testing.assert_allclose(got, want, **TOL)

    def test_single_tile_fast_path(self, rng):
        """Contexts below one tile take the non-tiled softmax path."""
        requests, k_cache, v_cache = make_batch(rng, [20, 31], q_lens=[5, 31])
        fast = vectorized_multi_token_attention(
            requests, k_cache, v_cache, tile=64
        )
        tiled = multi_token_attention(requests, k_cache, v_cache, tile=8)
        for got, want in zip(fast, tiled):
            np.testing.assert_allclose(got, want, **TOL)

    def test_tiled_path_matches_across_tile_sizes(self, rng):
        requests, k_cache, v_cache = make_batch(rng, [100], q_lens=[37])
        baseline = multi_token_attention(requests, k_cache, v_cache)[0]
        for tile in (7, 16, 33, 128):
            out = vectorized_multi_token_attention(
                requests, k_cache, v_cache, tile=tile
            )[0]
            np.testing.assert_allclose(out, baseline, **TOL)

    def test_causal_masking_matches_reference(self, rng):
        """Partial-query (prefill continuation) masking is preserved."""
        ctx, q_len = 24, 9
        k_log, v_log, k_cache, v_cache, slots = scatter_context(
            rng, ctx, kv_heads=4, head_dim=8, num_slots=96
        )
        query = rng.standard_normal((q_len, 4, 8))
        request = AttentionRequest(query=query, slots=slots)
        fast = vectorized_multi_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(query, k_log, v_log)
        np.testing.assert_allclose(fast, expected, **TOL)

    def test_decode_shape_matches_batched(self, rng):
        """All three kernels agree on a q=1 batch."""
        requests, k_cache, v_cache = make_batch(rng, [15, 28, 3])
        fast = vectorized_multi_token_attention(requests, k_cache, v_cache)
        batched = batched_single_token_attention(requests, k_cache, v_cache)
        for got, want in zip(fast, batched):
            np.testing.assert_allclose(got, want, **TOL)

    def test_subrequest_split_equivalence(self, rng):
        """Figure 8(d): attention over a split disjoint query is unchanged
        when computed by the vectorized kernel."""
        total, dropped, num_query = 40, 12, 20
        k_log, v_log, k_cache, v_cache, slots = scatter_context(
            rng, total, kv_heads=4, head_dim=8, num_slots=160
        )
        query = rng.standard_normal((num_query, 4, 8))
        parts = split_disjoint_query(query, slots, dropped=dropped, shared_prefix=8)
        tiled = multi_token_attention(parts, k_cache, v_cache)
        fast = vectorized_multi_token_attention(parts, k_cache, v_cache)
        for got, want in zip(fast, tiled):
            np.testing.assert_allclose(got, want, **TOL)

    def test_empty_query(self, rng):
        request = AttentionRequest(query=np.zeros((0, 4, 8)), slots=[0, 1])
        k_cache = rng.standard_normal((4, 4, 8))
        out = vectorized_multi_token_attention([request], k_cache, k_cache)[0]
        assert out.shape == (0, 4, 8)

    def test_rejects_bad_tile(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, q_len=2, ctx=6)
        with pytest.raises(ValueError, match="tile"):
            vectorized_multi_token_attention([request], k_cache, v_cache, tile=0)
