"""Tests for Figure 8(d) sub-request splitting (dropped-token recompute)."""

import numpy as np
import pytest

from repro.kernels import (
    multi_token_attention,
    reference_attention,
    split_disjoint_query,
)

from tests.kernels.conftest import scatter_context


def full_sequence_setup(rng, dropped, cached, new_prompt, kv_heads=2, heads=4, dim=8):
    """Build a full logical sequence and its scattered cache."""
    total = dropped + cached + new_prompt
    k_log, v_log, k_cache, v_cache, slots = scatter_context(
        rng, total, kv_heads, dim, total * 3
    )
    full_query = rng.standard_normal((total, heads, dim))
    return k_log, v_log, k_cache, v_cache, slots, full_query


class TestSplit:
    def test_two_subrequests_produced(self, rng):
        query = rng.standard_normal((10, 4, 8))
        subs = split_disjoint_query(query, slots=list(range(30)), dropped=4)
        assert len(subs) == 2
        prefix, prompt = subs
        assert prefix.num_query_tokens == 4
        assert prefix.query_offset == 0
        assert prefix.context_len == 4  # attends to itself only
        assert prompt.num_query_tokens == 6
        assert prompt.query_offset == 24
        assert prompt.context_len == 30  # attends to everything

    def test_zero_dropped_degenerates(self, rng):
        query = rng.standard_normal((6, 4, 8))
        subs = split_disjoint_query(query, slots=list(range(20)), dropped=0)
        assert len(subs) == 1
        assert subs[0].query_offset == 14

    def test_all_dropped_no_new_prompt(self, rng):
        query = rng.standard_normal((6, 4, 8))
        subs = split_disjoint_query(query, slots=list(range(6)), dropped=6)
        assert len(subs) == 1
        assert subs[0].query_offset == 0

    def test_validation(self, rng):
        query = rng.standard_normal((6, 4, 8))
        with pytest.raises(ValueError):
            split_disjoint_query(query, slots=list(range(20)), dropped=-1)
        with pytest.raises(ValueError):
            split_disjoint_query(query, slots=list(range(20)), dropped=7)
        with pytest.raises(ValueError):
            split_disjoint_query(query, slots=list(range(4)), dropped=2)


class TestEquivalence:
    """The paper's core correctness claim for §4.3.4: processing the two
    disconnected query ranges as sub-requests over a shared context yields
    exactly what a from-scratch full prefill would yield at those
    positions (causal attention at position i depends only on <= i)."""

    @pytest.mark.parametrize(
        "dropped,cached,new_prompt",
        [(4, 10, 6), (32, 64, 16), (1, 1, 1), (8, 0, 8)],
    )
    def test_subrequests_match_full_prefill(self, rng, dropped, cached, new_prompt):
        k_log, v_log, k_cache, v_cache, slots, full_query = full_sequence_setup(
            rng, dropped, cached, new_prompt
        )
        total = dropped + cached + new_prompt
        # Ground truth: full from-scratch causal prefill.
        expected = reference_attention(full_query, k_log, v_log, query_offset=0)

        # Pensieve path: query = dropped prefix ++ new prompt.
        query = np.concatenate(
            [full_query[:dropped], full_query[total - new_prompt:]], axis=0
        )
        subs = split_disjoint_query(query, slots, dropped)
        outs = multi_token_attention(subs, k_cache, v_cache)

        np.testing.assert_allclose(
            outs[0], expected[:dropped], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            outs[1], expected[total - new_prompt:], rtol=1e-9, atol=1e-9
        )

    def test_no_memory_copy_needed(self, rng):
        """The sub-requests reference the original slot list (auxiliary
        data only, §4.3.4) — the second sub-request's slots are the very
        same list object contents."""
        query = rng.standard_normal((10, 4, 8))
        slots = list(range(100, 130))
        subs = split_disjoint_query(query, slots, dropped=4)
        assert subs[0].slots == slots[:4]
        assert subs[1].slots == slots


class TestSharedPrefix:
    """Footnote 3 extension: a pinned shared prefix (system prompt)
    precedes the conversation's own context."""

    @pytest.mark.parametrize("shared,dropped,cached,new_prompt",
                             [(6, 4, 10, 5), (8, 8, 0, 8), (3, 1, 1, 1)])
    def test_split_with_shared_prefix_matches_full_prefill(
        self, rng, shared, dropped, cached, new_prompt
    ):
        total = shared + dropped + cached + new_prompt
        k_log, v_log, k_cache, v_cache, slots = scatter_context(
            rng, total, 2, 8, total * 3
        )
        full_query = rng.standard_normal((total, 4, 8))
        expected = reference_attention(full_query, k_log, v_log, query_offset=0)

        query = np.concatenate(
            [
                full_query[shared : shared + dropped],
                full_query[total - new_prompt :],
            ],
            axis=0,
        )
        subs = split_disjoint_query(query, slots, dropped, shared_prefix=shared)
        outs = multi_token_attention(subs, k_cache, v_cache)
        np.testing.assert_allclose(
            outs[0], expected[shared : shared + dropped], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            outs[1], expected[total - new_prompt :], rtol=1e-9, atol=1e-9
        )

    def test_prefix_subrequest_sees_shared_context(self, rng):
        query = rng.standard_normal((6, 4, 8))
        slots = list(range(40))
        subs = split_disjoint_query(query, slots, dropped=2, shared_prefix=10)
        prefix = subs[0]
        assert prefix.query_offset == 10
        assert prefix.context_len == 12  # shared 10 + dropped 2

    def test_shared_prefix_validation(self, rng):
        query = rng.standard_normal((6, 4, 8))
        with pytest.raises(ValueError):
            split_disjoint_query(query, list(range(20)), 2, shared_prefix=-1)
        with pytest.raises(ValueError):
            split_disjoint_query(query, list(range(8)), 2, shared_prefix=5)
