"""Property-based tests (hypothesis) for the fully-ragged batched kernel.

The contract of :func:`ragged_multi_token_attention` is numerical
equivalence with the per-request tiled oracle within 1e-6 for *any*
unified batch — mixed prefill/decode query lengths, Figure 8(d)
dropped-prefix recompute splits, shared system-prompt slots, every GQA
grouping — including when the memory-footprint guard silently routes
the batch to the vectorized fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    AttentionRequest,
    multi_token_attention,
    ragged_multi_token_attention,
)

# The acceptance contract is 1e-6; fp64 should land far below it.
TOL = dict(rtol=1e-9, atol=1e-9)


@st.composite
def ragged_batch(draw):
    """A random unified batch over one scattered KV cache.

    Returns ``(requests, k_cache, v_cache)`` with per-request query
    lengths (0 allowed), context lengths, query offsets (0 = recompute
    split), and optionally a shared slot prefix across all requests.
    """
    n = draw(st.integers(min_value=1, max_value=6))
    kv_heads = draw(st.sampled_from([1, 2, 3]))
    group = draw(st.sampled_from([1, 2, 4]))
    num_heads = kv_heads * group
    head_dim = draw(st.sampled_from([1, 4, 8]))
    shared_prefix = draw(st.integers(min_value=0, max_value=4))
    shapes = []
    for _ in range(n):
        q_len = draw(st.integers(min_value=0, max_value=6))
        extra = draw(st.integers(min_value=0, max_value=20))
        own_ctx = max(q_len + extra, 1)
        offset = draw(st.integers(min_value=0, max_value=own_ctx - q_len))
        shapes.append((q_len, own_ctx, offset))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))

    rng = np.random.default_rng(seed)
    total = shared_prefix + sum(ctx for _, ctx, _ in shapes)
    num_slots = total + draw(st.integers(min_value=0, max_value=16))
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    perm = rng.permutation(num_slots)
    prefix = list(perm[:shared_prefix])
    used = shared_prefix
    requests = []
    for q_len, own_ctx, offset in shapes:
        own = list(perm[used : used + own_ctx])
        used += own_ctx
        query = rng.standard_normal((q_len, num_heads, head_dim))
        requests.append(
            AttentionRequest(
                query=query,
                slots=prefix + own,
                query_offset=shared_prefix + offset,
            )
        )
    return requests, k_cache, v_cache


@settings(max_examples=60, deadline=None)
@given(batch=ragged_batch())
def test_ragged_equals_tiled_oracle(batch):
    """For any unified batch shape, the one-shot ragged kernel matches
    the per-request tiled oracle well within the 1e-6 contract."""
    requests, k_cache, v_cache = batch
    expected = multi_token_attention(requests, k_cache, v_cache)
    out = ragged_multi_token_attention(requests, k_cache, v_cache)
    assert len(out) == len(expected)
    for o, e in zip(out, expected):
        assert o.shape == e.shape
        np.testing.assert_allclose(o, e, **TOL)


@settings(max_examples=25, deadline=None)
@given(batch=ragged_batch())
def test_fallback_guard_path_is_equivalent(batch):
    """Forcing the memory-footprint guard (max_score_elements=1) routes
    through the vectorized fallback, which must satisfy the same
    contract — callers cannot observe which path ran."""
    requests, k_cache, v_cache = batch
    expected = multi_token_attention(requests, k_cache, v_cache)
    out = ragged_multi_token_attention(
        requests, k_cache, v_cache, max_score_elements=1
    )
    for o, e in zip(out, expected):
        np.testing.assert_allclose(o, e, **TOL)


def _split_pair(rng, num_heads, kv_heads, head_dim, dropped, tail_ctx):
    """One conversation split per Figure 8(d): a dropped-prefix
    recompute sub-request (queries at position 0) plus the tail
    sub-request attending over the full context."""
    ctx = dropped + tail_ctx
    num_slots = ctx + 8
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
    slots = list(rng.permutation(num_slots)[:ctx])
    recompute = AttentionRequest(
        query=rng.standard_normal((dropped, num_heads, head_dim)),
        slots=slots,
        query_offset=0,
    )
    tail = AttentionRequest(
        query=rng.standard_normal((tail_ctx, num_heads, head_dim)),
        slots=slots,
        query_offset=dropped,
    )
    return [recompute, tail], k_cache, v_cache


def test_recompute_split_batch_matches_oracle():
    """A batch of Figure 8(d) split pairs (shared slots within each
    pair, segment-masked prefix queries) matches the oracle."""
    rng = np.random.default_rng(7)
    requests, k_cache, v_cache = _split_pair(rng, 8, 2, 8, dropped=5, tail_ctx=9)
    more, k2, v2 = _split_pair(rng, 8, 2, 8, dropped=3, tail_ctx=4)
    # Merge the two pairs into one cache/batch.
    offset = k_cache.shape[0]
    k_cache = np.concatenate([k_cache, k2])
    v_cache = np.concatenate([v_cache, v2])
    for r in more:
        r.slots = [s + offset for s in r.slots]
    batch = requests + more
    expected = multi_token_attention(batch, k_cache, v_cache)
    out = ragged_multi_token_attention(batch, k_cache, v_cache)
    for o, e in zip(out, expected):
        np.testing.assert_allclose(o, e, **TOL)


def test_empty_batch_returns_empty_list():
    k_cache = np.zeros((4, 2, 8))
    assert ragged_multi_token_attention([], k_cache, k_cache) == []


def test_zero_length_queries_yield_empty_outputs():
    rng = np.random.default_rng(3)
    k_cache = rng.standard_normal((32, 2, 4))
    v_cache = rng.standard_normal((32, 2, 4))
    perm = rng.permutation(32)
    empty = AttentionRequest(
        query=np.empty((0, 4, 4)), slots=list(perm[:6])
    )
    real = AttentionRequest(
        query=rng.standard_normal((3, 4, 4)), slots=list(perm[6:16])
    )
    out = ragged_multi_token_attention([empty, real, empty], k_cache, v_cache)
    assert out[0].shape == (0, 4, 4) and out[2].shape == (0, 4, 4)
    expected = multi_token_attention([real], k_cache, v_cache)[0]
    np.testing.assert_allclose(out[1], expected, **TOL)


def test_heterogeneous_head_counts_rejected():
    rng = np.random.default_rng(0)
    k_cache = rng.standard_normal((16, 2, 4))
    v_cache = rng.standard_normal((16, 2, 4))
    a = AttentionRequest(query=rng.standard_normal((2, 4, 4)), slots=[0, 1])
    b = AttentionRequest(query=rng.standard_normal((2, 2, 4)), slots=[2, 3])
    with pytest.raises(ValueError):
        ragged_multi_token_attention([a, b], k_cache, v_cache)


def test_cache_shape_mismatch_rejected():
    rng = np.random.default_rng(0)
    k_cache = rng.standard_normal((16, 2, 4))
    v_cache = rng.standard_normal((16, 2, 8))
    r = AttentionRequest(query=rng.standard_normal((1, 4, 4)), slots=[0, 1])
    with pytest.raises(ValueError):
        ragged_multi_token_attention([r], k_cache, v_cache)
