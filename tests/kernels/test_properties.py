"""Property-based tests (hypothesis) for the attention kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    AttentionRequest,
    multi_token_attention,
    reference_attention,
)


@st.composite
def attention_case(draw):
    """Random (query, logical K/V, scattered cache, slots) tuples."""
    q_len = draw(st.integers(min_value=1, max_value=6))
    extra_ctx = draw(st.integers(min_value=0, max_value=24))
    ctx = q_len + extra_ctx
    kv_heads = draw(st.sampled_from([1, 2, 3]))
    group = draw(st.sampled_from([1, 2, 4]))
    num_heads = kv_heads * group
    head_dim = draw(st.sampled_from([1, 2, 4, 8]))
    offset = draw(st.integers(min_value=0, max_value=ctx - q_len))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    num_slots = ctx + draw(st.integers(min_value=0, max_value=32))
    k_log = rng.standard_normal((ctx, kv_heads, head_dim))
    v_log = rng.standard_normal((ctx, kv_heads, head_dim))
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim)) * 50
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim)) * 50
    slots = list(rng.permutation(num_slots)[:ctx])
    k_cache[slots] = k_log
    v_cache[slots] = v_log
    query = rng.standard_normal((q_len, num_heads, head_dim))
    tile = draw(st.sampled_from([1, 3, 16, 48]))
    return query, k_log, v_log, k_cache, v_cache, slots, offset, tile


@settings(max_examples=60, deadline=None)
@given(case=attention_case())
def test_paged_kernel_equals_reference(case):
    """For any shape, scattering, offset and tile size, the multi-token
    paged kernel reproduces the contiguous reference bit-for-bit (up to
    float round-off)."""
    query, k_log, v_log, k_cache, v_cache, slots, offset, tile = case
    request = AttentionRequest(query=query, slots=slots, query_offset=offset)
    out = multi_token_attention([request], k_cache, v_cache, tile=tile)[0]
    expected = reference_attention(query, k_log, v_log, query_offset=offset)
    np.testing.assert_allclose(out, expected, rtol=1e-8, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(case=attention_case())
def test_outputs_are_convex_combinations_of_values(case):
    """Attention outputs are convex combinations of V rows, so every output
    coordinate lies within the min/max of the visible values."""
    query, _, v_log, k_cache, v_cache, slots, offset, tile = case
    request = AttentionRequest(query=query, slots=slots, query_offset=offset)
    out = multi_token_attention([request], k_cache, v_cache, tile=tile)[0]
    num_heads = query.shape[1]
    group = num_heads // v_log.shape[1]
    v_exp = np.repeat(v_log, group, axis=1)  # [ctx, H, d]
    for i in range(request.num_query_tokens):
        visible = v_exp[: offset + i + 1]  # [vis, H, d]
        lo = visible.min(axis=0) - 1e-9
        hi = visible.max(axis=0) + 1e-9
        assert np.all(out[i] >= lo) and np.all(out[i] <= hi)


@settings(max_examples=40, deadline=None)
@given(case=attention_case(), perm_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_physical_rescattering_invariance(case, perm_seed):
    """Moving the KV rows to completely different physical slots (a
    simulated swap-out/swap-in round trip) must leave the attention output
    numerically identical — the kernel may depend only on logical order."""
    query, k_log, v_log, k_cache, v_cache, slots, offset, tile = case
    request = AttentionRequest(query=query, slots=slots, query_offset=offset)
    out1 = multi_token_attention([request], k_cache, v_cache, tile=tile)[0]

    rng = np.random.default_rng(perm_seed)
    new_slots = list(rng.permutation(k_cache.shape[0])[: len(slots)])
    k_cache2 = rng.standard_normal(k_cache.shape) * 50
    v_cache2 = rng.standard_normal(v_cache.shape) * 50
    k_cache2[new_slots] = k_log
    v_cache2[new_slots] = v_log
    moved = AttentionRequest(query=query, slots=new_slots, query_offset=offset)
    out2 = multi_token_attention([moved], k_cache2, v_cache2, tile=tile)[0]
    np.testing.assert_array_equal(out1, out2)
