"""Tests for the single-token kernel and the Figure 12 straw-men.

All variants must be numerically interchangeable; Figure 12 is about their
*speed*, not their output.
"""

import numpy as np
import pytest

from repro.kernels import (
    AttentionRequest,
    copyout_attention,
    multi_token_attention,
    multiround_attention,
    reference_attention,
    single_token_attention,
)

from tests.kernels.conftest import make_request


class TestSingleToken:
    def test_matches_reference(self, rng):
        request, k_log, v_log, k_cache, v_cache = make_request(rng, q_len=1, ctx=33)
        out = single_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_is_special_case_of_multi_token(self, rng):
        """§4.4.1: generation-phase attention is multi-token attention
        with query size 1."""
        request, _, _, k_cache, v_cache = make_request(rng, q_len=1, ctx=21)
        single = single_token_attention([request], k_cache, v_cache)[0]
        multi = multi_token_attention([request], k_cache, v_cache)[0]
        np.testing.assert_allclose(single, multi, rtol=1e-9, atol=1e-9)

    def test_rejects_multi_token_requests(self, rng):
        """§3.2: PagedAttention limits each request to one input token."""
        request, _, _, k_cache, v_cache = make_request(rng, q_len=3, ctx=10)
        with pytest.raises(ValueError, match="exactly one query token"):
            single_token_attention([request], k_cache, v_cache)

    def test_rejects_interior_query(self, rng):
        request, _, _, k_cache, v_cache = make_request(
            rng, q_len=1, ctx=10, query_offset=4
        )
        with pytest.raises(ValueError, match="newest"):
            single_token_attention([request], k_cache, v_cache)

    def test_gqa(self, rng):
        request, k_log, v_log, k_cache, v_cache = make_request(
            rng, q_len=1, ctx=19, num_heads=8, kv_heads=2
        )
        out = single_token_attention([request], k_cache, v_cache)[0]
        expected = reference_attention(request.query, k_log, v_log)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


class TestCopyOut:
    def test_matches_multi_token(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, q_len=5, ctx=41)
        copy_out = copyout_attention([request], k_cache, v_cache)[0]
        multi = multi_token_attention([request], k_cache, v_cache)[0]
        np.testing.assert_allclose(copy_out, multi, rtol=1e-9, atol=1e-9)

    def test_batch(self, rng):
        reqs = []
        request, _, _, k_cache, v_cache = make_request(rng, 2, 10, num_slots=300)
        reqs.append(request)
        outs = copyout_attention(reqs, k_cache, v_cache)
        assert len(outs) == 1 and outs[0].shape[0] == 2


class TestMultiRound:
    def test_matches_multi_token(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, q_len=6, ctx=29)
        rounds = multiround_attention([request], k_cache, v_cache)[0]
        multi = multi_token_attention([request], k_cache, v_cache)[0]
        np.testing.assert_allclose(rounds, multi, rtol=1e-9, atol=1e-9)

    def test_ragged_batch(self, rng):
        """Requests with different prompt lengths drop out of later rounds."""
        req_a, k_a, v_a, k_cache, v_cache = make_request(
            rng, q_len=2, ctx=12, num_slots=400
        )
        k_b = rng.standard_normal((20, 4, 8))
        v_b = rng.standard_normal((20, 4, 8))
        used = set(req_a.slots)
        free = [s for s in range(400) if s not in used]
        slots_b = list(rng.permutation(free)[:20])
        k_cache[slots_b] = k_b
        v_cache[slots_b] = v_b
        req_b = AttentionRequest(query=rng.standard_normal((5, 4, 8)), slots=slots_b)
        outs = multiround_attention([req_a, req_b], k_cache, v_cache)
        np.testing.assert_allclose(
            outs[0], reference_attention(req_a.query, k_a, v_a), rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            outs[1], reference_attention(req_b.query, k_b, v_b), rtol=1e-9, atol=1e-9
        )

    def test_single_round_equals_single_token(self, rng):
        request, _, _, k_cache, v_cache = make_request(rng, q_len=1, ctx=15)
        rounds = multiround_attention([request], k_cache, v_cache)[0]
        single = single_token_attention([request], k_cache, v_cache)[0]
        np.testing.assert_allclose(rounds, single, rtol=1e-9, atol=1e-9)
