"""Shared helpers for kernel tests."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.kernels import AttentionRequest


def scatter_context(
    rng: np.random.Generator,
    ctx: int,
    kv_heads: int,
    head_dim: int,
    num_slots: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[int]]:
    """Create logical K/V for a context and scatter it over a slot array.

    Returns ``(k_logical, v_logical, k_cache, v_cache, slots)`` where the
    cache arrays hold the logical rows at randomly chosen physical slots
    (and garbage everywhere else, to catch out-of-bounds gathers).
    """
    assert num_slots >= ctx
    k_logical = rng.standard_normal((ctx, kv_heads, head_dim))
    v_logical = rng.standard_normal((ctx, kv_heads, head_dim))
    # Garbage fill so reading a wrong slot corrupts the result loudly.
    k_cache = rng.standard_normal((num_slots, kv_heads, head_dim)) * 100
    v_cache = rng.standard_normal((num_slots, kv_heads, head_dim)) * 100
    slots = list(rng.permutation(num_slots)[:ctx])
    k_cache[slots] = k_logical
    v_cache[slots] = v_logical
    return k_logical, v_logical, k_cache, v_cache, slots


def make_request(
    rng: np.random.Generator,
    q_len: int,
    ctx: int,
    num_heads: int = 4,
    kv_heads: int = 4,
    head_dim: int = 8,
    num_slots: int = 0,
    query_offset: int = -1,
):
    """Build one scattered AttentionRequest plus its logical K/V."""
    num_slots = num_slots or ctx * 3
    k_log, v_log, k_cache, v_cache, slots = scatter_context(
        rng, ctx, kv_heads, head_dim, num_slots
    )
    query = rng.standard_normal((q_len, num_heads, head_dim))
    request = AttentionRequest(query=query, slots=slots, query_offset=query_offset)
    return request, k_log, v_log, k_cache, v_cache


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
