"""Tests for the incremental decode packing cache.

The load-bearing guarantee is *indistinguishability*: after any sequence
of block-table mutations (append / swap-out / swap-in / recompute-split /
request exit), the incrementally maintained packed table must be
array-equal — padding included — to :meth:`PackedDecodeCache.pack_from_scratch`,
and :func:`packed_decode_attention` over the staged K/V must match
:func:`batched_single_token_attention` over a fresh gather.  The property
tests drive randomized interleavings of exactly those mutations; the
chaos variant additionally runs the pool at near-exhaustion so appends
fail mid-loop and conversations are evicted/recycled under pressure.
"""

import os

import numpy as np
import pytest

from repro.kernels import (
    AttentionRequest,
    DecodeSlotSource,
    PackedDecodeCache,
    batched_single_token_attention,
    packed_decode_attention,
)
from repro.kvcache import BlockTable, PagePool, PagePoolExhausted

_EXTRA = os.environ.get("CHAOS_EXTRA_SEED")
PROPERTY_SEEDS = [0, 1, 2, 3] + ([int(_EXTRA)] if _EXTRA else [])


def _table(pool, tokens):
    table = BlockTable(pool)
    table.append_tokens(tokens)
    return table


def _sources(convs):
    return [DecodeSlotSource(key=k, table=t) for k, t in sorted(convs.items())]


def _assert_matches_scratch(cache, batch, sources):
    ref_table, ref_lengths = PackedDecodeCache.pack_from_scratch(sources)
    np.testing.assert_array_equal(np.asarray(batch.table), ref_table)
    np.testing.assert_array_equal(np.asarray(batch.lengths), ref_lengths)


class TestLifecycle:
    def test_first_pack_builds_then_steady_state_extends(self):
        pool = PagePool(64, 4)
        convs = {i: _table(pool, 8) for i in range(4)}
        cache = PackedDecodeCache(initial_rows=2, initial_context=4)
        cache.pack(_sources(convs))
        assert cache.stats["rebuilt_rows"] == 4
        for _ in range(3):
            for t in convs.values():
                t.append_tokens(1)
            batch = cache.pack(_sources(convs))
            _assert_matches_scratch(cache, batch, _sources(convs))
        assert cache.stats["extended_rows"] == 12
        assert cache.stats["repaired_rows"] == 0
        # Capacities grew geometrically from the deliberately tiny start.
        assert cache.stats["row_growths"] >= 1
        assert cache.stats["ctx_growths"] >= 1

    def test_unchanged_tables_reuse_rows(self):
        pool = PagePool(16, 4)
        convs = {i: _table(pool, 8) for i in range(2)}
        cache = PackedDecodeCache()
        cache.pack(_sources(convs))
        cache.pack(_sources(convs))
        assert cache.stats["reused_rows"] == 2

    def test_structural_mutation_repairs_only_that_row(self):
        pool = PagePool(64, 4)
        convs = {i: _table(pool, 8) for i in range(4)}
        cache = PackedDecodeCache()
        cache.pack(_sources(convs))
        convs[1].vacate_front(4)
        convs[1].restore_front(4)  # same length, remapped slots
        batch = cache.pack(_sources(convs))
        assert cache.stats["repaired_rows"] == 1
        assert cache.stats["reused_rows"] == 3
        _assert_matches_scratch(cache, batch, _sources(convs))

    def test_new_occupant_rebuilds_row(self):
        pool = PagePool(64, 4)
        convs = {i: _table(pool, 8) for i in range(3)}
        cache = PackedDecodeCache()
        cache.pack(_sources(convs))
        del convs[1]
        convs[9] = _table(pool, 6)
        batch = cache.pack(_sources(convs))
        # conv 9 landed in conv 1's old row (sorted order: 0, 2, 9 — row 1
        # changes occupant from 1 to 2, row 2 from 2 to 9).
        assert cache.stats["rebuilt_rows"] == 3 + 2
        _assert_matches_scratch(cache, batch, _sources(convs))

    def test_recycled_key_with_fresh_table_is_not_extended(self):
        """A recycled conversation id arrives with a brand-new BlockTable
        whose version counters restart at zero — identity checks must
        force a repack rather than trusting the stale row."""
        pool = PagePool(64, 4)
        convs = {0: _table(pool, 8)}
        cache = PackedDecodeCache()
        cache.pack(_sources(convs))
        convs[0].release()
        convs[0] = _table(pool, 5)  # same key, different table object
        batch = cache.pack(_sources(convs))
        assert cache.stats["repaired_rows"] == 1
        _assert_matches_scratch(cache, batch, _sources(convs))

    def test_drop_forgets_row_and_row_index(self):
        pool = PagePool(64, 4)
        convs = {0: _table(pool, 8), 1: _table(pool, 8)}
        cache = PackedDecodeCache()
        cache.pack(_sources(convs))
        assert cache.row_index(1) == 1
        cache.drop(1)
        assert cache.row_index(1) is None
        batch = cache.pack(_sources(convs))
        _assert_matches_scratch(cache, batch, _sources(convs))

    def test_shared_prefix_is_packed_before_table_slots(self):
        pool = PagePool(64, 4)
        prefix_table = _table(pool, 6)
        prefix = prefix_table.slots_array(0, 6)
        convs = {0: _table(pool, 8), 1: _table(pool, 4)}
        cache = PackedDecodeCache()
        sources = [
            DecodeSlotSource(key=k, table=t, prefix=prefix)
            for k, t in sorted(convs.items())
        ]
        batch = cache.pack(sources)
        _assert_matches_scratch(cache, batch, sources)
        for t in convs.values():
            t.append_tokens(1)
        sources = [
            DecodeSlotSource(key=k, table=t, prefix=prefix)
            for k, t in sorted(convs.items())
        ]
        batch = cache.pack(sources)
        assert cache.stats["extended_rows"] == 2
        _assert_matches_scratch(cache, batch, sources)

    def test_empty_pack_rejected(self):
        with pytest.raises(ValueError):
            PackedDecodeCache().pack([])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PackedDecodeCache(initial_rows=0)
        with pytest.raises(ValueError):
            PackedDecodeCache(growth=1.0)


class TestStaging:
    def _env(self, seed=0, num_pages=64, page_size=4, kv_heads=2, head_dim=8):
        rng = np.random.default_rng(seed)
        pool = PagePool(num_pages, page_size)
        num_slots = num_pages * page_size
        k_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
        v_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
        return rng, pool, k_cache, v_cache

    def test_staged_kv_equals_fresh_gather_across_steps(self):
        rng, pool, k_cache, v_cache = self._env()
        convs = {i: _table(pool, 6) for i in range(3)}
        cache = PackedDecodeCache()
        for _ in range(4):
            batch = cache.pack(_sources(convs))
            k, v = batch.gathered("L0", k_cache, v_cache)
            table = np.asarray(batch.table)
            np.testing.assert_array_equal(k, k_cache[table])
            np.testing.assert_array_equal(v, v_cache[table])
            for t in convs.values():
                t.append_tokens(1)

    def test_layers_stage_independently(self):
        rng, pool, k_cache, v_cache = self._env()
        k2, v2 = k_cache * 2.0, v_cache * 2.0
        convs = {0: _table(pool, 6)}
        cache = PackedDecodeCache()
        batch = cache.pack(_sources(convs))
        ka, _ = batch.gathered(0, k_cache, v_cache)
        kb, _ = batch.gathered(1, k2, v2)
        np.testing.assert_array_equal(kb, ka * 2.0)

    def test_budget_exceeded_falls_back_to_fresh_gather(self):
        rng, pool, k_cache, v_cache = self._env()
        convs = {0: _table(pool, 6)}
        cache = PackedDecodeCache(staging_budget_bytes=1)
        batch = cache.pack(_sources(convs))
        k, v = batch.gathered("L0", k_cache, v_cache)
        table = np.asarray(batch.table)
        np.testing.assert_array_equal(k, k_cache[table])
        assert cache._staging_disabled

    def test_attention_matches_batched_kernel(self):
        rng, pool, k_cache, v_cache = self._env()
        convs = {i: _table(pool, 4 + 3 * i) for i in range(3)}
        cache = PackedDecodeCache()
        for _ in range(3):
            sources = _sources(convs)
            queries = rng.standard_normal((len(sources), 4, k_cache.shape[2]))
            batch = cache.pack(sources)
            out = packed_decode_attention(queries, batch, 0, k_cache, v_cache)
            requests = [
                AttentionRequest(
                    query=queries[i : i + 1],
                    slots=s.table.slots_array(0, s.table.length),
                )
                for i, s in enumerate(sources)
            ]
            ref = np.concatenate(
                batched_single_token_attention(requests, k_cache, v_cache)
            )
            np.testing.assert_allclose(out, ref, atol=1e-12)
            for t in convs.values():
                t.append_tokens(1)

    def test_query_batch_mismatch_rejected(self):
        rng, pool, k_cache, v_cache = self._env()
        cache = PackedDecodeCache()
        batch = cache.pack(_sources({0: _table(pool, 4)}))
        with pytest.raises(ValueError):
            packed_decode_attention(
                rng.standard_normal((2, 4, 8)), batch, 0, k_cache, v_cache
            )


class TestPropertyRandomInterleavings:
    """Satellite guarantee: after every random mutation the incremental
    pack is array-equal to a from-scratch pack, and attention over the
    staged K/V matches the batched kernel."""

    PAGE = 4

    def _mutate(self, rng, pool, convs, next_key, allow_faults=False):
        """Apply one random mutation; returns the (possibly new) next_key.

        Mutations mirror the serving stack: decode appends, chunk-aligned
        swap-out/swap-in (structural remaps), recompute splits (release +
        rebuild), and conversation exit/arrival with key recycling.
        """
        ops = ["append", "swap_cycle", "recompute", "exit", "arrive"]
        op = ops[int(rng.integers(len(ops)))]
        if not convs:
            op = "arrive"
        try:
            if op == "append":
                key = list(convs)[int(rng.integers(len(convs)))]
                convs[key].append_tokens(int(rng.integers(1, 4)))
            elif op == "swap_cycle":
                # Vacate a page-aligned prefix and restore it, as a
                # swap-out immediately followed by the conversation's
                # return would: same lengths, remapped slots.
                key = list(convs)[int(rng.integers(len(convs)))]
                table = convs[key]
                pages = table.length // self.PAGE
                if pages >= 1:
                    count = self.PAGE * int(rng.integers(1, pages + 1))
                    table.vacate_front(count)
                    table.restore_front(count)
            elif op == "recompute":
                # Recompute-from-scratch rebuilds the table entirely.
                key = list(convs)[int(rng.integers(len(convs)))]
                tokens = convs[key].length
                convs[key].release()
                convs[key] = _table(pool, tokens)
            elif op == "exit":
                key = list(convs)[int(rng.integers(len(convs)))]
                convs[key].release()
                del convs[key]
                if rng.random() < 0.5:
                    # Key recycling: the same conversation id returns
                    # with a fresh table.
                    convs[key] = _table(pool, int(rng.integers(1, 9)))
            elif op == "arrive":
                convs[next_key] = _table(pool, int(rng.integers(1, 9)))
                next_key += 1
        except PagePoolExhausted:
            if not allow_faults:
                raise
            # Allocation failure under pressure: evict a victim wholesale
            # (the engine's recompute-later response) and carry on.
            victim = list(convs)[int(rng.integers(len(convs)))]
            convs[victim].release()
            del convs[victim]
        return next_key

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_incremental_pack_equals_scratch_after_every_mutation(self, seed):
        rng = np.random.default_rng(seed)
        pool = PagePool(256, self.PAGE)
        convs = {i: _table(pool, int(rng.integers(1, 9))) for i in range(4)}
        cache = PackedDecodeCache(initial_rows=2, initial_context=4)
        next_key = 4
        for _ in range(120):
            next_key = self._mutate(rng, pool, convs, next_key)
            if not convs:
                continue
            sources = _sources(convs)
            batch = cache.pack(sources)
            _assert_matches_scratch(cache, batch, sources)
        # The walk must actually have exercised the cheap paths, not
        # repacked every row every time.
        assert cache.stats["extended_rows"] > 0
        assert cache.stats["reused_rows"] > 0

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_staged_attention_matches_oracle_under_mutations(self, seed):
        rng = np.random.default_rng(seed)
        pool = PagePool(128, self.PAGE)
        num_slots = 128 * self.PAGE
        kv_heads, head_dim = 2, 8
        k_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
        v_cache = rng.standard_normal((num_slots, kv_heads, head_dim))
        convs = {i: _table(pool, int(rng.integers(2, 9))) for i in range(3)}
        cache = PackedDecodeCache()
        next_key = 3
        for _ in range(40):
            next_key = self._mutate(rng, pool, convs, next_key)
            if not convs:
                continue
            sources = _sources(convs)
            queries = rng.standard_normal((len(sources), 4, head_dim))
            batch = cache.pack(sources)
            out = packed_decode_attention(queries, batch, 0, k_cache, v_cache)
            requests = [
                AttentionRequest(
                    query=queries[i : i + 1],
                    slots=s.table.slots_array(0, s.table.length),
                )
                for i, s in enumerate(sources)
            ]
            ref = np.concatenate(
                batched_single_token_attention(requests, k_cache, v_cache)
            )
            np.testing.assert_allclose(out, ref, atol=1e-12)

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_chaos_pool_exhaustion_mid_walk(self, seed):
        """Same walk on a pool small enough that appends genuinely fail:
        evictions and key churn under pressure must never desynchronize
        the cache from the from-scratch oracle."""
        rng = np.random.default_rng(seed)
        pool = PagePool(24, self.PAGE)
        convs = {i: _table(pool, int(rng.integers(1, 6))) for i in range(3)}
        cache = PackedDecodeCache(initial_rows=2, initial_context=4)
        next_key = 3
        faulted = 0
        for _ in range(150):
            before = pool.num_free_pages
            next_key = self._mutate(rng, pool, convs, next_key, allow_faults=True)
            if pool.num_free_pages > before:
                faulted += 1  # not exact, but pressure is happening
            if not convs:
                continue
            sources = _sources(convs)
            batch = cache.pack(sources)
            _assert_matches_scratch(cache, batch, sources)
        assert pool.num_free_pages <= 24
