"""Differential tests for the coalesced two-tier swap data path.

The coalesced primitives (``KVStorage.read_slots_stacked`` /
``write_slots_stacked``, ``CpuChunkStore.put_many`` / ``pop_many``)
must be observationally identical to the per-chunk loops they replace:
bit-identical KV arrays, identical store occupancy and checksums, and
exactly matching tracer counter totals — coalescing changes the number
of transfers, not the accounting.
"""

import numpy as np
import pytest

from repro.faults.errors import ChunkCorruptionError
from repro.kvcache.storage import CpuChunkStore, KVStorage
from repro.model.config import tiny_llama_config
from repro.obs import Tracer


def _make_case(seed=0, num_chunks=6, chunk_tokens=8, num_layers=3,
               kv_heads=2, head_dim=4):
    rng = np.random.default_rng(seed)
    total = num_chunks * chunk_tokens
    config = tiny_llama_config(
        num_layers=num_layers, hidden_size=8 * head_dim, num_heads=8,
        num_kv_heads=kv_heads,
    )
    perm = rng.permutation(total)
    groups = [
        perm[i * chunk_tokens : (i + 1) * chunk_tokens].astype(np.int64)
        for i in range(num_chunks)
    ]
    datas = [
        (
            rng.standard_normal((num_layers, chunk_tokens, kv_heads, head_dim)),
            rng.standard_normal((num_layers, chunk_tokens, kv_heads, head_dim)),
        )
        for _ in range(num_chunks)
    ]
    return config, total, groups, datas


def test_stacked_read_matches_per_group_reads():
    config, total, groups, datas = _make_case()
    storage = KVStorage(config, num_slots=total, dtype=np.float64)
    rng = np.random.default_rng(1)
    storage.k[:] = rng.standard_normal(storage.k.shape)
    storage.v[:] = rng.standard_normal(storage.v.shape)

    stacked = storage.read_slots_stacked(groups)
    assert len(stacked) == len(groups)
    for group, (k, v) in zip(groups, stacked):
        k_ref, v_ref = storage.read_all_layers(list(group))
        np.testing.assert_array_equal(k, k_ref)
        np.testing.assert_array_equal(v, v_ref)


def test_stacked_write_matches_per_chunk_writes_bit_exact():
    config, total, groups, datas = _make_case()
    a = KVStorage(config, num_slots=total, dtype=np.float64)
    b = KVStorage(config, num_slots=total, dtype=np.float64)
    for group, (k, v) in zip(groups, datas):
        a.write_all_layers(list(group), k, v)
    b.write_slots_stacked(groups, datas)
    np.testing.assert_array_equal(a.k, b.k)
    np.testing.assert_array_equal(a.v, b.v)


def test_stacked_roundtrip_preserves_bytes():
    """read_slots_stacked -> write_slots_stacked into a second storage
    reproduces the source slots verbatim (the swap-out/swap-in cycle)."""
    config, total, groups, _ = _make_case()
    src = KVStorage(config, num_slots=total, dtype=np.float64)
    dst = KVStorage(config, num_slots=total, dtype=np.float64)
    rng = np.random.default_rng(2)
    src.k[:] = rng.standard_normal(src.k.shape)
    src.v[:] = rng.standard_normal(src.v.shape)
    dst.write_slots_stacked(groups, src.read_slots_stacked(groups))
    np.testing.assert_array_equal(src.k, dst.k)
    np.testing.assert_array_equal(src.v, dst.v)


def test_stacked_write_validates_shapes():
    config, total, groups, datas = _make_case()
    storage = KVStorage(config, num_slots=total, dtype=np.float64)
    with pytest.raises(ValueError):
        storage.write_slots_stacked(groups[:2], datas[:1])
    k, v = datas[0]
    with pytest.raises(ValueError):
        storage.write_slots_stacked([groups[0]], [(k[:, :-1], v)])


def test_put_many_matches_per_chunk_puts():
    _, total, _, datas = _make_case()
    a = CpuChunkStore(total)
    b = CpuChunkStore(total)
    a.tracer = Tracer()
    b.tracer = Tracer()
    for i, (k, v) in enumerate(datas):
        a.put(0, i, k, v)
    b.put_many([(0, i, k, v) for i, (k, v) in enumerate(datas)])

    assert a.used_tokens == b.used_tokens
    assert len(a) == len(b)
    assert a.chunks_of(0) == b.chunks_of(0)
    assert a._checksums == b._checksums
    # Counter totals reconcile exactly; only the transfer count differs.
    for name in ("cpu_store.put_bytes", "cpu_store.put_chunks"):
        assert a.tracer.counter(name) == b.tracer.counter(name)
    # Every stored chunk still passes its CRC re-check.
    for i in range(len(datas)):
        b.get(0, i)


def test_put_many_is_atomic_on_capacity_overflow():
    _, total, _, datas = _make_case()
    store = CpuChunkStore(datas[0][0].shape[1] * 2)  # room for 2 chunks
    with pytest.raises(MemoryError):
        store.put_many([(0, i, k, v) for i, (k, v) in enumerate(datas[:3])])
    assert len(store) == 0 and store.used_tokens == 0


def test_put_many_rejects_duplicates_atomically():
    _, total, _, datas = _make_case()
    store = CpuChunkStore(total)
    k, v = datas[0]
    store.put(0, 1, k, v)
    with pytest.raises(KeyError):
        store.put_many([(0, 0, k, v), (0, 1, k, v)])
    with pytest.raises(KeyError):
        store.put_many([(0, 2, k, v), (0, 2, k, v)])
    assert store.chunks_of(0) == [1]


def test_pop_many_matches_per_chunk_pops():
    _, total, _, datas = _make_case()
    a = CpuChunkStore(total)
    b = CpuChunkStore(total)
    a.tracer = Tracer()
    b.tracer = Tracer()
    for i, (k, v) in enumerate(datas):
        a.put(0, i, k, v)
        b.put(0, i, k, v)

    indices = [4, 1, 3]
    per = [(i, a.pop(0, i)) for i in indices]
    popped, corrupt = b.pop_many(0, indices)

    assert corrupt == []
    assert [i for i, _ in popped] == indices
    for (ia, (ka, va)), (ib, (kb, vb)) in zip(per, popped):
        assert ia == ib
        np.testing.assert_array_equal(ka, kb)
        np.testing.assert_array_equal(va, vb)
    assert a.used_tokens == b.used_tokens
    assert a.chunks_of(0) == b.chunks_of(0)
    assert a._checksums == b._checksums
    assert a.tracer.counter("cpu_store.read_bytes") == b.tracer.counter(
        "cpu_store.read_bytes"
    )


def test_pop_many_reports_corrupt_chunks_and_retains_them():
    """A corrupt chunk is reported (not raised), stays in the store like
    a failed pop, and the healthy chunks still move."""
    _, total, _, datas = _make_case()
    store = CpuChunkStore(total)
    store.tracer = Tracer()
    for i, (k, v) in enumerate(datas[:4]):
        store.put(0, i, k, v)
    store._entries[(0, 2)][0].flat[0] += 1.0  # host-side bit flip

    popped, corrupt = store.pop_many(0, [0, 1, 2, 3])
    assert corrupt == [2]
    assert [i for i, _ in popped] == [0, 1, 3]
    assert store.contains(0, 2) and store.chunks_of(0) == [2]
    assert store.tracer.counter("cpu_store.corrupt_chunks") == 1
    # The retained entry keeps failing, exactly like pop would.
    with pytest.raises(ChunkCorruptionError):
        store.pop(0, 2)


def test_pop_many_skips_verification_when_disabled():
    _, total, _, datas = _make_case()
    store = CpuChunkStore(total, verify_on_read=False)
    for i, (k, v) in enumerate(datas[:2]):
        store.put(0, i, k, v)
    store._entries[(0, 1)][0].flat[0] += 1.0
    popped, corrupt = store.pop_many(0, [0, 1])
    assert corrupt == [] and len(popped) == 2 and len(store) == 0
