"""Tests for the two-tier cache manager."""

import pytest

from repro.core import LruPolicy, RetentionValuePolicy
from repro.gpu import A100_80GB, CostModel, OfflineProfiler
from repro.kvcache import ChunkLocation, TwoTierCacheManager
from repro.kvcache.manager import CacheCapacityError
from repro.model import OPT_13B


def make_manager(gpu=1024, cpu=4096, chunk=32, scorer=None):
    return TwoTierCacheManager(
        gpu_capacity_tokens=gpu,
        cpu_capacity_tokens=cpu,
        chunk_size=chunk,
        scorer=scorer or LruPolicy(),
    )


def finish_conversation(mgr, conv_id, tokens, now):
    """Open a conversation, give it context, and close it at ``now``."""
    mgr.open(conv_id, now)
    plan = mgr.plan_restore(conv_id, tokens)
    mgr.commit_restore(plan, now)
    mgr.close(conv_id, now)


class TestLifecycle:
    def test_open_creates_and_pins(self):
        mgr = make_manager()
        cache = mgr.open(1, now=10.0)
        assert cache.pinned
        assert cache.last_active == 10.0

    def test_close_unpins_and_stamps_time(self):
        mgr = make_manager()
        mgr.open(1, now=0.0)
        mgr.close(1, now=5.0)
        cache = mgr.conversation(1)
        assert not cache.pinned
        assert cache.last_active == 5.0

    def test_state_persists_across_requests(self):
        """The stateful-serving core property: a second request of the
        same conversation sees all its past KV-tokens as GPU hits."""
        mgr = make_manager()
        finish_conversation(mgr, 1, tokens=100, now=0.0)
        plan = mgr.plan_restore(1, new_tokens=20)
        assert plan.gpu_hit_tokens == 100
        assert plan.swap_in_tokens == 0
        assert plan.recompute_tokens == 0
        assert plan.total_context == 120

    def test_forget_releases_tokens(self):
        mgr = make_manager()
        finish_conversation(mgr, 1, tokens=100, now=0.0)
        assert mgr.forget(1) == 100
        assert mgr.gpu_resident_tokens == 0
        assert mgr.conversation(1) is None
        assert mgr.forget(1) == 0


class TestAccounting:
    def test_fresh_manager_all_free(self):
        mgr = make_manager(gpu=512)
        assert mgr.gpu_free_tokens == 512
        assert mgr.gpu_available_tokens == 512
        assert mgr.cpu_used_tokens == 0

    def test_resident_tracking(self):
        mgr = make_manager(gpu=512)
        finish_conversation(mgr, 1, 100, now=0.0)
        finish_conversation(mgr, 2, 50, now=1.0)
        assert mgr.gpu_resident_tokens == 150
        assert mgr.gpu_free_tokens == 362

    def test_invalid_capacities(self):
        with pytest.raises(ValueError):
            TwoTierCacheManager(0, 100)
        with pytest.raises(ValueError):
            TwoTierCacheManager(100, -1)
        with pytest.raises(ValueError):
            TwoTierCacheManager(100, 100, chunk_size=0)


class TestSwapOutAndReclaim:
    def test_swap_out_copies_without_freeing(self):
        mgr = make_manager(gpu=256)
        finish_conversation(mgr, 1, 128, now=0.0)
        copied = mgr.swap_out(64, now=10.0)
        assert sum(c.num_tokens for c in copied) >= 64
        # Lazy reclamation: slots still occupied, but reclaimable.
        assert mgr.gpu_resident_tokens == 128
        assert mgr.reclaimable_tokens >= 64
        assert mgr.cpu_used_tokens >= 64

    def test_swap_out_takes_leading_chunks_first(self):
        mgr = make_manager(gpu=256)
        finish_conversation(mgr, 1, 128, now=0.0)
        mgr.swap_out(32, now=10.0)
        cache = mgr.conversation(1)
        assert cache.chunks[0].location is ChunkLocation.GPU_CPU
        assert cache.chunks[1].location is ChunkLocation.GPU
        cache.check_layout()

    def test_reclaim_frees_copied_slots(self):
        mgr = make_manager(gpu=256)
        finish_conversation(mgr, 1, 128, now=0.0)
        mgr.swap_out(64, now=10.0)
        freed = mgr.reclaim(64, now=10.0)
        assert freed >= 64
        assert mgr.gpu_free_tokens >= 256 - 128 + 64
        cache = mgr.conversation(1)
        assert cache.chunks[0].location is ChunkLocation.CPU

    def test_pinned_conversations_not_evicted(self):
        mgr = make_manager(gpu=256)
        mgr.open(1, now=0.0)
        plan = mgr.plan_restore(1, 128)
        mgr.commit_restore(plan, now=0.0)  # stays pinned
        assert mgr.swap_out(64, now=10.0) == []
        assert mgr.evictable_gpu_tokens == 0

    def test_gpu_cache_only_variant_drops(self):
        """cpu_capacity_tokens=0 reproduces Pensieve (GPU cache)."""
        mgr = make_manager(gpu=256, cpu=0)
        finish_conversation(mgr, 1, 128, now=0.0)
        copied = mgr.swap_out(64, now=10.0)
        assert copied == []
        cache = mgr.conversation(1)
        assert cache.tokens_in(ChunkLocation.DROPPED) >= 64
        assert mgr.stats["dropped_tokens"] >= 64


class TestCpuPressure:
    def test_drop_from_cpu_under_pressure(self):
        mgr = make_manager(gpu=256, cpu=64)
        finish_conversation(mgr, 1, 128, now=0.0)
        # Fill the CPU tier with genuinely reclaimed chunks...
        mgr.swap_out(64, now=10.0)
        mgr.reclaim(64, now=10.0)
        # ...then further swap-out must drop the oldest CPU copies to
        # make room for the next ones.
        mgr.swap_out(64, now=20.0)
        cache = mgr.conversation(1)
        assert cache.tokens_in(ChunkLocation.DROPPED) > 0
        cache.check_layout()

    def test_swap_out_drops_when_cpu_holds_only_live_copies(self):
        """When the CPU tier is filled entirely by lazily-reclaimable
        copies, swap-out cannot copy further — it falls back to dropping
        leading chunks outright so the GPU space goal is still met."""
        mgr = make_manager(gpu=256, cpu=64)
        finish_conversation(mgr, 1, 128, now=0.0)
        mgr.swap_out(128, now=10.0)
        cache = mgr.conversation(1)
        # Progress goal met: reclaimable copies plus freed (dropped) slots.
        assert mgr.reclaimable_tokens + mgr.gpu_free_tokens >= 128
        assert cache.tokens_in(ChunkLocation.DROPPED) > 0
        cache.check_layout()

    def test_drop_prefers_leading_chunks(self):
        mgr = make_manager(gpu=512, cpu=4096)
        finish_conversation(mgr, 1, 128, now=0.0)
        mgr.swap_out(128, now=10.0)
        mgr.reclaim(128, now=10.0)
        mgr.drop_from_cpu(32, now=20.0)
        cache = mgr.conversation(1)
        assert cache.chunks[0].location is ChunkLocation.DROPPED
        assert cache.chunks[1].location is ChunkLocation.CPU


class TestRestore:
    def make_spread_conversation(self):
        """A conversation whose context spans all four states."""
        mgr = make_manager(gpu=512, cpu=4096)
        finish_conversation(mgr, 1, 128, now=0.0)
        mgr.swap_out(96, now=10.0)        # chunks 0..2 copied
        mgr.reclaim(64, now=10.0)         # chunks 0..1 now CPU-only
        mgr.drop_from_cpu(32, now=10.0)   # chunk 0 dropped
        return mgr

    def test_figure5_decomposition(self):
        mgr = self.make_spread_conversation()
        plan = mgr.plan_restore(1, new_tokens=16)
        assert plan.recompute_tokens == 32   # dropped prefix
        assert plan.swap_in_tokens == 32     # CPU middle
        assert plan.gpu_hit_tokens == 64     # GPU tail (incl. lazy copy)
        assert plan.new_tokens == 16
        assert plan.alloc_tokens == 32 + 32 + 16
        assert plan.prefill_tokens == 48
        assert plan.total_context == 144

    def test_commit_restores_everything_to_gpu(self):
        mgr = self.make_spread_conversation()
        plan = mgr.plan_restore(1, new_tokens=16)
        cache = mgr.commit_restore(plan, now=20.0)
        assert cache.tokens_in(ChunkLocation.GPU) == 144
        assert cache.pinned
        cache.check_layout()

    def test_new_conversation_plan_is_all_new(self):
        mgr = make_manager()
        plan = mgr.plan_restore(99, new_tokens=40)
        assert plan.gpu_hit_tokens == 0
        assert plan.total_context == 40

    def test_commit_reclaims_other_conversations_copies(self):
        mgr = make_manager(gpu=256, cpu=4096)
        finish_conversation(mgr, 1, 224, now=0.0)
        mgr.swap_out(128, now=1.0)  # conversation 1 partly copied out
        plan = mgr.plan_restore(2, new_tokens=100)
        cache = mgr.commit_restore(plan, now=2.0)
        assert cache.total_tokens == 100
        # Conversation 1's copied chunks were reclaimed to make room.
        assert mgr.conversation(1).tokens_in(ChunkLocation.CPU) > 0

    def test_commit_overflow_raises(self):
        mgr = make_manager(gpu=128)
        mgr.open(1, 0.0)
        plan = mgr.plan_restore(1, new_tokens=256)
        with pytest.raises(CacheCapacityError):
            mgr.commit_restore(plan, now=0.0)

    def test_stats_track_hits_at_commit(self):
        mgr = self.make_spread_conversation()
        plan = mgr.plan_restore(1, new_tokens=16)
        # Speculative planning leaves stats untouched...
        assert mgr.stats["gpu_hit_tokens"] == 0
        # ...committing records them.
        mgr.commit_restore(plan, now=20.0)
        assert mgr.stats["gpu_hit_tokens"] == 64
        assert mgr.stats["cpu_hit_tokens"] == 32
        assert mgr.stats["recomputed_tokens"] == 32


class TestAppendTokens:
    def test_decode_growth(self):
        mgr = make_manager()
        mgr.open(1, 0.0)
        mgr.commit_restore(mgr.plan_restore(1, 10), now=0.0)
        mgr.append_tokens(1, 5)
        assert mgr.conversation(1).total_tokens == 15

    def test_growth_reclaims_when_full(self):
        mgr = make_manager(gpu=128, cpu=4096)
        finish_conversation(mgr, 1, 96, now=0.0)
        mgr.swap_out(96, now=1.0)
        mgr.open(2, 2.0)
        mgr.commit_restore(mgr.plan_restore(2, 30), now=2.0)
        mgr.append_tokens(2, 5)  # 96+30+5 > 128: must reclaim from conv 1
        assert mgr.conversation(2).total_tokens == 35
        assert mgr.gpu_resident_tokens <= 128

    def test_growth_overflow_raises(self):
        mgr = make_manager(gpu=64, cpu=0)
        mgr.open(1, 0.0)
        mgr.commit_restore(mgr.plan_restore(1, 60), now=0.0)
        with pytest.raises(CacheCapacityError):
            mgr.append_tokens(1, 10)

    def test_refused_growth_is_atomic(self):
        """Regression: a refused append used to *partially* reclaim other
        conversations before raising, leaving chunks evicted by an
        operation that reported failure.  The capacity check must come
        before any state mutation."""
        mgr = make_manager(gpu=128, cpu=4096)
        finish_conversation(mgr, 1, 96, now=0.0)
        mgr.swap_out(64, now=1.0)  # conv 1: 32 GPU + 64 GPU_CPU (reclaimable)
        mgr.open(2, 2.0)
        mgr.commit_restore(mgr.plan_restore(2, 30), now=2.0)
        before = {
            "gpu_resident": mgr.gpu_resident_tokens,
            "reclaimable": mgr.reclaimable_tokens,
            "conv1_gpu_cpu": mgr.conversation(1).tokens_in(ChunkLocation.GPU_CPU),
            "conv1_gpu": mgr.conversation(1).tokens_in(ChunkLocation.GPU),
        }
        # Deficit 78 exceeds the 64 reclaimable tokens: must refuse.
        with pytest.raises(CacheCapacityError):
            mgr.append_tokens(2, 80)
        assert mgr.gpu_resident_tokens == before["gpu_resident"]
        assert mgr.reclaimable_tokens == before["reclaimable"]
        cache = mgr.conversation(1)
        assert cache.tokens_in(ChunkLocation.GPU_CPU) == before["conv1_gpu_cpu"]
        assert cache.tokens_in(ChunkLocation.GPU) == before["conv1_gpu"]
        assert mgr.conversation(2).total_tokens == 30
        mgr._audit()
        # The same growth succeeds once it fits the reclaimable budget.
        mgr.append_tokens(2, 60)
        assert mgr.conversation(2).total_tokens == 90
        mgr._audit()


class TestEnsureCapacity:
    def test_noop_when_space_available(self):
        mgr = make_manager(gpu=256)
        assert mgr.ensure_capacity(100, now=0.0) == []

    def test_swaps_out_to_make_room(self):
        mgr = make_manager(gpu=256, cpu=4096)
        finish_conversation(mgr, 1, 224, now=0.0)
        copied = mgr.ensure_capacity(128, now=5.0)
        assert sum(c.num_tokens for c in copied) >= 96
        assert mgr.gpu_available_tokens >= 128

    def test_request_larger_than_gpu_rejected(self):
        mgr = make_manager(gpu=128)
        with pytest.raises(CacheCapacityError):
            mgr.ensure_capacity(256, now=0.0)

    def test_all_pinned_cannot_make_room(self):
        mgr = make_manager(gpu=128)
        mgr.open(1, 0.0)
        mgr.commit_restore(mgr.plan_restore(1, 100), now=0.0)  # pinned
        with pytest.raises(CacheCapacityError):
            mgr.ensure_capacity(100, now=0.0)


class TestSuspension:
    def test_release_conversation_gpu(self):
        mgr = make_manager(gpu=256, cpu=4096)
        mgr.open(1, 0.0)
        mgr.commit_restore(mgr.plan_restore(1, 128), now=0.0)
        copied, dropped = mgr.release_conversation_gpu(1, now=1.0)
        assert copied == 128
        assert dropped == 0
        cache = mgr.conversation(1)
        assert not cache.pinned
        assert cache.tokens_in(ChunkLocation.CPU) == 128
        assert mgr.gpu_free_tokens == 256

    def test_release_without_cpu_space_drops(self):
        mgr = make_manager(gpu=256, cpu=0)
        mgr.open(1, 0.0)
        mgr.commit_restore(mgr.plan_restore(1, 128), now=0.0)
        copied, dropped = mgr.release_conversation_gpu(1, now=1.0)
        assert copied == 0
        assert dropped == 128
        assert mgr.conversation(1).tokens_in(ChunkLocation.DROPPED) == 128


class TestPolicyIntegration:
    def make_retention_manager(self, gpu=512):
        cm = CostModel(OPT_13B, A100_80GB)
        profile = OfflineProfiler.from_cost_model(cm).profile(32, max_context=4096)
        return make_manager(gpu=gpu, scorer=RetentionValuePolicy(profile))

    def test_lru_evicts_oldest_conversation(self):
        mgr = make_manager(gpu=512)
        finish_conversation(mgr, 1, 128, now=0.0)
        finish_conversation(mgr, 2, 128, now=50.0)
        mgr.swap_out(32, now=100.0)
        assert mgr.conversation(1).chunks[0].location is ChunkLocation.GPU_CPU
        assert mgr.conversation(2).chunks[0].location is ChunkLocation.GPU

    def test_retention_value_prefers_cheap_chunks(self):
        """With equal idle times the policy evicts the conversation whose
        frontier chunk is cheapest to recompute (the shorter prefix)."""
        mgr = self.make_retention_manager()
        finish_conversation(mgr, 1, 64, now=0.0)
        finish_conversation(mgr, 2, 256, now=0.0)
        # Conversation 2's chunk 0 attends to 32 tokens, same as conv 1's:
        # same cost, ties broken by conv id.  Evict more to see ordering:
        mgr.swap_out(96, now=100.0)
        c1, c2 = mgr.conversation(1), mgr.conversation(2)
        # Early chunks of both went first; no *late* chunk of conv 2 may
        # leave before an earlier one.
        c1.check_layout()
        c2.check_layout()
        copied = c1.tokens_in(ChunkLocation.GPU_CPU) + c2.tokens_in(
            ChunkLocation.GPU_CPU
        )
        assert copied >= 96

    def test_retention_value_prefers_idle_conversations(self):
        mgr = self.make_retention_manager()
        finish_conversation(mgr, 1, 128, now=0.0)    # idle for 100s
        finish_conversation(mgr, 2, 128, now=99.0)   # idle for 1s
        mgr.swap_out(32, now=100.0)
        assert mgr.conversation(1).chunks[0].location is ChunkLocation.GPU_CPU
        assert mgr.conversation(2).chunks[0].location is ChunkLocation.GPU

    def test_missing_scorer_raises(self):
        mgr = TwoTierCacheManager(256, 256, scorer=None)
        finish_conversation(mgr, 1, 64, now=0.0)
        with pytest.raises(RuntimeError):
            mgr.swap_out(32, now=1.0)


class TestWholeConversationEviction:
    """Granularity ablation (paper Table 3): CachedAttention-style
    whole-conversation eviction vs Pensieve's token chunks."""

    def make(self, whole):
        return TwoTierCacheManager(
            gpu_capacity_tokens=1024,
            cpu_capacity_tokens=4096,
            chunk_size=32,
            scorer=LruPolicy(),
            whole_conversation_eviction=whole,
        )

    def test_chunk_mode_evicts_minimally(self):
        mgr = self.make(whole=False)
        finish_conversation(mgr, 1, 256, now=0.0)
        mgr.swap_out(32, now=10.0)
        assert mgr.reclaimable_tokens == 32
        assert mgr.conversation(1).tokens_in(ChunkLocation.GPU) == 224

    def test_conversation_mode_evicts_everything(self):
        mgr = self.make(whole=True)
        finish_conversation(mgr, 1, 256, now=0.0)
        mgr.swap_out(32, now=10.0)
        # The whole conversation went, despite needing only one chunk.
        assert mgr.reclaimable_tokens == 256
        assert mgr.conversation(1).tokens_in(ChunkLocation.GPU) == 0
        mgr.conversation(1).check_layout()

    def test_conversation_mode_moves_to_next_victim(self):
        mgr = self.make(whole=True)
        finish_conversation(mgr, 1, 128, now=0.0)
        finish_conversation(mgr, 2, 128, now=5.0)
        mgr.swap_out(200, now=10.0)
        # Conversation 1 (older) fully evicted, then conversation 2.
        assert mgr.conversation(1).tokens_in(ChunkLocation.GPU) == 0
        assert mgr.conversation(2).tokens_in(ChunkLocation.GPU) == 0
