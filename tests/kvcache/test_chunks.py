"""Tests for chunk bookkeeping and the Figure 5 layout invariant."""

import pytest

from repro.kvcache import Chunk, ChunkLocation, ConversationCache


class TestChunk:
    def test_basic_properties(self):
        chunk = Chunk(conv_id=1, index=0, start=0, end=32)
        assert chunk.num_tokens == 32
        assert chunk.location is ChunkLocation.GPU

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Chunk(conv_id=1, index=0, start=10, end=10)
        with pytest.raises(ValueError):
            Chunk(conv_id=1, index=0, start=-1, end=5)


class TestExtendTo:
    def test_covers_with_full_and_partial_chunks(self):
        cache = ConversationCache(conv_id=7, chunk_size=32)
        created = cache.extend_to(100)
        assert [c.num_tokens for c in created] == [32, 32, 32, 4]
        assert cache.total_tokens == 100
        cache.check_layout()

    def test_partial_tail_completes_first(self):
        cache = ConversationCache(conv_id=7, chunk_size=32)
        cache.extend_to(40)
        cache.extend_to(100)
        sizes = [c.num_tokens for c in cache.chunks]
        assert sizes == [32, 32, 32, 4]
        cache.check_layout()

    def test_extend_is_idempotent_at_same_size(self):
        cache = ConversationCache(conv_id=7, chunk_size=32)
        cache.extend_to(64)
        assert cache.extend_to(64) == []

    def test_shrink_rejected(self):
        cache = ConversationCache(conv_id=7, chunk_size=32)
        cache.extend_to(64)
        with pytest.raises(ValueError):
            cache.extend_to(32)

    def test_cannot_extend_non_gpu_tail(self):
        cache = ConversationCache(conv_id=7, chunk_size=32)
        cache.extend_to(40)
        cache.chunks[-1].location = ChunkLocation.CPU
        cache.chunks[0].location = ChunkLocation.CPU
        with pytest.raises(ValueError):
            cache.extend_to(80)


class TestAccounting:
    def make_cache(self):
        cache = ConversationCache(conv_id=1, chunk_size=32)
        cache.extend_to(128)
        cache.chunks[0].location = ChunkLocation.DROPPED
        cache.chunks[1].location = ChunkLocation.CPU
        cache.chunks[2].location = ChunkLocation.GPU_CPU
        return cache

    def test_tokens_in(self):
        cache = self.make_cache()
        assert cache.tokens_in(ChunkLocation.GPU) == 32
        assert cache.tokens_in(ChunkLocation.GPU, ChunkLocation.GPU_CPU) == 64
        assert cache.tokens_in(ChunkLocation.DROPPED) == 32

    def test_segments(self):
        cache = self.make_cache()
        seg = cache.segments()
        assert seg[ChunkLocation.DROPPED] == 32
        assert seg[ChunkLocation.CPU] == 32
        assert seg[ChunkLocation.GPU_CPU] == 32
        assert seg[ChunkLocation.GPU] == 32

    def test_frontier(self):
        cache = self.make_cache()
        assert cache.frontier(ChunkLocation.CPU).index == 1
        assert cache.frontier(ChunkLocation.GPU).index == 3
        assert cache.frontier(ChunkLocation.GPU, ChunkLocation.GPU_CPU).index == 2

    def test_gpu_segment_bounds(self):
        cache = self.make_cache()
        assert cache.gpu_segment_bounds() == (64, 128)

    def test_gpu_segment_bounds_empty(self):
        cache = ConversationCache(conv_id=1, chunk_size=32)
        cache.extend_to(64)
        for chunk in cache.chunks:
            chunk.location = ChunkLocation.CPU
        assert cache.gpu_segment_bounds() == (64, 64)


class TestLayoutInvariant:
    def test_valid_layout_passes(self):
        cache = ConversationCache(conv_id=1, chunk_size=32)
        cache.extend_to(128)
        cache.chunks[0].location = ChunkLocation.DROPPED
        cache.chunks[1].location = ChunkLocation.CPU
        cache.check_layout()

    def test_gpu_before_cpu_fails(self):
        cache = ConversationCache(conv_id=1, chunk_size=32)
        cache.extend_to(64)
        cache.chunks[1].location = ChunkLocation.CPU  # GPU then CPU: illegal
        with pytest.raises(AssertionError):
            cache.check_layout()

    def test_cpu_before_dropped_fails(self):
        cache = ConversationCache(conv_id=1, chunk_size=32)
        cache.extend_to(96)
        cache.chunks[0].location = ChunkLocation.CPU
        cache.chunks[1].location = ChunkLocation.DROPPED
        with pytest.raises(AssertionError):
            cache.check_layout()

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ConversationCache(conv_id=1, chunk_size=0)


class TestRear:
    def make_cache(self):
        cache = ConversationCache(conv_id=1, chunk_size=32)
        cache.extend_to(128)
        cache.chunks[0].location = ChunkLocation.CPU
        cache.chunks[1].location = ChunkLocation.GPU_CPU
        cache.chunks[2].location = ChunkLocation.GPU_CPU
        return cache

    def test_rear_finds_latest_match(self):
        cache = self.make_cache()
        assert cache.rear(ChunkLocation.GPU_CPU).index == 2
        assert cache.rear(ChunkLocation.CPU).index == 0
        assert cache.rear(ChunkLocation.GPU).index == 3

    def test_rear_none_when_absent(self):
        cache = self.make_cache()
        assert cache.rear(ChunkLocation.DROPPED) is None

    def test_rear_multiple_locations(self):
        cache = self.make_cache()
        assert cache.rear(ChunkLocation.CPU, ChunkLocation.GPU_CPU).index == 2
