"""Chaos random walks: the cache manager with an armed fault plan.

Complements ``test_manager_properties.py`` (fault-free hypothesis storms)
with plain seeded random walks whose manager has fault injection armed:
swap-outs degrade to drops mid-walk, and the walk itself interleaves the
recovery entry points (``invalidate_cpu_prefix``) with ordinary traffic.
After *every* step the incremental counters must match a from-scratch
recount and every conversation's layout must obey the Figure 5 invariant
— injected failures may cost data locality, never accounting integrity.
"""

from __future__ import annotations

import random

import pytest

from repro.core import LruPolicy
from repro.faults import FaultPlan, FaultSite
from repro.kvcache import TwoTierCacheManager
from repro.kvcache.manager import CacheCapacityError

OPS = (
    "open_commit",
    "append",
    "close",
    "swap_out",
    "reclaim",
    "drop_cpu",
    "suspend",
    "forget",
    "invalidate",
)

WALK_SEEDS = range(50)
STEPS_PER_WALK = 60


class ChaosWalk:
    """One seeded random walk over an armed manager."""

    def __init__(self, seed: int, gpu: int, cpu: int, chunk: int) -> None:
        self.rng = random.Random(seed)
        self.plan = FaultPlan(
            seed=seed,
            rates={FaultSite.SWAP_OUT: 0.25, FaultSite.SWAP_IN: 0.25},
        )
        self.manager = TwoTierCacheManager(
            gpu_capacity_tokens=gpu,
            cpu_capacity_tokens=cpu,
            chunk_size=chunk,
            scorer=LruPolicy(),
            fault_plan=self.plan,
        )
        self.clock = 0.0
        self.open_convs: set = set()

    def now(self) -> float:
        self.clock += 1.0
        return self.clock

    def step(self) -> None:
        rng = self.rng
        mgr = self.manager
        kind = rng.choice(OPS)
        conv = rng.randrange(6)
        now = self.now()
        try:
            if kind == "open_commit":
                mgr.open(conv, now)
                plan = mgr.plan_restore(conv, rng.randint(1, 60))
                try:
                    mgr.ensure_capacity(plan.alloc_tokens, now)
                    mgr.commit_restore(plan, now)
                    self.open_convs.add(conv)
                except CacheCapacityError:
                    # A failed (re-)open aborts the request: the
                    # conversation is released, like a real turn would.
                    mgr.close(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "append":
                cache = mgr.conversation(conv)
                if conv in self.open_convs and cache is not None and cache.pinned:
                    mgr.append_tokens(conv, rng.randint(1, 8))
            elif kind == "close":
                if conv in self.open_convs:
                    mgr.close(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "swap_out":
                mgr.swap_out(rng.randint(1, 128), now)
            elif kind == "reclaim":
                mgr.reclaim(rng.randint(1, 128), now)
            elif kind == "drop_cpu":
                mgr.drop_from_cpu(rng.randint(1, 128), now)
            elif kind == "suspend":
                if conv in self.open_convs:
                    mgr.release_conversation_gpu(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "forget":
                if conv not in self.open_convs:
                    mgr.forget(conv)
            elif kind == "invalidate":
                # The corruption-recovery entry point, fired at random.
                if conv not in self.open_convs:
                    mgr.invalidate_cpu_prefix(conv)
        except CacheCapacityError:
            pass  # legal refusals are fine; invariants must still hold

    def check(self) -> None:
        mgr = self.manager
        mgr._audit()
        assert 0 <= mgr.gpu_resident_tokens <= mgr.gpu_capacity_tokens
        assert 0 <= mgr.cpu_used_tokens <= mgr.cpu_capacity_tokens
        assert mgr.reclaimable_tokens >= 0
        for cache in mgr.conversations():
            cache.check_layout()


@pytest.mark.parametrize("seed", WALK_SEEDS)
def test_chaos_walk_preserves_invariants(seed):
    shapes = [(256, 512, 16), (128, 0, 8), (512, 2048, 32)]
    gpu, cpu, chunk = shapes[seed % len(shapes)]
    walk = ChaosWalk(seed, gpu=gpu, cpu=cpu, chunk=chunk)
    for _ in range(STEPS_PER_WALK):
        walk.step()
        walk.check()


@pytest.mark.parametrize("seed", range(10))
def test_chaos_walk_is_deterministic(seed):
    """Same seed, same fault firings, same end state."""

    def run():
        walk = ChaosWalk(seed, gpu=256, cpu=512, chunk=16)
        for _ in range(STEPS_PER_WALK):
            walk.step()
        return (
            walk.plan.total_fired,
            dict(walk.manager.stats),
            sorted(
                (c.conv_id, c.total_tokens) for c in walk.manager.conversations()
            ),
        )

    assert run() == run()


def test_swap_out_faults_degrade_to_drops():
    """A fired SWAP_OUT fault must not lose tokens: the chunk moves to
    DROPPED (recoverable by recompute), never to CPU, never vanishes."""
    hit = 0
    for seed in range(20):
        walk = ChaosWalk(seed, gpu=128, cpu=1024, chunk=16)
        for _ in range(STEPS_PER_WALK):
            totals_before = {
                c.conv_id: c.total_tokens for c in walk.manager.conversations()
            }
            walk.step()
            walk.check()
            for cache in walk.manager.conversations():
                if cache.conv_id in totals_before:
                    assert cache.total_tokens >= totals_before[cache.conv_id] or (
                        cache.conv_id not in walk.open_convs
                    )
        hit += walk.manager.fault_counters.swap_out_failures
    assert hit > 0  # the walks actually exercised the degraded path
