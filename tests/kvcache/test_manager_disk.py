"""Directed tests for the disk tier's manager mechanics: demotion,
value-ordered displacement, disk-aware restore planning, and prefix
invalidation — the deterministic counterparts of the property walks."""

import pytest

from repro.core import LruPolicy, TieredPlacementPolicy
from repro.kvcache import TieredCacheManager, TwoTierCacheManager
from repro.kvcache.chunks import ChunkLocation


def make_manager(gpu=128, cpu=64, disk=128, chunk=16, scorer=None, placement=None):
    return TieredCacheManager(
        gpu_capacity_tokens=gpu,
        cpu_capacity_tokens=cpu,
        disk_capacity_tokens=disk,
        chunk_size=chunk,
        scorer=scorer or LruPolicy(),
        placement=placement,
    )


def park(mgr, conv, tokens, now):
    """Serve one turn: commit ``tokens`` of context and unpin."""
    mgr.open(conv, now)
    plan = mgr.plan_restore(conv, tokens)
    mgr.ensure_capacity(plan.alloc_tokens, now)
    mgr.commit_restore(plan, now)
    mgr.close(conv, now)


def push_to_cpu(mgr, tokens, now):
    """Force ``tokens`` of unpinned GPU context down to plain CPU."""
    mgr.swap_out(tokens, now)
    mgr.reclaim(tokens, now)


def squeeze(mgr):
    """Two parked conversations contend for a 32-token CPU tier: conv 0's
    resident chunks must leave the CPU to make room for conv 1."""
    park(mgr, 0, 32, now=1.0)
    push_to_cpu(mgr, 32, now=2.0)
    park(mgr, 1, 32, now=3.0)
    push_to_cpu(mgr, 32, now=4.0)


class TestDemotion:
    def test_cpu_pressure_demotes_to_disk(self):
        mgr = make_manager(gpu=128, cpu=32, disk=128)
        squeeze(mgr)
        assert mgr.disk_used_tokens == 32
        assert mgr.conversation(0).tokens_in(ChunkLocation.DISK) == 32
        assert mgr.stats["demoted_tokens"] == 32
        assert mgr.stats["dropped_tokens"] == 0
        mgr._audit()

    def test_disk_disabled_drops_instead(self):
        mgr = make_manager(gpu=128, cpu=32, disk=0)
        squeeze(mgr)
        assert mgr.disk_used_tokens == 0
        assert mgr.stats["demoted_tokens"] == 0
        assert mgr.stats["dropped_tokens"] == 32
        mgr._audit()

    def test_placement_floor_vetoes_demotion(self):
        scorer = LruPolicy()
        mgr = make_manager(
            gpu=128, cpu=32, disk=128, scorer=scorer,
            placement=TieredPlacementPolicy(scorer, min_disk_value=1e9),
        )
        squeeze(mgr)
        assert mgr.disk_used_tokens == 0
        assert mgr.stats["dropped_tokens"] == 32

    def test_disk_overflow_collapses_unusable_prefix(self):
        mgr = make_manager(gpu=128, cpu=32, disk=16)
        squeeze(mgr)
        # The 16-token disk holds only conv 0's first chunk.  Its second
        # chunk cannot displace the equal-scored sibling, so it drops —
        # and because a restore can only use a *contiguous* stored prefix,
        # the now-useless disk chunk ahead of it is discarded with it
        # (Figure 5: the dropped prefix grows from the front).
        assert mgr.disk_used_tokens == 0
        assert mgr.conversation(0).tokens_in(ChunkLocation.DROPPED) == 32
        assert mgr.stats["demoted_tokens"] == 16
        assert mgr.stats["disk_dropped_tokens"] == 16
        assert mgr.stats["dropped_tokens"] == 32
        mgr._audit()


class TestDisplacement:
    def test_higher_value_chunk_displaces_lower(self):
        # LRU scorer: older last_active = lower score.  Conversation 0
        # parks early (low value), conversation 1 later (high value).
        mgr = make_manager(gpu=128, cpu=32, disk=32)
        park(mgr, 0, 32, now=1.0)
        push_to_cpu(mgr, 32, now=2.0)
        mgr.drop_from_cpu(32, now=3.0)  # conv 0 fills the disk
        assert mgr.disk_used_tokens == 32
        park(mgr, 1, 32, now=10.0)
        push_to_cpu(mgr, 32, now=11.0)
        mgr.drop_from_cpu(32, now=12.0)  # conv 1 wants the disk
        cache0 = mgr.conversation(0)
        cache1 = mgr.conversation(1)
        # Conversation 1 (recent, higher retention) displaced conv 0.
        assert cache1.tokens_in(ChunkLocation.DISK) == 32
        assert cache0.tokens_in(ChunkLocation.DISK) == 0
        assert cache0.tokens_in(ChunkLocation.DROPPED) == 32
        assert mgr.stats["disk_dropped_tokens"] == 32
        mgr._audit()

    def test_lower_value_chunk_cannot_displace(self):
        # Reverse roles: the recent (high-value) conversation owns the
        # disk; the stale conversation's chunks may not displace it and
        # are dropped instead.
        mgr = make_manager(gpu=128, cpu=32, disk=32)
        park(mgr, 1, 32, now=10.0)  # recent, high score
        push_to_cpu(mgr, 32, now=10.5)
        mgr.drop_from_cpu(32, now=11.0)  # conv 1 fills the disk
        assert mgr.conversation(1).tokens_in(ChunkLocation.DISK) == 32
        park(mgr, 0, 32, now=1.0)   # stale, low score
        push_to_cpu(mgr, 32, now=1.5)
        mgr.drop_from_cpu(32, now=2.0)  # conv 0 wants the disk, loses
        assert mgr.conversation(1).tokens_in(ChunkLocation.DISK) == 32
        assert mgr.conversation(0).tokens_in(ChunkLocation.DISK) == 0
        assert mgr.conversation(0).tokens_in(ChunkLocation.DROPPED) == 32
        assert mgr.stats["disk_dropped_tokens"] == 0
        mgr._audit()


class TestRestorePlanning:
    def _park_to_disk(self, mgr, conv=0, tokens=64):
        park(mgr, conv, tokens, now=1.0)
        push_to_cpu(mgr, tokens, now=2.0)
        mgr.drop_from_cpu(tokens, now=3.0)
        return mgr.conversation(conv)

    def test_plan_lists_disk_chunks(self):
        mgr = make_manager(gpu=128, cpu=64, disk=128)
        cache = self._park_to_disk(mgr)
        disk_tokens = cache.tokens_in(ChunkLocation.DISK)
        assert disk_tokens == 64
        plan = mgr.plan_restore(0, new_tokens=8)
        assert plan.disk_read_tokens == disk_tokens
        assert [c.index for c in plan.disk_read_chunks] == [0, 1, 2, 3]
        assert plan.alloc_tokens == disk_tokens + 8
        assert plan.cached_tokens == disk_tokens
        assert plan.prefill_tokens == 8

    def test_commit_promotes_and_counts_hits(self):
        mgr = make_manager(gpu=128, cpu=64, disk=128)
        self._park_to_disk(mgr)
        plan = mgr.plan_restore(0, new_tokens=8)
        mgr.ensure_capacity(plan.alloc_tokens, now=4.0)
        cache = mgr.commit_restore(plan, now=4.0)
        assert cache.tokens_in(ChunkLocation.GPU) == 72
        assert cache.tokens_in(ChunkLocation.DISK) == 0
        assert mgr.disk_used_tokens == 0
        assert mgr.stats["disk_hit_tokens"] == 64
        mgr._audit()

    def _split_across_tiers(self, mgr, conv=0):
        """Leave ``conv`` with a DISK prefix, a CPU middle, and a GPU
        suffix (the extended Figure 5 layout, all tiers populated)."""
        park(mgr, conv, 96, now=1.0)
        push_to_cpu(mgr, 48, now=2.0)
        mgr.drop_from_cpu(32, now=3.0)

    def test_invalidate_disk_prefix_spares_cpu(self):
        mgr = make_manager(gpu=192, cpu=48, disk=128)
        self._split_across_tiers(mgr)
        cache = mgr.conversation(0)
        disk_before = cache.tokens_in(ChunkLocation.DISK)
        cpu_before = cache.tokens_in(ChunkLocation.CPU)
        assert disk_before > 0 and cpu_before > 0
        invalidated = mgr.invalidate_disk_prefix(0)
        assert invalidated == disk_before
        assert cache.tokens_in(ChunkLocation.DISK) == 0
        assert cache.tokens_in(ChunkLocation.CPU) == cpu_before
        cache.check_layout()
        mgr._audit()

    def test_invalidate_cpu_prefix_takes_disk_along(self):
        mgr = make_manager(gpu=192, cpu=48, disk=128)
        self._split_across_tiers(mgr)
        cache = mgr.conversation(0)
        stored = cache.tokens_in(ChunkLocation.DISK) + cache.tokens_in(
            ChunkLocation.CPU
        )
        invalidated = mgr.invalidate_cpu_prefix(0)
        assert invalidated == stored
        assert cache.tokens_in(ChunkLocation.DISK) == 0
        assert cache.tokens_in(ChunkLocation.CPU) == 0
        cache.check_layout()
        mgr._audit()


class TestBackwardCompatibility:
    def test_two_tier_alias(self):
        assert TwoTierCacheManager is TieredCacheManager

    def test_disabled_disk_keeps_two_tier_stats_shape(self):
        mgr = TwoTierCacheManager(
            gpu_capacity_tokens=128, cpu_capacity_tokens=64,
            chunk_size=16, scorer=LruPolicy(),
        )
        park(mgr, 0, 64, now=1.0)
        push_to_cpu(mgr, 64, now=2.0)
        mgr.drop_from_cpu(64, now=3.0)
        assert mgr.disk_capacity_tokens == 0
        assert mgr.disk_used_tokens == 0
        assert mgr.stats["demoted_tokens"] == 0
        assert mgr.stats["disk_hit_tokens"] == 0
        assert mgr.stats["disk_dropped_tokens"] == 0
        mgr._audit()
