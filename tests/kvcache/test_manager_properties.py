"""Property-based tests: the cache manager under random operation storms.

Hypothesis drives arbitrary interleavings of the manager's public
operations and checks, after every step, that

- the incremental tier counters match a from-scratch recount (``_audit``);
- every conversation's chunk layout obeys the Figure 5 invariant;
- tier capacities are never exceeded.

These invariants are exactly what the serving engines rely on; a drift in
any of them corrupts simulated memory accounting silently.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LruPolicy
from repro.kvcache import TwoTierCacheManager
from repro.kvcache.manager import CacheCapacityError


class ManagerMachine:
    """Applies a scripted operation list to a fresh manager."""

    def __init__(self, gpu: int, cpu: int, chunk: int) -> None:
        self.manager = TwoTierCacheManager(
            gpu_capacity_tokens=gpu,
            cpu_capacity_tokens=cpu,
            chunk_size=chunk,
            scorer=LruPolicy(),
        )
        self.clock = 0.0
        self.open_convs: set = set()

    def now(self) -> float:
        self.clock += 1.0
        return self.clock

    def apply(self, op) -> None:
        kind = op[0]
        mgr = self.manager
        now = self.now()
        try:
            if kind == "open_commit":
                _, conv, tokens = op
                mgr.open(conv, now)
                plan = mgr.plan_restore(conv, tokens)
                try:
                    mgr.ensure_capacity(plan.alloc_tokens, now)
                    mgr.commit_restore(plan, now)
                    self.open_convs.add(conv)
                except CacheCapacityError:
                    mgr.close(conv, now)
            elif kind == "append":
                _, conv, tokens = op
                if conv in self.open_convs:
                    mgr.append_tokens(conv, tokens)
            elif kind == "close":
                _, conv = op
                if conv in self.open_convs:
                    mgr.close(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "swap_out":
                _, tokens = op
                mgr.swap_out(tokens, now)
            elif kind == "reclaim":
                _, tokens = op
                mgr.reclaim(tokens, now)
            elif kind == "drop_cpu":
                _, tokens = op
                mgr.drop_from_cpu(tokens, now)
            elif kind == "suspend":
                _, conv = op
                if conv in self.open_convs:
                    mgr.release_conversation_gpu(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "forget":
                _, conv = op
                if conv not in self.open_convs:
                    mgr.forget(conv)
        except CacheCapacityError:
            pass  # legal refusals are fine; invariants must still hold

    def check(self) -> None:
        mgr = self.manager
        mgr._audit()
        assert 0 <= mgr.gpu_resident_tokens <= mgr.gpu_capacity_tokens
        assert 0 <= mgr.cpu_used_tokens <= mgr.cpu_capacity_tokens
        assert mgr.reclaimable_tokens >= 0
        for cache in mgr.conversations():
            cache.check_layout()


CONV_IDS = st.integers(min_value=0, max_value=5)

OPERATION = st.one_of(
    st.tuples(st.just("open_commit"), CONV_IDS, st.integers(1, 60)),
    st.tuples(st.just("append"), CONV_IDS, st.integers(1, 8)),
    st.tuples(st.just("close"), CONV_IDS),
    st.tuples(st.just("swap_out"), st.integers(1, 128)),
    st.tuples(st.just("reclaim"), st.integers(1, 128)),
    st.tuples(st.just("drop_cpu"), st.integers(1, 128)),
    st.tuples(st.just("suspend"), CONV_IDS),
    st.tuples(st.just("forget"), CONV_IDS),
)


@settings(max_examples=120, deadline=None)
@given(
    ops=st.lists(OPERATION, min_size=1, max_size=60),
    gpu=st.integers(min_value=96, max_value=512),
    cpu=st.sampled_from([0, 64, 256, 2048]),
    chunk=st.sampled_from([8, 16, 32]),
)
def test_random_operation_storm_preserves_invariants(ops, gpu, cpu, chunk):
    machine = ManagerMachine(gpu=gpu, cpu=cpu, chunk=chunk)
    for op in ops:
        machine.apply(op)
        machine.check()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(OPERATION, min_size=10, max_size=80),
)
def test_tokens_are_conserved_per_conversation(ops):
    """A conversation's total token count never changes except through
    commit (growth by new tokens) and append — no tier transition may
    create or destroy tokens."""
    machine = ManagerMachine(gpu=384, cpu=512, chunk=16)
    totals = {}
    for op in ops:
        before = {
            c.conv_id: c.total_tokens for c in machine.manager.conversations()
        }
        machine.apply(op)
        after = {
            c.conv_id: c.total_tokens for c in machine.manager.conversations()
        }
        for conv_id, total in after.items():
            if conv_id in before and op[0] not in ("open_commit", "append"):
                assert total == before[conv_id], (op, conv_id)
    machine.check()


@settings(max_examples=60, deadline=None)
@given(
    requests=st.lists(
        st.tuples(CONV_IDS, st.integers(1, 40)), min_size=2, max_size=30
    )
)
def test_serving_cycle_always_restores_full_context(requests):
    """For any interleaving of turns, a committed restore leaves the
    conversation entirely GPU-resident with the expected total size."""
    machine = ManagerMachine(gpu=512, cpu=1024, chunk=16)
    mgr = machine.manager
    expected = {}
    for conv, tokens in requests:
        now = machine.now()
        mgr.open(conv, now)
        plan = mgr.plan_restore(conv, tokens)
        try:
            mgr.ensure_capacity(plan.alloc_tokens, now)
            cache = mgr.commit_restore(plan, now)
        except CacheCapacityError:
            mgr.close(conv, now)
            continue
        expected[conv] = expected.get(conv, 0) + tokens
        assert cache.total_tokens == expected[conv]
        from repro.kvcache.chunks import ChunkLocation

        assert cache.tokens_in(ChunkLocation.GPU) == expected[conv]
        mgr.close(conv, now)
        mgr.swap_out(64, machine.now())
        machine.check()
