"""Property-based tests for the three-tier (GPU/CPU/disk) state machine.

Two layers of random-walk coverage:

- **Manager walks** (hypothesis): arbitrary interleavings of the public
  operations — including disk demotion and disk eviction — must preserve
  the audit identities, all three tier-capacity bounds, the extended
  Figure 5 layout invariant, and token conservation (a tier transition
  may never create or destroy tokens, which is the accounting form of
  "each chunk lives in exactly one tier at a time").
- **Server walks** (seeded): a real :class:`StatefulChatServer` with a
  tiny GPU/CPU and a disk tier serves random multi-turn traffic; after
  every turn the physical stores must mirror the manager's bookkeeping
  exactly (every CPU/GPU_CPU chunk has a CPU-store entry, every DISK
  chunk a disk-store entry, nothing else exists) and every stored chunk
  must still pass its CRC check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LruPolicy, TieredPlacementPolicy
from repro.core.server import StatefulChatServer
from repro.kvcache import TieredCacheManager
from repro.kvcache.chunks import ChunkLocation
from repro.kvcache.manager import CacheCapacityError
from repro.model.config import tiny_opt_config


class ThreeTierMachine:
    """Applies a scripted operation list to a fresh three-tier manager."""

    def __init__(
        self, gpu: int, cpu: int, disk: int, chunk: int, min_disk_value: float
    ) -> None:
        scorer = LruPolicy()
        self.manager = TieredCacheManager(
            gpu_capacity_tokens=gpu,
            cpu_capacity_tokens=cpu,
            disk_capacity_tokens=disk,
            chunk_size=chunk,
            scorer=scorer,
            placement=TieredPlacementPolicy(scorer, min_disk_value=min_disk_value),
        )
        self.clock = 0.0
        self.open_convs: set = set()

    def now(self) -> float:
        self.clock += 1.0
        return self.clock

    def apply(self, op) -> None:
        kind = op[0]
        mgr = self.manager
        now = self.now()
        try:
            if kind == "open_commit":
                _, conv, tokens = op
                mgr.open(conv, now)
                plan = mgr.plan_restore(conv, tokens)
                try:
                    mgr.ensure_capacity(plan.alloc_tokens, now)
                    mgr.commit_restore(plan, now)
                    self.open_convs.add(conv)
                except CacheCapacityError:
                    mgr.close(conv, now)
            elif kind == "append":
                _, conv, tokens = op
                if conv in self.open_convs:
                    mgr.append_tokens(conv, tokens)
            elif kind == "close":
                _, conv = op
                if conv in self.open_convs:
                    mgr.close(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "swap_out":
                _, tokens = op
                mgr.swap_out(tokens, now)
            elif kind == "reclaim":
                _, tokens = op
                mgr.reclaim(tokens, now)
            elif kind == "drop_cpu":
                _, tokens = op
                mgr.drop_from_cpu(tokens, now)
            elif kind == "drop_disk":
                _, tokens = op
                mgr.drop_from_disk(tokens, now)
            elif kind == "suspend":
                _, conv = op
                if conv in self.open_convs:
                    mgr.release_conversation_gpu(conv, now)
                    self.open_convs.discard(conv)
            elif kind == "forget":
                _, conv = op
                if conv not in self.open_convs:
                    mgr.forget(conv)
        except CacheCapacityError:
            pass  # legal refusals are fine; invariants must still hold

    def check(self) -> None:
        mgr = self.manager
        mgr._audit()
        assert 0 <= mgr.gpu_resident_tokens <= mgr.gpu_capacity_tokens
        assert 0 <= mgr.cpu_used_tokens <= mgr.cpu_capacity_tokens
        assert 0 <= mgr.disk_used_tokens <= mgr.disk_capacity_tokens
        assert mgr.reclaimable_tokens >= 0
        for cache in mgr.conversations():
            cache.check_layout()
            # Conservation within one conversation: every token is in
            # exactly one tier, so the per-location totals partition the
            # conversation's context.
            assert (
                sum(cache.tokens_in(loc) for loc in ChunkLocation)
                == cache.total_tokens
            )


CONV_IDS = st.integers(min_value=0, max_value=5)

OPERATION = st.one_of(
    st.tuples(st.just("open_commit"), CONV_IDS, st.integers(1, 60)),
    st.tuples(st.just("append"), CONV_IDS, st.integers(1, 8)),
    st.tuples(st.just("close"), CONV_IDS),
    st.tuples(st.just("swap_out"), st.integers(1, 128)),
    st.tuples(st.just("reclaim"), st.integers(1, 128)),
    st.tuples(st.just("drop_cpu"), st.integers(1, 128)),
    st.tuples(st.just("drop_disk"), st.integers(1, 128)),
    st.tuples(st.just("suspend"), CONV_IDS),
    st.tuples(st.just("forget"), CONV_IDS),
)


@settings(max_examples=120, deadline=None)
@given(
    ops=st.lists(OPERATION, min_size=1, max_size=60),
    gpu=st.integers(min_value=96, max_value=512),
    cpu=st.sampled_from([0, 64, 256, 2048]),
    disk=st.sampled_from([0, 32, 128, 1024]),
    chunk=st.sampled_from([8, 16, 32]),
    floor=st.sampled_from([0.0, 5.0, 1e9]),
)
def test_random_operation_storm_preserves_invariants(
    ops, gpu, cpu, disk, chunk, floor
):
    machine = ThreeTierMachine(
        gpu=gpu, cpu=cpu, disk=disk, chunk=chunk, min_disk_value=floor
    )
    for op in ops:
        machine.apply(op)
        machine.check()


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(OPERATION, min_size=10, max_size=80))
def test_tokens_are_conserved_across_three_tiers(ops):
    """No tier transition — demotion, disk eviction, promotion included —
    may create or destroy a conversation's tokens."""
    machine = ThreeTierMachine(gpu=384, cpu=256, disk=256, chunk=16, min_disk_value=0.0)
    for op in ops:
        before = {
            c.conv_id: c.total_tokens for c in machine.manager.conversations()
        }
        machine.apply(op)
        after = {
            c.conv_id: c.total_tokens for c in machine.manager.conversations()
        }
        for conv_id, total in after.items():
            if conv_id in before and op[0] not in ("open_commit", "append"):
                assert total == before[conv_id], (op, conv_id)
    machine.check()


@settings(max_examples=40, deadline=None)
@given(requests=st.lists(st.tuples(CONV_IDS, st.integers(1, 40)), min_size=2, max_size=30))
def test_restore_promotes_disk_chunks_fully(requests):
    """A committed restore leaves the conversation entirely GPU-resident
    even when parts of it had been demoted all the way to disk."""
    machine = ThreeTierMachine(gpu=256, cpu=64, disk=1024, chunk=16, min_disk_value=0.0)
    mgr = machine.manager
    expected = {}
    for conv, tokens in requests:
        now = machine.now()
        mgr.open(conv, now)
        plan = mgr.plan_restore(conv, tokens)
        try:
            mgr.ensure_capacity(plan.alloc_tokens, now)
            cache = mgr.commit_restore(plan, now)
        except CacheCapacityError:
            mgr.close(conv, now)
            continue
        expected[conv] = expected.get(conv, 0) + tokens
        assert cache.total_tokens == expected[conv]
        assert cache.tokens_in(ChunkLocation.GPU) == expected[conv]
        assert cache.tokens_in(ChunkLocation.DISK) == 0
        mgr.close(conv, now)
        # Pressure both upper tiers so disk residency actually occurs.
        mgr.swap_out(64, machine.now())
        mgr.reclaim(64, machine.now())
        mgr.drop_from_cpu(32, machine.now())
        machine.check()


# ----------------------------------------------------------------------
# Server-level walks: physical stores must mirror the bookkeeping
# ----------------------------------------------------------------------


def _assert_stores_mirror_manager(server: StatefulChatServer) -> None:
    """Every chunk lives in exactly one physical place, and that place is
    the one the manager's bookkeeping claims; all stored bytes still pass
    their insertion-time CRC."""
    expected_cpu = set()
    expected_disk = set()
    for cache in server.manager.conversations():
        for chunk in cache.chunks:
            key = (cache.conv_id, chunk.index)
            if chunk.location in (ChunkLocation.CPU, ChunkLocation.GPU_CPU):
                expected_cpu.add(key)
            elif chunk.location is ChunkLocation.DISK:
                expected_disk.add(key)
    for conv_id, chunk_index in expected_cpu:
        assert server.cpu_store.contains(conv_id, chunk_index)
        server.cpu_store.get(conv_id, chunk_index)  # re-verifies the CRC
    for conv_id, chunk_index in expected_disk:
        assert server.disk_store.contains(conv_id, chunk_index)
        server.disk_store.get(conv_id, chunk_index)  # re-verifies the CRC
    # Count equality upgrades the subset checks to exact set equality:
    # no orphaned entries survive in either store.
    assert len(server.cpu_store) == len(expected_cpu)
    assert len(server.disk_store) == len(expected_disk)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_server_random_walk_keeps_tiers_coherent(seed):
    config = tiny_opt_config()
    server = StatefulChatServer(
        config,
        gpu_capacity_tokens=192,
        cpu_capacity_tokens=96,
        disk_capacity_tokens=2048,
        chunk_size=16,
        page_size=8,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    for _turn in range(20):
        conv = int(rng.integers(0, 6))
        prompt = [int(t) for t in rng.integers(1, config.vocab_size, size=rng.integers(8, 20))]
        server.chat(conv, prompt_ids=prompt, max_new_tokens=int(rng.integers(2, 9)))
        server.manager._audit()
        _assert_stores_mirror_manager(server)
    assert server.manager.stats["demoted_tokens"] > 0, (
        "walk must actually exercise the disk tier"
    )
    assert server.manager.stats["disk_hit_tokens"] > 0


@pytest.mark.parametrize(
    "floor,expect_demotions", [(6.0, True), (1e9, False)]
)
def test_server_walk_under_retention_floor(floor, expect_demotions):
    """With a placement floor, evictions below it drop instead of
    demoting (an infinite floor reproduces the pure two-tier behaviour) —
    the stores must stay coherent either way."""
    config = tiny_opt_config()
    scorer = LruPolicy()
    server = StatefulChatServer(
        config,
        gpu_capacity_tokens=192,
        cpu_capacity_tokens=96,
        disk_capacity_tokens=2048,
        placement=TieredPlacementPolicy(scorer, min_disk_value=floor),
        chunk_size=16,
        page_size=8,
        scorer=scorer,
        seed=3,
    )
    rng = np.random.default_rng(3)
    for _turn in range(20):
        conv = int(rng.integers(0, 6))
        prompt = [int(t) for t in rng.integers(1, config.vocab_size, size=rng.integers(8, 20))]
        server.chat(conv, prompt_ids=prompt, max_new_tokens=int(rng.integers(2, 9)))
        server.manager._audit()
        _assert_stores_mirror_manager(server)
    stats = server.manager.stats
    assert stats["dropped_tokens"] > 0, "floor should force some drops"
    if expect_demotions:
        assert stats["demoted_tokens"] > 0
    else:
        assert stats["demoted_tokens"] == 0
        assert len(server.disk_store) == 0
