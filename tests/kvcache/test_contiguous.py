"""Tests for the vAttention-style contiguous arena (``contiguous`` backend).

The random-walk class is the commit-accounting property test: under
arbitrary grow / suspend / resume / exit interleavings the arena's
commit/decommit counters must reconcile *exactly* with slot-pool
occupancy and per-table page counts — no drift, ever.
"""

import numpy as np
import pytest

from repro.kvcache.contiguous import ContiguousArena, ContiguousBlockTable
from repro.kvcache.pages import PagePool, PagePoolExhausted


class TestArenaConstruction:
    def test_rejects_non_positive_reserve(self):
        pool = PagePool(num_pages=8, page_size=4)
        with pytest.raises(ValueError):
            ContiguousArena(pool, reserve_tokens=0, max_extents=2)

    def test_rejects_unaligned_reserve(self):
        pool = PagePool(num_pages=8, page_size=4)
        with pytest.raises(ValueError):
            ContiguousArena(pool, reserve_tokens=10, max_extents=2)

    def test_rejects_non_positive_extents(self):
        pool = PagePool(num_pages=8, page_size=4)
        with pytest.raises(ValueError):
            ContiguousArena(pool, reserve_tokens=8, max_extents=0)

    def test_virtual_span_and_protocol_alias(self):
        pool = PagePool(num_pages=8, page_size=4)
        arena = ContiguousArena(pool, reserve_tokens=16, max_extents=3)
        assert arena.virtual_tokens == 48
        assert arena.storage_slots == 48


class TestContiguousTable:
    @pytest.fixture
    def arena(self):
        pool = PagePool(num_pages=16, page_size=4)
        return ContiguousArena(pool, reserve_tokens=16, max_extents=4)

    def test_slots_are_base_plus_position(self, arena):
        table = arena.new_table()
        table.append_tokens(10)
        for i in range(10):
            assert table.slot(i) == table.base + i

    def test_slots_array_is_a_contiguous_range(self, arena):
        table = arena.new_table()
        table.append_tokens(10)
        slots = table.slots_array(2, 9)
        assert slots.tolist() == list(range(table.base + 2, table.base + 9))
        assert not slots.flags.writeable
        # Memoized: the same window returns the same array object.
        assert table.slots_array(2, 9) is slots

    def test_out_of_range_and_vacated_positions_raise(self, arena):
        table = arena.new_table()
        table.append_tokens(12)
        with pytest.raises(KeyError):
            table.slot(12)
        with pytest.raises(KeyError):
            table.slots_array(4, 13)
        table.vacate_front(8)
        with pytest.raises(KeyError):
            table.slot(0)
        with pytest.raises(KeyError):
            table.slots_array(0, 12)
        assert table.slot(8) == table.base + 8

    def test_extents_are_finite(self, arena):
        tables = [arena.new_table() for _ in range(4)]
        with pytest.raises(PagePoolExhausted):
            arena.new_table()
        tables[0].release()
        replacement = arena.new_table()
        assert replacement.base == tables[0].base  # LIFO extent reuse

    def test_reservation_overflow_is_capacity_pressure(self, arena):
        table = arena.new_table()
        table.append_tokens(16)
        with pytest.raises(PagePoolExhausted):
            table.append_tokens(1)
        assert table.length == 16

    def test_released_table_rejects_growth_and_restore(self, arena):
        table = arena.new_table()
        table.append_tokens(8)
        table.release()
        with pytest.raises(RuntimeError):
            table.append_tokens(1)
        with pytest.raises(RuntimeError):
            table.restore_front(4)

    def test_double_release_returns_extent_once(self, arena):
        table = arena.new_table()
        table.append_tokens(4)
        table.release()
        table.release()
        assert arena.extents_in_use == 0
        assert arena.extents_released == 1

    def test_commit_tickets_draw_from_the_shared_pool(self):
        pool = PagePool(num_pages=2, page_size=4)
        arena = ContiguousArena(pool, reserve_tokens=16, max_extents=2)
        table = arena.new_table()
        table.append_tokens(8)  # both budget pages committed
        other = arena.new_table()
        with pytest.raises(PagePoolExhausted):
            other.append_tokens(1)
        assert other.length == 0
        assert arena.committed_pages == 2


class TestCommitAccountingRandomWalk:
    """Commit/decommit counters reconcile exactly with pool occupancy
    under random grow / suspend / resume / exit walks (the satellite
    property test; mirrors the ``tests/pages`` random-walk style)."""

    PAGE_SIZE = 4
    RESERVE = 32
    MAX_EXTENTS = 6
    #: Less physical budget than virtual span, so commit pressure
    #: (PagePoolExhausted mid-walk) is part of the walk.
    POOL_PAGES = 24

    def _check(self, arena, pool, live):
        assert arena.committed_pages == pool.num_allocated_pages
        assert arena.commits - arena.decommits == arena.committed_pages
        assert arena.committed_pages == sum(t.num_pages for t in live)
        assert arena.resident_tokens == sum(t.resident_tokens for t in live)
        assert arena.extents_in_use == len(live)
        assert arena.commit_waste_slots >= 0
        assert arena.reserved_uncommitted_tokens >= 0
        assert arena.committed_tokens == arena.committed_pages * self.PAGE_SIZE

    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_walk_reconciles_after_every_op(self, seed):
        rng = np.random.default_rng(seed)
        pool = PagePool(num_pages=self.POOL_PAGES, page_size=self.PAGE_SIZE)
        arena = ContiguousArena(
            pool, reserve_tokens=self.RESERVE, max_extents=self.MAX_EXTENTS
        )
        live = []
        for _ in range(400):
            op = rng.choice(["admit", "grow", "suspend", "resume", "exit"])
            if op == "admit":
                if len(live) < self.MAX_EXTENTS:
                    live.append(arena.new_table())
                else:
                    with pytest.raises(PagePoolExhausted):
                        arena.new_table()
            elif op == "grow" and live:
                table = live[rng.integers(len(live))]
                count = int(rng.integers(1, 7))
                if table.length + count > self.RESERVE:
                    with pytest.raises(PagePoolExhausted):
                        table.append_tokens(count)
                else:
                    try:
                        table.append_tokens(count)
                    except PagePoolExhausted:
                        pass  # physical budget pressure; no state change
            elif op == "suspend" and live:
                table = live[rng.integers(len(live))]
                resident = table.resident_tokens
                if resident == 0:
                    continue
                if rng.integers(2):
                    count = resident  # vacate-all (may be unaligned)
                else:
                    aligned = (resident // self.PAGE_SIZE) * self.PAGE_SIZE
                    # Alignment is relative to the page grid, so only a
                    # page-aligned vacate boundary is legal mid-sequence.
                    if aligned == 0 or table.vacated % self.PAGE_SIZE:
                        count = resident
                    else:
                        count = int(rng.integers(1, aligned // self.PAGE_SIZE + 1))
                        count *= self.PAGE_SIZE
                table.vacate_front(count)
            elif op == "resume" and live:
                table = live[rng.integers(len(live))]
                if table.vacated == 0:
                    continue
                try:
                    table.restore_front(table.vacated)
                except PagePoolExhausted:
                    pass  # not enough commit budget to resume; no change
            elif op == "exit" and live:
                idx = int(rng.integers(len(live)))
                live.pop(idx).release()
            self._check(arena, pool, live)

        for table in live:
            table.release()
        assert arena.committed_pages == 0
        assert pool.num_allocated_pages == 0
        assert arena.resident_tokens == 0
        assert arena.extents_in_use == 0
        assert arena.commit_waste_slots == 0
        assert arena.reserved_uncommitted_tokens == 0
        assert arena.commits == arena.decommits
