"""Tests for the page pool and block tables."""

import numpy as np
import pytest

from repro.kvcache import BlockTable, PagePool, PagePoolExhausted


class TestPagePool:
    def test_allocate_and_free(self):
        pool = PagePool(num_pages=4, page_size=16)
        assert pool.num_free_pages == 4
        assert pool.capacity_tokens == 64
        a = pool.allocate_page()
        b = pool.allocate_page()
        assert a != b
        assert pool.num_allocated_pages == 2
        pool.free_page(a)
        assert pool.num_free_pages == 3
        assert pool.free_tokens == 48

    def test_exhaustion(self):
        pool = PagePool(num_pages=1, page_size=8)
        pool.allocate_page()
        with pytest.raises(PagePoolExhausted):
            pool.allocate_page()

    def test_double_free_rejected(self):
        pool = PagePool(num_pages=2, page_size=8)
        page = pool.allocate_page()
        pool.free_page(page)
        with pytest.raises(ValueError):
            pool.free_page(page)

    def test_out_of_range_free_rejected(self):
        pool = PagePool(num_pages=2, page_size=8)
        with pytest.raises(ValueError):
            pool.free_page(7)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PagePool(0, 8)
        with pytest.raises(ValueError):
            PagePool(4, 0)

    def test_lifo_reuse_fragments_sequences(self):
        """Freed pages are reused immediately, so interleaved sequences
        end up physically scattered — the property the paged kernels rely
        on being exercised."""
        pool = PagePool(num_pages=8, page_size=4)
        first = [pool.allocate_page() for _ in range(3)]
        pool.free_page(first[1])
        reused = pool.allocate_page()
        assert reused == first[1]


class TestBlockTable:
    @pytest.fixture
    def pool(self):
        return PagePool(num_pages=16, page_size=4)

    def test_append_allocates_pages_lazily(self, pool):
        table = BlockTable(pool)
        table.append_tokens(3)
        assert table.num_pages == 1
        table.append_tokens(1)
        assert table.num_pages == 1  # still fits in page 0
        table.append_tokens(1)
        assert table.num_pages == 2

    def test_slot_mapping(self, pool):
        table = BlockTable(pool)
        table.append_tokens(10)
        pages = [p for p in table.page_ids() if p is not None]
        for i in range(10):
            expected = pages[i // 4] * 4 + i % 4
            assert table.slot(i) == expected

    def test_slots_range(self, pool):
        table = BlockTable(pool)
        table.append_tokens(8)
        assert table.slots(2, 5) == [table.slot(i) for i in (2, 3, 4)]

    def test_out_of_range_slot(self, pool):
        table = BlockTable(pool)
        table.append_tokens(4)
        with pytest.raises(KeyError):
            table.slot(4)
        with pytest.raises(KeyError):
            table.slot(-1)

    def test_append_failure_leaves_table_unchanged(self):
        pool = PagePool(num_pages=2, page_size=4)
        table = BlockTable(pool)
        table.append_tokens(8)
        with pytest.raises(PagePoolExhausted):
            table.append_tokens(1)
        assert table.length == 8
        assert pool.num_free_pages == 0

    def test_vacate_front_frees_pages(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        free_before = pool.num_free_pages
        table.vacate_front(8)
        assert pool.num_free_pages == free_before + 2
        assert table.vacated == 8
        assert table.resident_tokens == 4
        with pytest.raises(KeyError):
            table.slot(0)
        assert table.slot(8) >= 0

    def test_vacate_requires_page_alignment(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        with pytest.raises(ValueError):
            table.vacate_front(3)

    def test_vacate_entire_unaligned_sequence_allowed(self, pool):
        table = BlockTable(pool)
        table.append_tokens(10)
        table.vacate_front(10)  # 10 is not page aligned but covers all
        assert table.resident_tokens == 0

    def test_vacate_too_much_rejected(self, pool):
        table = BlockTable(pool)
        table.append_tokens(4)
        with pytest.raises(ValueError):
            table.vacate_front(5)

    def test_restore_front(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        table.vacate_front(8)
        slots = table.restore_front(4)
        assert len(slots) == 4
        assert table.vacated == 4
        # Restored positions are addressable again.
        assert table.slot(4) == slots[0]

    def test_restore_lands_on_fresh_pages(self, pool):
        """After interleaved traffic, restored tokens occupy different
        physical pages: the non-contiguity Pensieve's kernel must handle."""
        table = BlockTable(pool)
        table.append_tokens(8)
        original = table.slots(0, 4)
        table.vacate_front(4)
        # Another sequence grabs the freed page.
        other = BlockTable(pool)
        other.append_tokens(4)
        restored = table.restore_front(4)
        assert restored != original

    def test_restore_too_much_rejected(self, pool):
        table = BlockTable(pool)
        table.append_tokens(8)
        table.vacate_front(4)
        with pytest.raises(ValueError):
            table.restore_front(8)

    def test_restore_alignment_enforced(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        table.vacate_front(8)
        with pytest.raises(ValueError):
            table.restore_front(3)  # boundary at 5: not page aligned

    def test_release_frees_everything(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        table.release()
        assert pool.num_free_pages == 16
        assert table.resident_tokens == 0

    def test_resident_slots_iteration(self, pool):
        table = BlockTable(pool)
        table.append_tokens(8)
        table.vacate_front(4)
        assert list(table) == table.slots(4, 8)


class TestSlotsArray:
    """Bulk slot lookup used by the coalesced data path and the
    transformer hot paths: same results and the same KeyErrors as the
    per-position loop, computed with one bounds/vacancy check."""

    @pytest.fixture
    def pool(self):
        return PagePool(num_pages=16, page_size=4)

    def test_matches_per_position_slots(self, pool):
        table = BlockTable(pool)
        table.append_tokens(11)
        for start, end in [(0, 11), (2, 5), (3, 11), (4, 8), (7, 7)]:
            arr = table.slots_array(start, end)
            assert arr.dtype == np.int64
            assert arr.tolist() == [table.slot(i) for i in range(start, end)]

    def test_empty_range(self, pool):
        table = BlockTable(pool)
        table.append_tokens(4)
        assert table.slots_array(3, 3).size == 0
        assert table.slots_array(4, 2).size == 0

    def test_out_of_range_raises_keyerror(self, pool):
        table = BlockTable(pool)
        table.append_tokens(6)
        with pytest.raises(KeyError):
            table.slots_array(0, 7)
        with pytest.raises(KeyError):
            table.slots_array(6, 8)
        with pytest.raises(KeyError):
            table.slots_array(-1, 3)

    def test_vacated_positions_raise_keyerror(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        table.vacate_front(8)
        with pytest.raises(KeyError):
            table.slots_array(0, 12)
        with pytest.raises(KeyError):
            table.slots_array(6, 10)
        assert table.slots_array(8, 12).tolist() == table.slots(8, 12)

    def test_survives_restore_cycle(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        table.vacate_front(8)
        table.restore_front(8)
        assert table.slots_array(0, 12).tolist() == [
            table.slot(i) for i in range(12)
        ]


class TestVersioningAndMemo:
    """Version counters and the memoized ``slots_array`` results the
    incremental decode packing cache keys its lifecycle on."""

    @pytest.fixture
    def pool(self):
        return PagePool(num_pages=16, page_size=4)

    def test_append_bumps_version_but_not_structure(self, pool):
        table = BlockTable(pool)
        v, sv = table.version, table.structure_version
        table.append_tokens(5)
        assert table.version == v + 1
        assert table.structure_version == sv

    def test_zero_token_append_is_not_a_mutation(self, pool):
        table = BlockTable(pool)
        table.append_tokens(4)
        v = table.version
        table.append_tokens(0)
        assert table.version == v

    def test_structural_ops_bump_both_counters(self, pool):
        table = BlockTable(pool)
        table.append_tokens(12)
        v, sv = table.version, table.structure_version
        table.vacate_front(8)
        assert (table.version, table.structure_version) == (v + 1, sv + 1)
        table.restore_front(8)
        assert (table.version, table.structure_version) == (v + 2, sv + 2)
        table.release()
        assert (table.version, table.structure_version) == (v + 3, sv + 3)

    def test_slots_array_memoized_until_mutation(self, pool):
        table = BlockTable(pool)
        table.append_tokens(9)
        first = table.slots_array(0, 9)
        assert table.slots_array(0, 9) is first  # memo hit
        table.append_tokens(1)
        second = table.slots_array(0, 9)
        assert second is not first  # invalidated by the append
        assert second.tolist() == first.tolist()  # appends never remap

    def test_memoized_array_is_read_only(self, pool):
        table = BlockTable(pool)
        table.append_tokens(6)
        arr = table.slots_array(0, 6)
        with pytest.raises(ValueError):
            arr[0] = 99

    def test_memo_cap_bounds_entries(self, pool):
        table = BlockTable(pool)
        table.append_tokens(60)
        for start in range(BlockTable._MEMO_CAP + 8):
            table.slots_array(start % 50, 50)
        assert len(table._slots_memo) <= BlockTable._MEMO_CAP

    def test_distinct_ranges_memoized_separately(self, pool):
        table = BlockTable(pool)
        table.append_tokens(10)
        a = table.slots_array(0, 10)
        b = table.slots_array(2, 7)
        assert b.tolist() == a[2:7].tolist()
        assert table.slots_array(2, 7) is b
