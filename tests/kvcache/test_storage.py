"""Tests for the CPU chunk store's checksummed reads."""

import numpy as np
import pytest

from repro.faults import ChunkCorruptionError, FaultPlan, FaultSite
from repro.kvcache.storage import CpuChunkStore, _checksum


def chunk_data(tokens=4, layers=2, heads=2, dim=3, fill=1.0):
    k = np.full((layers, tokens, heads, dim), fill, dtype=np.float32)
    v = np.full((layers, tokens, heads, dim), fill + 0.5, dtype=np.float32)
    return k, v


class TestStoreBasics:
    def test_put_get_pop_roundtrip(self):
        store = CpuChunkStore(capacity_tokens=64)
        k, v = chunk_data()
        store.put(1, 0, k, v)
        got_k, got_v = store.get(1, 0)
        np.testing.assert_array_equal(got_k, k)
        np.testing.assert_array_equal(got_v, v)
        store.pop(1, 0)
        assert not store.contains(1, 0)
        assert store.used_tokens == 0

    def test_capacity_enforced(self):
        store = CpuChunkStore(capacity_tokens=4)
        k, v = chunk_data(tokens=4)
        store.put(1, 0, k, v)
        with pytest.raises(MemoryError):
            store.put(1, 1, k, v)

    def test_checksum_mixes_k_and_v(self):
        k, v = chunk_data()
        base = _checksum(k, v)
        assert _checksum(v, k) != base  # order matters
        k2 = k.copy()
        k2.flat[0] += 1.0
        assert _checksum(k2, v) != base


class TestCorruptionDetection:
    def test_external_corruption_detected_on_get(self):
        store = CpuChunkStore(capacity_tokens=64)
        k, v = chunk_data()
        store.put(1, 0, k, v)
        stored_k, _ = store._entries[(1, 0)]
        stored_k.flat[5] += 1e-3  # bit rot after insertion
        with pytest.raises(ChunkCorruptionError):
            store.get(1, 0)

    def test_injected_corruption_detected_and_entry_retained(self):
        plan = FaultPlan(seed=0, schedules={FaultSite.CPU_READ: (0,)})
        store = CpuChunkStore(capacity_tokens=64, fault_plan=plan)
        k, v = chunk_data()
        store.put(1, 0, k, v)
        with pytest.raises(ChunkCorruptionError) as excinfo:
            store.pop(1, 0)
        assert excinfo.value.conv_id == 1
        assert excinfo.value.chunk_index == 0
        # The entry stays so recovery can invalidate it deliberately.
        assert store.contains(1, 0)
        assert store.used_tokens == 4
        store.drop(1, 0)
        assert store.used_tokens == 0

    def test_unfired_plan_reads_cleanly(self):
        plan = FaultPlan(seed=0)  # no rates, no schedules
        store = CpuChunkStore(capacity_tokens=64, fault_plan=plan)
        k, v = chunk_data()
        store.put(1, 0, k, v)
        for _ in range(5):
            store.get(1, 0)
        got_k, got_v = store.pop(1, 0)
        np.testing.assert_array_equal(got_k, k)
        np.testing.assert_array_equal(got_v, v)


class TestVerifyOnRead:
    def test_default_verifies(self):
        assert CpuChunkStore(capacity_tokens=64).verify_on_read is True

    def test_disabled_skips_crc_check(self):
        """verify_on_read=False trades integrity checking for read speed:
        silent corruption is returned instead of raised."""
        store = CpuChunkStore(capacity_tokens=64, verify_on_read=False)
        k, v = chunk_data()
        store.put(1, 0, k, v)
        stored_k, _ = store._entries[(1, 0)]
        stored_k.flat[5] += 1e-3
        got_k, _ = store.get(1, 0)  # no ChunkCorruptionError
        assert got_k.flat[5] != k.flat[5]
        store.pop(1, 0)
        assert not store.contains(1, 0)

    def test_disabled_still_raises_keyerror(self):
        store = CpuChunkStore(capacity_tokens=64, verify_on_read=False)
        with pytest.raises(KeyError):
            store.get(9, 9)
        with pytest.raises(KeyError):
            store.pop(9, 9)

    def test_enabled_catches_corruption_on_pop(self):
        store = CpuChunkStore(capacity_tokens=64, verify_on_read=True)
        k, v = chunk_data()
        store.put(1, 0, k, v)
        stored_k, _ = store._entries[(1, 0)]
        stored_k.flat[0] -= 1.0
        with pytest.raises(ChunkCorruptionError):
            store.pop(1, 0)
