"""Tests for token sampling strategies."""

import numpy as np
import pytest

from repro.model.sampling import GREEDY, SamplingParams, sample_token


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def logits_with_peak(vocab=32, peak=7, height=6.0, seed=1):
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal(vocab)
    logits[peak] += height
    return logits


class TestParams:
    def test_greedy_default(self):
        assert GREEDY.is_greedy
        assert SamplingParams(temperature=0.7).is_greedy is False

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingParams(temperature=-0.1)
        with pytest.raises(ValueError):
            SamplingParams(top_k=-1)
        with pytest.raises(ValueError):
            SamplingParams(top_p=0.0)
        with pytest.raises(ValueError):
            SamplingParams(top_p=1.5)


class TestGreedy:
    def test_matches_argmax(self, rng):
        logits = logits_with_peak()
        assert sample_token(logits, GREEDY) == int(np.argmax(logits))

    def test_no_rng_needed(self):
        assert sample_token(np.array([0.0, 3.0, 1.0])) == 1


class TestTemperature:
    def test_deterministic_under_same_seed(self):
        logits = logits_with_peak()
        params = SamplingParams(temperature=1.0)
        a = [
            sample_token(logits, params, np.random.default_rng(5))
            for _ in range(1)
        ]
        b = [
            sample_token(logits, params, np.random.default_rng(5))
            for _ in range(1)
        ]
        assert a == b

    def test_low_temperature_concentrates_on_peak(self, rng):
        logits = logits_with_peak(height=4.0)
        params = SamplingParams(temperature=0.05)
        draws = [sample_token(logits, params, rng) for _ in range(50)]
        assert all(d == int(np.argmax(logits)) for d in draws)

    def test_high_temperature_spreads_mass(self, rng):
        logits = logits_with_peak(height=2.0)
        params = SamplingParams(temperature=50.0)
        draws = {sample_token(logits, params, rng) for _ in range(300)}
        assert len(draws) > 10  # close to uniform

    def test_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            sample_token(np.zeros(4), SamplingParams(temperature=1.0))


class TestTopK:
    def test_restricts_support(self, rng):
        logits = np.array([5.0, 4.0, 3.0, -10.0, -10.0])
        params = SamplingParams(temperature=5.0, top_k=2)
        draws = {sample_token(logits, params, rng) for _ in range(200)}
        assert draws <= {0, 1}

    def test_k_larger_than_vocab_is_noop(self, rng):
        logits = logits_with_peak(vocab=8)
        params = SamplingParams(temperature=1.0, top_k=100)
        for _ in range(20):
            assert 0 <= sample_token(logits, params, rng) < 8


class TestTopP:
    def test_nucleus_restricts_to_head(self, rng):
        # One token holds ~95% of the mass.
        logits = np.array([10.0, 0.0, 0.0, 0.0])
        params = SamplingParams(temperature=1.0, top_p=0.5)
        draws = {sample_token(logits, params, rng) for _ in range(100)}
        assert draws == {0}

    def test_at_least_one_token_kept(self, rng):
        logits = np.zeros(16)  # uniform: each token has mass 1/16
        params = SamplingParams(temperature=1.0, top_p=1e-6)
        token = sample_token(logits, params, rng)
        assert 0 <= token < 16


class TestServerIntegration:
    def test_stochastic_decoding_still_cache_invariant(self):
        """Sampling draws depend only on logits and the sampling stream, so
        the pressure-equivalence property must hold for stochastic
        decoding too."""
        from repro.core import StatefulChatServer
        from repro.model import tiny_opt_config

        params = SamplingParams(temperature=0.8, top_k=20)
        rng = np.random.default_rng(77)
        turns = [
            (conv, list(rng.integers(4, 120, int(rng.integers(5, 12)))))
            for _ in range(3)
            for conv in range(3)
        ]

        def run(gpu, cpu):
            server = StatefulChatServer(
                tiny_opt_config(), gpu_capacity_tokens=gpu,
                cpu_capacity_tokens=cpu, chunk_size=16, page_size=8, seed=1,
            )
            return [
                server.chat(c, prompt_ids=i, max_new_tokens=4, sampling=params)
                for c, i in turns
            ]

        assert run(gpu=160, cpu=96) == run(gpu=4096, cpu=8192)

    def test_vector_logits_required(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros((2, 3)))
